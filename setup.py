"""Packaging for the NDSEARCH (ISCA 2024) reproduction.

Metadata lives here (no ``pyproject.toml``) so minimal offline
installs work: ``pip install -e .`` where pip has the ``wheel``
package, ``python setup.py develop`` where it does not.  The ``src/``
layout means the package is *not* importable from a bare checkout
without installation; either installing or ``PYTHONPATH=src`` (what
the test/bench commands in ROADMAP.md use) makes ``import repro``
work.
"""

from setuptools import find_packages, setup

setup(
    name="repro-ndsearch",
    version="1.4.0",
    description=(
        "From-scratch reproduction of NDSEARCH: near-data processing for "
        "graph-traversal approximate nearest neighbor search (ISCA 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro-serve = repro.serving.__main__:main",
            # The static determinism / event-kernel checker; its scan
            # paths and baseline default from the [repro.lint] block in
            # pytest.ini, so `repro-lint` from the repo root just works.
            "repro-lint = repro.lint.__main__:main",
        ],
    },
)
