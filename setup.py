"""Setuptools shim for environments without the ``wheel`` package.

All real metadata lives in ``pyproject.toml``; this file only enables
the legacy ``pip install -e .`` path on minimal offline installs.
"""

from setuptools import setup

setup()
