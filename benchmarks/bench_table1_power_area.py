"""Table I — power and area breakdown of SearSSD."""

import pytest

from repro.experiments import table1_power_area


def test_table1_power_area(benchmark, record_table):
    data = benchmark.pedantic(table1_power_area.collect, rounds=1, iterations=1)
    record_table("table1_power_area", table1_power_area.run())

    assert data["logic_power_w"] == pytest.approx(18.82)
    assert data["total_power_w"] == pytest.approx(26.32)
    assert data["total_power_w"] < data["power_budget_w"]
    assert data["total_area_mm2"] == pytest.approx(43.09)
    assert data["saving_vs_ds_cp"] == pytest.approx(0.82, abs=0.01)
    assert data["saving_vs_ds_c"] == pytest.approx(0.87, abs=0.01)
    assert data["storage_density"] == pytest.approx(5.64, abs=0.03)
    assert 0.04 < data["density_degradation"] < 0.08
    assert len(data["rows"]) == 8
