"""Fig. 15 — dynamic scheduling: page accesses and speedup."""

from repro.experiments import fig15_dynamic_scheduling


def test_fig15_dynamic_scheduling(benchmark, record_table):
    rows = benchmark.pedantic(
        fig15_dynamic_scheduling.collect, rounds=1, iterations=1
    )
    record_table(
        "fig15_dynamic_scheduling", fig15_dynamic_scheduling.run()
    )
    by = {(r["algorithm"], r["dataset"], r["setting"]): r for r in rows}
    for algo in ("hnsw", "diskann"):
        for ds in ("glove-100", "fashion-mnist", "sift-1b", "deep-1b",
                   "spacev-1b"):
            da = by[(algo, ds, "da")]
            sp = by[(algo, ds, "da+sp")]
            # Dynamic allocating cuts page accesses sharply (paper: up
            # to -73%) and speeds the system up (paper: up to 2.67x).
            assert da["page_accesses_norm"] < 0.85, (algo, ds)
            assert da["speedup_vs_wo_ds"] > 1.2, (algo, ds)
            # Speculation *raises* page accesses (over half of the
            # prefetches go unused) yet adds speedup (paper: up to 1.27x).
            assert sp["page_accesses_norm"] > da["page_accesses_norm"]
            assert sp["speedup_vs_wo_ds"] > da["speedup_vs_wo_ds"]
    best_da = max(
        r["speedup_vs_wo_ds"] for r in rows if r["setting"] == "da"
    )
    assert best_da > 1.8
