"""Profile the serving stack and write the ``BENCH_serving.json`` trajectory.

Runs a fixed set of named serving configurations — the same synthetic
corpus, stream seeds and policies every time — and records, per config,
the wall-clock time, the number of kernel events dispatched and the
resulting events/sec, plus the process peak RSS after the config ran
(see :mod:`repro.obs.profile` for why RSS is a monotone high-water
mark).  The payload also carries a pure-kernel calibration measurement
so the regression gate (``check_bench_regression.py``) can compare
trajectories recorded on machines of different speeds.

Usage::

    PYTHONPATH=src python benchmarks/profile_serving.py              # refresh BENCH_serving.json
    PYTHONPATH=src python benchmarks/profile_serving.py --out /tmp/current.json

The committed ``BENCH_serving.json`` at the repo root is the baseline
CI gates against; refresh it (and commit the result) whenever a PR
intentionally changes the serving stack's per-event cost.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import NDSearchConfig  # noqa: E402
from repro.data.synthetic import clustered_gaussian, split_queries  # noqa: E402
from repro.obs import RunProfiler, calibrate_events_per_sec  # noqa: E402
from repro.serving import (  # noqa: E402
    BatchPolicy,
    PoissonArrivals,
    QueryStream,
    RebalancePolicy,
    ServingConfig,
    ServingFrontend,
    build_router,
)
from repro.serving.sharding import PARTITIONED  # noqa: E402

#: Default location of the committed perf trajectory.
DEFAULT_OUT = REPO_ROOT / "BENCH_serving.json"

CORPUS, DIM, POOL, REQUESTS, K = 800, 16, 128, 800, 10
RATE = 20000.0


def _run(router, pool, *, policy=None, zipf=0.0, nprobe=None, slo=None,
         rebalance=None):
    stream = QueryStream(
        PoissonArrivals(RATE),
        pool_size=POOL,
        n_requests=REQUESTS,
        k=K,
        zipf_exponent=zipf,
        seed=33,
        slo_s=slo,
    )
    frontend = ServingFrontend(
        router,
        ServingConfig(
            policy=policy or BatchPolicy(max_batch_size=32, max_wait_s=2e-3),
            cache_capacity=0,
            coalesce=False,
            nprobe=nprobe,
            rebalance=rebalance,
        ),
    )
    return frontend.run(stream.generate(), pool)


#: Timed repeats per config; the fastest is recorded.  Single rounds of
#: a few seconds carry enough scheduler/cache noise to get within reach
#: of the 30% gate on one host — best-of-N measures the achievable
#: speed, which is the quantity a code regression actually moves.
ROUNDS = 2


def collect_profile() -> dict:
    """Profile every named config; returns the trajectory payload."""
    vectors = clustered_gaussian(CORPUS, DIM, seed=31)
    pool = split_queries(vectors, POOL, seed=32)
    config = NDSearchConfig.scaled()
    profiler = RunProfiler()

    def measure(name, make_router, **kwargs):
        # A fresh router per round: rebalance mutates cluster placement,
        # and every round must time the same work.
        scratch = RunProfiler()
        for _ in range(ROUNDS):
            with scratch.measure(name) as probe:
                report = _run(make_router(), pool, **kwargs)
                probe.events = int(report.counters["loop_events_total"])
        profiler.records.append(
            max(scratch.records, key=lambda r: r.events_per_sec)
        )

    measure(
        "replicated-x1-batch",
        lambda: build_router(vectors, num_shards=1, config=config),
    )
    measure(
        "replicated-x4-batch",
        lambda: build_router(vectors, num_shards=4, config=config),
    )
    measure(
        "replicated-x1-greedy",
        lambda: build_router(vectors, num_shards=1, config=config),
        policy=BatchPolicy(max_batch_size=32, max_wait_s=2e-3, mode="greedy"),
    )
    measure(
        "partitioned-x4-nprobe1",
        lambda: build_router(
            vectors, num_shards=4, config=config, mode=PARTITIONED, seed=35
        ),
        nprobe=1,
    )
    measure(
        "partitioned-x4-rebalance",
        lambda: build_router(
            vectors, num_shards=4, config=config, mode=PARTITIONED, seed=35,
            clusters_per_shard=2,
        ),
        policy=BatchPolicy(max_batch_size=16, max_wait_s=2e-3),
        zipf=1.2,
        nprobe=1,
        slo=4e-3,
        rebalance=RebalancePolicy(
            interval_s=2e-3, skew_threshold=0.25, migration_gbps=1.0
        ),
    )
    return profiler.to_json(calibration_eps=calibrate_events_per_sec())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Profile the serving stack into a BENCH_serving.json "
                    "perf trajectory.",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"output path (default {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)
    payload = collect_profile()
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"calibration: {payload['calibration_eps']:,.0f} events/sec (bare kernel)")
    for name, entry in payload["configs"].items():
        print(
            f"  {name:<26} {entry['wall_s']:7.3f} s  "
            f"{entry['events']:>6} events  "
            f"{entry['events_per_sec']:>10,.0f} ev/s  "
            f"rss {entry['peak_rss_bytes'] / 1e6:,.0f} MB"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
