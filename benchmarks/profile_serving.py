"""Profile the serving stack and write the ``BENCH_serving.json`` trajectory.

Runs a fixed set of named serving configurations — the same synthetic
corpus, stream seeds and policies every time — and records, per config,
the wall-clock time, the number of kernel events dispatched and the
resulting events/sec, plus the process peak RSS after the config ran
(see :mod:`repro.obs.profile` for why RSS is a monotone high-water
mark).  The payload also carries a pure-kernel calibration measurement
so the regression gate (``check_bench_regression.py``) can compare
trajectories recorded on machines of different speeds.

Usage::

    PYTHONPATH=src python benchmarks/profile_serving.py              # refresh BENCH_serving.json
    PYTHONPATH=src python benchmarks/profile_serving.py --out /tmp/current.json
    PYTHONPATH=src python benchmarks/profile_serving.py --workers 2  # pooled fan-out
    PYTHONPATH=src python benchmarks/profile_serving.py --profile cprofile

``--workers N`` fans the configs out over a :class:`repro.sim.pool`
warm worker pool (default: the ``REPRO_POOL_WORKERS`` environment
variable, serial when unset); each config's timing runs undisturbed
inside its own worker and the records merge in config order.  The
calibration is always measured in the parent, after the workers have
finished, so it sees an idle host.

``--profile cprofile`` instead runs each config under :mod:`cProfile`
and writes the top-20 cumulative hotspots per config to
``benchmarks/results/serving_hotspots.txt`` — the starting data for
future perf PRs.

The committed ``BENCH_serving.json`` at the repo root is the baseline
CI gates against; refresh it (and commit the result) whenever a PR
intentionally changes the serving stack's per-event cost.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from functools import lru_cache
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import NDSearchConfig  # noqa: E402
from repro.data.synthetic import clustered_gaussian, split_queries  # noqa: E402
from repro.obs import RunProfiler, calibrate_events_per_sec  # noqa: E402
from repro.obs.profile import ProfileRecord  # noqa: E402
from repro.serving import (  # noqa: E402
    BatchPolicy,
    FlashConfig,
    PoissonArrivals,
    QueryStream,
    RebalancePolicy,
    ServingConfig,
    ServingFrontend,
    ServingTwin,
    build_router,
)
from repro.serving.twin import TwinCache  # noqa: E402
from repro.serving.sharding import PARTITIONED  # noqa: E402
from repro.sim.pool import run_rows, workers_from_env  # noqa: E402

#: Default location of the committed perf trajectory.
DEFAULT_OUT = REPO_ROOT / "BENCH_serving.json"

#: Where ``--profile cprofile`` writes its per-config hotspot report.
HOTSPOTS_OUT = REPO_ROOT / "benchmarks" / "results" / "serving_hotspots.txt"

CORPUS, DIM, POOL, REQUESTS, K = 800, 16, 128, 800, 10
RATE = 20000.0

#: The named configs, in trajectory (and fan-out) order.
CONFIG_NAMES = (
    "replicated-x1-batch",
    "replicated-x4-batch",
    "replicated-x1-greedy",
    "partitioned-x4-nprobe1",
    "partitioned-x4-rebalance",
    "partitioned-x4-flash",
    "twin-whatif",
)

#: Stateful-flash config knobs (mirrors bench_serving's --flash cell).
FLASH_THRESHOLD = 200
FLASH_ECC_PROB = 0.05

#: Incremental re-simulation (repro.serving.twin): the twin shadows
#: the ``partitioned-x4-nprobe1`` run, checkpointing every
#: TWIN_WINDOW_S, and the ``twin-whatif`` trajectory entry times a
#: no-delta what-if — restore the last checkpoint, re-simulate only
#: the final window — whose report must be byte-identical to the
#: from-scratch run.  ``wall_s`` is the incremental replay's wall
#: clock while ``events`` is the full run's event count (the replay
#: *answers for* the whole run), so events/sec is the effective event
#: rate of incremental replay and the ratio of the two configs'
#: ``wall_s`` in BENCH_serving.json is the recorded speedup, asserted
#: >= TWIN_SPEEDUP_MIN at every refresh.
TWIN_WINDOW_S = 2e-3
TWIN_SPEEDUP_MIN = 5.0


def _run(router, pool, *, policy=None, zipf=0.0, nprobe=None, slo=None,
         rebalance=None, flash=None):
    stream = QueryStream(
        PoissonArrivals(RATE),
        pool_size=POOL,
        n_requests=REQUESTS,
        k=K,
        zipf_exponent=zipf,
        seed=33,
        slo_s=slo,
    )
    frontend = ServingFrontend(
        router,
        ServingConfig(
            policy=policy or BatchPolicy(max_batch_size=32, max_wait_s=2e-3),
            cache_capacity=0,
            coalesce=False,
            nprobe=nprobe,
            rebalance=rebalance,
            flash=flash,
        ),
    )
    return frontend.run(stream.generate(), pool)


@lru_cache(maxsize=1)
def _dataset():
    """Corpus + query pool, built once per process (worker or parent)."""
    vectors = clustered_gaussian(CORPUS, DIM, seed=31)
    pool = split_queries(vectors, POOL, seed=32)
    return vectors, pool


def _setup(name: str):
    """``(make_router, run_kwargs)`` for one named config.

    A fresh router per timed round: rebalance mutates cluster
    placement, and every round must time the same work (the
    :mod:`repro.serving.sharding` build cache makes the rebuild itself
    nearly free, so rounds time the serving run, not index builds).
    """
    vectors, _ = _dataset()
    config = NDSearchConfig.scaled()
    if name == "replicated-x1-batch":
        return lambda: build_router(vectors, num_shards=1, config=config), {}
    if name == "replicated-x4-batch":
        return lambda: build_router(vectors, num_shards=4, config=config), {}
    if name == "replicated-x1-greedy":
        return (
            lambda: build_router(vectors, num_shards=1, config=config),
            {
                "policy": BatchPolicy(
                    max_batch_size=32, max_wait_s=2e-3, mode="greedy"
                )
            },
        )
    if name == "partitioned-x4-nprobe1":
        return (
            lambda: build_router(
                vectors, num_shards=4, config=config, mode=PARTITIONED,
                seed=35,
            ),
            {"nprobe": 1},
        )
    if name == "partitioned-x4-rebalance":
        return (
            lambda: build_router(
                vectors, num_shards=4, config=config, mode=PARTITIONED,
                seed=35, clusters_per_shard=2,
            ),
            {
                "policy": BatchPolicy(max_batch_size=16, max_wait_s=2e-3),
                "zipf": 1.2,
                "nprobe": 1,
                "slo": 4e-3,
                "rebalance": RebalancePolicy(
                    interval_s=2e-3, skew_threshold=0.25, migration_gbps=1.0
                ),
            },
        )
    if name == "partitioned-x4-flash":
        # The skewed nprobe=1 workload through a live FTL: per-event
        # cost now includes FTL read accounting, LDPC sampling and
        # refresh bookkeeping, which is exactly what this trajectory
        # entry gates.
        return (
            lambda: build_router(
                vectors, num_shards=4, config=config, mode=PARTITIONED,
                seed=35, clusters_per_shard=2,
            ),
            {
                "policy": BatchPolicy(max_batch_size=16, max_wait_s=2e-3),
                "zipf": 1.2,
                "nprobe": 1,
                "slo": 4e-3,
                "flash": FlashConfig(
                    read_disturb_threshold=FLASH_THRESHOLD,
                    ecc_hard_failure_prob=FLASH_ECC_PROB,
                ),
            },
        )
    raise KeyError(name)


#: Timed repeats per config; the fastest is recorded.  Single rounds of
#: a few seconds carry enough scheduler/cache noise to get within reach
#: of the 30% gate on one host — best-of-N measures the achievable
#: speed, which is the quantity a code regression actually moves.
ROUNDS = 2


def profile_row(name: str) -> dict:
    """Pool task: measure one named config (best of :data:`ROUNDS`)."""
    if name == "twin-whatif":
        return _twin_whatif_record()
    _, pool = _dataset()
    make_router, kwargs = _setup(name)
    scratch = RunProfiler()
    for _ in range(ROUNDS):
        with scratch.measure(name) as probe:
            report = _run(make_router(), pool, **kwargs)
            probe.events = int(report.counters["loop_events_total"])
    return asdict(max(scratch.records, key=lambda r: r.events_per_sec))


def _twin_stream():
    """The ``partitioned-x4-nprobe1`` stream, regenerated fresh (the
    twin consumes request objects; a comparator run needs its own)."""
    return QueryStream(
        PoissonArrivals(RATE),
        pool_size=POOL,
        n_requests=REQUESTS,
        k=K,
        zipf_exponent=0.0,
        seed=33,
    ).generate()


@lru_cache(maxsize=1)
def _twin_scratch():
    """Best-of-:data:`ROUNDS` from-scratch run of the twin's base
    config (identical to the ``partitioned-x4-nprobe1`` cell) — the
    wall-clock and byte-identity comparator for ``twin-whatif``."""
    _, pool = _dataset()
    make_router, kwargs = _setup("partitioned-x4-nprobe1")
    profiler = RunProfiler()
    for _ in range(ROUNDS):
        with profiler.measure("twin-scratch") as probe:
            report = _run(make_router(), pool, **kwargs)
            probe.events = int(report.counters["loop_events_total"])
    return max(profiler.records, key=lambda r: r.events_per_sec), report


def _twin_whatif_record() -> dict:
    """Measure the incremental replay of the final window.

    Builds the twin once (same corpus, stream, config and seeds as
    ``partitioned-x4-nprobe1``), feeds the stream window by window,
    then times a no-delta what-if per round with a cleared cache —
    timing the restore + suffix re-simulation, not the memo lookup.
    Asserts the acceptance contract: the answer is byte-identical to
    the from-scratch report and >= :data:`TWIN_SPEEDUP_MIN` x faster.
    """
    vectors, pool = _dataset()
    config = NDSearchConfig.scaled()
    serving_config = ServingConfig(
        policy=BatchPolicy(max_batch_size=32, max_wait_s=2e-3),
        cache_capacity=0,
        coalesce=False,
        nprobe=1,
    )
    twin = ServingTwin(
        lambda: build_router(
            vectors, num_shards=4, config=config, mode=PARTITIONED, seed=35
        ),
        serving_config,
        pool,
        window_s=TWIN_WINDOW_S,
        calibrate_k=K,
    )
    arrivals = _twin_stream()
    last_arrival = arrivals[-1].arrival_s
    fed, window = 0, 1
    while window * TWIN_WINDOW_S <= last_arrival:
        boundary = window * TWIN_WINDOW_S
        cut = fed
        while cut < len(arrivals) and arrivals[cut].arrival_s <= boundary:
            cut += 1
        twin.feed(arrivals[fed:cut])
        fed = cut
        twin.advance(boundary)
        window += 1
    twin.feed(arrivals[fed:])
    twin.finish()
    profiler = RunProfiler()
    for _ in range(ROUNDS):
        twin.cache = TwinCache()
        with profiler.measure("twin-whatif") as probe:
            answer = twin.whatif()
            probe.events = int(answer.counters["loop_events_total"])
    best = max(profiler.records, key=lambda r: r.events_per_sec)
    scratch_best, scratch_report = _twin_scratch()
    assert (
        json.dumps(answer.to_dict(), sort_keys=True)
        == json.dumps(scratch_report.to_dict(), sort_keys=True)
    ), "twin-whatif: incremental replay diverged from from-scratch"
    speedup = scratch_best.wall_s / best.wall_s
    assert speedup >= TWIN_SPEEDUP_MIN, (
        f"twin-whatif replay is only {speedup:.1f}x faster than "
        f"from-scratch (need >= {TWIN_SPEEDUP_MIN:g}x): "
        f"{best.wall_s:.4f}s vs {scratch_best.wall_s:.4f}s"
    )
    return asdict(best)


def hotspot_row(name: str, top: int = 20) -> str:
    """Pool task: run one config under cProfile; returns the formatted
    top-``top`` cumulative report."""
    import cProfile
    import io
    import pstats

    _, pool = _dataset()
    make_router, kwargs = _setup(name)
    # One untimed warm-up pass: the build and trace-compile caches are
    # first-run costs, and the steady state is what the trajectory
    # (best-of-N) times — so it is what the hotspot data should show.
    _run(make_router(), pool, **kwargs)
    profile = cProfile.Profile()
    profile.enable()
    _run(make_router(), pool, **kwargs)
    profile.disable()
    buffer = io.StringIO()
    pstats.Stats(profile, stream=buffer).sort_stats("cumulative").print_stats(
        top
    )
    return buffer.getvalue()


def collect_profile(workers: int = 0) -> dict:
    """Profile every named config; returns the trajectory payload.

    ``workers > 0`` fans the configs over a warm worker pool (one
    config family per worker key) and merges the records in config
    order; the calibration is measured in the parent afterwards.
    """
    rows = [
        (name, "profile_serving:profile_row", {"name": name})
        for name in CONFIG_NAMES
    ]
    records = run_rows(rows, workers, path=[REPO_ROOT / "benchmarks"])
    profiler = RunProfiler()
    profiler.records = [ProfileRecord(**record) for record in records]
    return profiler.to_json(calibration_eps=calibrate_events_per_sec())


def collect_hotspots(workers: int = 0, top: int = 20) -> str:
    """cProfile every named config; returns the combined report text."""
    rows = [
        (name, "profile_serving:hotspot_row", {"name": name, "top": top})
        for name in CONFIG_NAMES
    ]
    reports = run_rows(rows, workers, path=[REPO_ROOT / "benchmarks"])
    sections = []
    for name, text in zip(CONFIG_NAMES, reports):
        rule = "=" * 72
        sections.append(f"{rule}\n{name}\n{rule}\n{text.strip()}\n")
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Profile the serving stack into a BENCH_serving.json "
                    "perf trajectory.",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"output path (default {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--workers", type=int, default=workers_from_env(),
        help="warm worker processes to fan configs over "
             "(default $REPRO_POOL_WORKERS, 0 = serial)",
    )
    parser.add_argument(
        "--profile", choices=("cprofile",), default=None,
        help="instead of timing, run each config under cProfile and "
             f"write the top-20 cumulative hotspots to {HOTSPOTS_OUT}",
    )
    args = parser.parse_args(argv)
    if args.profile == "cprofile":
        report = collect_hotspots(workers=args.workers)
        HOTSPOTS_OUT.parent.mkdir(exist_ok=True)
        HOTSPOTS_OUT.write_text(report)
        print(report)
        print(f"wrote {HOTSPOTS_OUT}")
        return 0
    payload = collect_profile(workers=args.workers)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"calibration: {payload['calibration_eps']:,.0f} events/sec (bare kernel)")
    for name, entry in payload["configs"].items():
        print(
            f"  {name:<26} {entry['wall_s']:7.3f} s  "
            f"{entry['events']:>6} events  "
            f"{entry['events_per_sec']:>10,.0f} ev/s  "
            f"rss {entry['peak_rss_bytes'] / 1e6:,.0f} MB"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
