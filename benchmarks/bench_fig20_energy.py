"""Fig. 20 — energy efficiency (QPS/W) across platforms."""

from repro.experiments import fig20_energy


def test_fig20_energy(benchmark, record_table):
    rows = benchmark.pedantic(fig20_energy.collect, rounds=1, iterations=1)
    record_table("fig20_energy", fig20_energy.run())
    by = {
        (r["algorithm"], r["dataset"], r["platform"]): r for r in rows
    }
    for algo in ("hnsw", "diskann"):
        for ds in ("glove-100", "fashion-mnist", "sift-1b", "deep-1b",
                   "spacev-1b"):
            nd = by[(algo, ds, "ndsearch")]["qps_per_watt"]
            # NDSearch is the most efficient platform everywhere.
            for p in ("cpu", "gpu", "smartssd", "ds-c", "ds-cp"):
                assert nd > by[(algo, ds, p)]["qps_per_watt"], (algo, ds, p)
        for ds in ("sift-1b", "deep-1b", "spacev-1b"):
            # Orders of magnitude over the hosts (paper: up to
            # 178.7x / 120.9x over CPU / GPU).
            assert by[(algo, ds, "ndsearch")]["qps_per_watt"] > (
                20 * by[(algo, ds, "cpu")]["qps_per_watt"]
            )
            assert by[(algo, ds, "ndsearch")]["qps_per_watt"] > (
                10 * by[(algo, ds, "gpu")]["qps_per_watt"]
            )
            # Modest factor over the closest NDP competitor (paper: up
            # to 3.48x over DS-cp).
            ratio = by[(algo, ds, "ndsearch")]["qps_per_watt"] / by[
                (algo, ds, "ds-cp")
            ]["qps_per_watt"]
            assert 1.2 < ratio < 10.0, (algo, ds, ratio)
