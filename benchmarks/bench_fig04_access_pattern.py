"""Fig. 4 — page/LUN access pattern of the search phase."""

from repro.experiments import fig04_access_pattern


def test_fig04_access_pattern(benchmark, record_table):
    data = benchmark.pedantic(
        fig04_access_pattern.collect, rounds=1, iterations=1
    )
    record_table("fig04_access_pattern", fig04_access_pattern.run())

    # (a) Scattered accesses: each page access returns few needed
    # vectors — the ratio is far above the perfect-locality floor and
    # the useful fraction of fetched page bytes is small.
    assert data["mean_page_access_ratio"] > 0.5
    assert data["mean_vector_fraction"] < 0.5

    # (b) Each batch touches most LUNs (paper: > 82%).
    for coverage in data["lun_coverage_per_batch"]:
        assert coverage > 0.82
