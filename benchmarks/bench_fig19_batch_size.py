"""Fig. 19 — NDSearch's advantage over DS-cp across batch sizes."""

from repro.experiments import fig19_batch_size


def test_fig19_batch_size(benchmark, record_table):
    rows = benchmark.pedantic(
        fig19_batch_size.collect, rounds=1, iterations=1
    )
    record_table("fig19_batch_size", fig19_batch_size.run())
    for ds in fig19_batch_size.DATASETS:
        series = [r for r in rows if r["dataset"] == ds]
        series.sort(key=lambda r: r["batch"])
        speedups = [r["speedup_vs_dscp"] for r in series]
        batches = [r["batch"] for r in series]
        # Small batches starve LUN-level parallelism: the advantage at
        # batch 64 is well below the peak (paper: marginal at 256).
        peak = max(speedups)
        peak_batch = batches[speedups.index(peak)]
        assert speedups[0] < peak * 0.85, (ds, speedups)
        # The peak sits at an intermediate batch: beyond the query-queue
        # capacity (1024 scaled), sub-batching erodes the advantage.
        assert 256 <= peak_batch <= 1024, (ds, peak_batch)
        assert speedups[-1] < peak, (ds, speedups)
