"""Benchmark harness support.

Every benchmark regenerates one of the paper's tables or figures: it
runs the matching :mod:`repro.experiments` driver under
pytest-benchmark (one round — these are end-to-end experiment drivers,
not microbenchmarks), prints the series the paper reports, writes the
table to ``benchmarks/results/`` and asserts the reproduction's
acceptance criteria (the relative shapes from DESIGN.md).

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
tables inline).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def pytest_addoption(parser):
    """Opt-in sweep sections for the serving benchmark.

    ``--slo`` adds the deadline sweep (slo policy vs max-wait across
    loosening deadlines), ``--autoscale`` the static-vs-autoscaled
    overload comparison, ``--rebalance`` the static-vs-rebalanced
    partitioned comparison under skewed Zipfian load and ``--flash``
    the ideal-vs-stateful-flash comparison (live FTL + ECC under every
    device) to ``bench_serving``; all extend
    ``results/serving_sweep.json``.  CI runs with every flag so the
    uploaded artifact carries the full sweep.
    """
    parser.addoption(
        "--slo", action="store_true", default=False,
        help="include the SLO deadline sweep in bench_serving",
    )
    parser.addoption(
        "--autoscale", action="store_true", default=False,
        help="include the static-vs-autoscaled sweep in bench_serving",
    )
    parser.addoption(
        "--rebalance", action="store_true", default=False,
        help="include the static-vs-rebalanced partitioned sweep "
             "in bench_serving",
    )
    parser.addoption(
        "--flash", action="store_true", default=False,
        help="include the ideal-vs-stateful-flash sweep in "
             "bench_serving",
    )
    from repro.sim.pool import workers_from_env

    parser.addoption(
        "--workers", type=int, default=workers_from_env(),
        help="fan bench_serving's sweep rows over this many warm "
             "worker subprocesses (default $REPRO_POOL_WORKERS, "
             "0 = serial in-process); pooled output is byte-identical "
             "to serial",
    )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_table(results_dir):
    """Print a driver's table and persist it under results/."""

    def _record(name: str, table: str) -> None:
        print("\n" + table)
        (results_dir / f"{name}.txt").write_text(table + "\n")

    return _record


@pytest.fixture()
def record_json(results_dir):
    """Persist machine-readable results under results/<name>.json.

    The human-readable ``.txt`` tables are for eyeballs; these JSON
    files are what the perf-trajectory tooling diffs across commits.
    """

    def _record(name: str, payload) -> None:
        path = results_dir / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    return _record
