"""Fig. 21 — HCNNG and TOGG on sift-1b across platforms."""

from repro.experiments import fig21_other_algos


def test_fig21_other_algos(benchmark, record_table):
    rows = benchmark.pedantic(
        fig21_other_algos.collect, rounds=1, iterations=1
    )
    record_table("fig21_other_algos", fig21_other_algos.run())
    by = {(r["algorithm"], r["platform"]): r for r in rows}
    for algo in ("hcnng", "togg"):
        nd = by[(algo, "ndsearch")]
        # NDSearch still outperforms every platform on the emerging
        # directional algorithms.
        for p in ("cpu", "cpu-t", "smartssd", "ds-cp"):
            assert nd["qps"] > by[(algo, p)]["qps"], (algo, p)
        # Terabyte DRAM accelerates the CPU (paper: up to 5.3x)...
        assert by[(algo, "cpu-t")]["speedup_vs_cpu"] > 1.5
        # ...but cannot beat the in-storage designs.
        assert by[(algo, "cpu-t")]["qps"] < nd["qps"]
