"""Fig. 14 — static scheduling: page-access ratio and speedup."""

from repro.experiments import fig14_static_scheduling


def test_fig14_static_scheduling(benchmark, record_table):
    rows = benchmark.pedantic(
        fig14_static_scheduling.collect, rounds=1, iterations=1
    )
    record_table("fig14_static_scheduling", fig14_static_scheduling.run())

    by = {
        (r["algorithm"], r["dataset"], r["setting"]): r for r in rows
    }
    for algo in ("hnsw", "diskann"):
        for ds in ("glove-100", "fashion-mnist", "sift-1b", "deep-1b",
                   "spacev-1b"):
            ours = by[(algo, ds, "ours")]
            wo = by[(algo, ds, "w/o re")]
            ran = by[(algo, ds, "ran bfs")]
            # Our reordering lowers the page-access ratio vs the
            # unordered layout on every cell (paper: up to -38%), and
            # stays competitive with random BFS per cell (a single
            # random run can get lucky; ours needs no retries).
            assert ours["page_access_ratio"] < wo["page_access_ratio"]
            assert ours["page_access_ratio"] <= ran["page_access_ratio"] * 1.10
            # Latency never regresses beyond simulation noise (the
            # speculative overlap hides most scheduling time, so the
            # locality gain translates to a modest speedup).
            assert ours["speedup_vs_wo_re"] >= 0.97
    ours_rows = [r for r in rows if r["setting"] == "ours"]
    ran_rows = [r for r in rows if r["setting"] == "ran bfs"]
    # Across the benchmark matrix ours matches or beats random BFS
    # (the paper's point: one deterministic run vs many random tries).
    mean_ours = sum(r["page_access_ratio"] for r in ours_rows) / len(ours_rows)
    mean_ran = sum(r["page_access_ratio"] for r in ran_rows) / len(ran_rows)
    assert mean_ours <= mean_ran * 1.01
    # On average the reordering helps, and somewhere the speedup is
    # tangible (paper: up to 1.17x).
    mean = sum(r["speedup_vs_wo_re"] for r in ours_rows) / len(ours_rows)
    assert mean >= 1.0
    assert max(r["speedup_vs_wo_re"] for r in ours_rows) > 1.02
