"""Fig. 13 — throughput and speedup across all six platforms."""

from repro.experiments import fig13_throughput


def _index(rows):
    return {
        (r["algorithm"], r["dataset"], r["platform"]): r for r in rows
    }


def test_fig13_throughput(benchmark, record_table):
    rows = benchmark.pedantic(
        fig13_throughput.collect, rounds=1, iterations=1
    )
    record_table("fig13_throughput", fig13_throughput.run())
    by = _index(rows)
    big = ("sift-1b", "deep-1b", "spacev-1b")
    small = ("glove-100", "fashion-mnist")

    for algo in ("hnsw", "diskann"):
        for ds in big + small:
            nd = by[(algo, ds, "ndsearch")]
            # NDSearch wins on every dataset/algorithm pair.
            for platform in ("cpu", "gpu", "smartssd", "ds-c", "ds-cp"):
                assert nd["qps"] > by[(algo, ds, platform)]["qps"], (
                    algo, ds, platform
                )
        for ds in big:
            # Big datasets: in-storage ordering NDSearch > DS-cp > DS-c
            # and every NDP design beats the CPU.
            assert by[(algo, ds, "ds-cp")]["qps"] > by[(algo, ds, "ds-c")]["qps"]
            for platform in ("smartssd", "ds-c", "ds-cp"):
                assert by[(algo, ds, platform)]["speedup_vs_cpu"] > 1.0, (
                    algo, ds, platform
                )
            # NDSearch vs DS-cp lands near the paper's 2.8-2.9x band.
            ratio = by[(algo, ds, "ndsearch")]["qps"] / by[(algo, ds, "ds-cp")]["qps"]
            assert 1.5 < ratio < 5.0, (algo, ds, ratio)
        for ds in small:
            # Small (in-memory) datasets: plain NDP designs can hardly
            # beat the CPU; NDSearch still does.
            assert by[(algo, ds, "smartssd")]["speedup_vs_cpu"] < 1.5
            assert by[(algo, ds, "ndsearch")]["speedup_vs_cpu"] > 1.0


def test_fig13_speedup_larger_on_out_of_core_data(benchmark):
    rows = benchmark.pedantic(fig13_throughput.collect, rounds=1, iterations=1)
    by = _index(rows)
    for algo in ("hnsw", "diskann"):
        big_nd = min(
            by[(algo, ds, "ndsearch")]["speedup_vs_cpu"]
            for ds in ("sift-1b", "deep-1b", "spacev-1b")
        )
        small_nd = max(
            by[(algo, ds, "ndsearch")]["speedup_vs_cpu"]
            for ds in ("glove-100", "fashion-mnist")
        )
        # The paper's key contrast: the CPU pays SSD I/O only on the
        # out-of-core datasets, so NDSearch's advantage is larger there.
        assert big_nd > small_nd * 0.9, (algo, big_nd, small_nd)
