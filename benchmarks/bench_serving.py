"""Serving sweep: batch policy x shard count x arrival rate, plus the
pipelined-vs-blocking device comparison.

The online analogue of Figs. 13/19: the same frontend, stream seed and
corpus across every cell, varying only the batching policy, the size of
the replicated device pool and the offered load.  Expected shape:

* batching beats greedy dispatch at high load (larger batches fill the
  LUN-level parallelism — the Fig. 19 effect, now under queueing);
* adding shards lifts sustained throughput once one device saturates;
* p99 grows with offered load at fixed capacity;
* pipelined shard devices (phase-timeline stage overlap) sustain at
  least blocking throughput everywhere, and strictly more on an
  I/O-bound platform under bursty arrivals, where batch N+1's SSD
  reads overlap batch N's in-core drain;
* selective shard probing (partitioned mode, IVF nprobe at the device
  pool) cuts per-query device work proportionally to nprobe while
  recall falls gracefully toward — and matches exactly at
  nprobe = num_shards — the broadcast result;
* with ``--slo``: deadline-driven batch closing (the ``slo`` policy's
  drain-time prediction) misses fewer deadlines than a fixed max-wait
  at every deadline, miss rate falls monotonically as the deadline
  loosens, and high-priority attainment stays >= 95%;
* with ``--autoscale``: offered load above a static replica's capacity
  — the autoscaled pool grows, sheds less and holds a lower p99 than
  the static pool;
* with ``--rebalance``: skewed Zipfian load on a partitioned pool
  saturates the devices owning the popular clusters — migrating hot
  IVF clusters to cold devices (data movement booked on both device
  timelines) holds a lower p99 and a higher goodput than the static
  placement;
* with ``--flash``: the same skewed cell served through a live FTL
  under every device — read disturb accumulates on the Zipfian-hot
  clusters' blocks, refresh GC pauses inflate p99, relocation writes
  amplify beyond the host's, and per-cluster erase counts skew with
  popularity.

Besides the human-readable table, the sweep persists
``benchmarks/results/serving_sweep.json`` for the perf-trajectory
tooling (CI runs with every flag so the artifact carries the full
sweep).
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.analysis.reporting import format_table
from repro.ann import BruteForceIndex, recall_at_k
from repro.core.config import NDSearchConfig
from repro.data.synthetic import clustered_gaussian, split_queries
from repro.obs import SpanTracer
import json

from repro.serving import (
    AutoscalePolicy,
    BatchPolicy,
    FlashConfig,
    MMPPArrivals,
    PoissonArrivals,
    QueryStream,
    RebalancePolicy,
    ServingConfig,
    ServingFrontend,
    ServingTwin,
    build_router,
)
from repro.serving.sharding import PARTITIONED
from repro.sim.pool import run_rows

POLICIES = ("batch", "greedy")
SHARDS = (1, 4)
RATES = (500.0, 20000.0)

#: Bursty-arrival rates for the pipelined-vs-blocking comparison.
PIPELINE_RATES = (10000.0, 40000.0)

#: Shard count and offered rate for the broadcast-vs-selective rows.
PARTITION_SHARDS = 4
PARTITION_RATE = 2000.0

#: High-priority deadlines for the SLO sweep (--slo); the best-effort
#: class gets 4x the budget.  Monotone loosening: the deadline-miss
#: rate must be non-increasing left to right.
SLO_DEADLINES_MS = (2.0, 4.0, 8.0, 16.0)
SLO_RATE = 4000.0
SLO_HIGH_FRAC = 0.25
SLO_MARGIN_S = 3e-4

#: Offered load / pool bounds for the static-vs-autoscaled comparison
#: (--autoscale): far above one replica's capacity with small batches,
#: so the static pool's in-service backlog fills the admission bound.
AUTOSCALE_RATE = 25000.0
AUTOSCALE_MAX_REPLICAS = 4
AUTOSCALE_CAPACITY = 48

#: Skewed partitioned workload for the static-vs-rebalanced comparison
#: (--rebalance): Zipfian popularity + nprobe=1 routing concentrates
#: load on the devices owning the hot clusters.
REBALANCE_RATE = 16000.0
REBALANCE_ZIPF = 1.2
REBALANCE_SHARDS = 4
REBALANCE_CLUSTERS_PER_SHARD = 2
REBALANCE_SLO_S = 4e-3
REBALANCE_POLICY = RebalancePolicy(
    interval_s=2e-3, skew_threshold=0.25, migration_gbps=1.0
)

#: Stateful-flash comparison (--flash): the rebalance sweep's skewed
#: workload, served with and without a live FTL under every device.
#: The disturb threshold is scaled down so refreshes fire at benchmark
#: read volumes the way the real threshold fires at production ones;
#: the 5% hard-decode failure rate is the paper's mid-late-lifetime
#: regime (Fig. 18b sweeps up to 30%).
FLASH_THRESHOLD = 200
FLASH_ECC_PROB = 0.05

#: Event-time window for the observability rerun's metrics time series.
OBS_WINDOW_S = 1e-3

#: Checkpoint window for the incremental what-if rows: the broadcast
#: partitioned cell is fed to a ServingTwin once per process, and all
#: routing what-ifs fork from its checkpoints instead of re-simulating
#: the shared warm prefix.  Rows carry only deterministic fields (no
#: wall clocks), keeping the pooled sweep payload byte-identical to
#: the serial one; the wall-clock speedup gate lives in
#: ``profile_serving.py`` (the ``twin-whatif`` trajectory entry).
TWIN_WINDOW_S = 20e-3

CORPUS, DIM, POOL, REQUESTS, K = 800, 16, 128, 400, 10


def _run_cell(
    router, pool, *, arrivals, policy, pipelined, coalesce, zipf=0.0,
    nprobe=None, priorities=(0,), weights=None, slo=None, admission=None,
    autoscale=None, rebalance=None, flash=None, metrics_window_s=None,
    tracer=None,
):
    stream = QueryStream(
        arrivals,
        pool_size=POOL,
        n_requests=REQUESTS,
        k=K,
        zipf_exponent=zipf,
        seed=33,
        priorities=priorities,
        priority_weights=weights,
        slo_s=slo,
    )
    frontend = ServingFrontend(
        router,
        ServingConfig(
            policy=policy,
            cache_capacity=0,  # no cache noise in the sweeps
            pipelined=pipelined,
            coalesce=coalesce,
            nprobe=nprobe,
            admission_capacity=admission,
            autoscale=autoscale,
            rebalance=rebalance,
            flash=flash,
            metrics_window_s=metrics_window_s,
        ),
        tracer=tracer,
    )
    return frontend.run(stream.generate(), pool)


# ---- per-process warm state (shared by serial and pooled rows) ---------
# Every sweep row is a pure function of its spec: the corpus, query
# pool and routers are deterministic builds from pinned seeds, and the
# router build cache (repro.serving.sharding) makes repeated builds of
# the same spec nearly free — so a warm worker that owns a config
# family reuses its indexes across all the rows keyed to it.


@lru_cache(maxsize=1)
def _dataset():
    vectors = clustered_gaussian(CORPUS, DIM, seed=31)
    pool = split_queries(vectors, POOL, seed=32)
    return vectors, pool


def _replicated_router(shards: int):
    vectors, _ = _dataset()
    return build_router(
        vectors, num_shards=shards, config=NDSearchConfig.scaled()
    )


def _partitioned_router(clusters_per_shard: int | None = None):
    vectors, _ = _dataset()
    kwargs = {}
    if clusters_per_shard is not None:
        kwargs["clusters_per_shard"] = clusters_per_shard
    return build_router(
        vectors,
        num_shards=PARTITION_SHARDS,
        config=NDSearchConfig.scaled(),
        mode=PARTITIONED,
        seed=35,
        **kwargs,
    )


def _cpu_spill_router():
    # The CPU host with a spilling DRAM (the billion-scale analogue:
    # the corpus does not fit, every access reads the SSD) has the
    # fattest front stage, so it shows the pipeline overlap most
    # clearly.
    vectors, _ = _dataset()
    config = NDSearchConfig.scaled()
    spill_config = replace(
        config, host=replace(config.host, dram_capacity_bytes=16 * 1024)
    )
    return build_router(
        vectors, num_shards=2, config=spill_config, platform="cpu"
    )


@lru_cache(maxsize=1)
def _partition_reference():
    """Exact ground truth + the replicated pool's offline results (the
    "no partitioning" reference a deployment would compare to)."""
    vectors, pool = _dataset()
    gt, _ = BruteForceIndex(vectors).search_batch(pool, K)
    replicated_ids, _, _ = _replicated_router(1).search_all(pool, K)
    return gt, replicated_ids, recall_at_k(replicated_ids, gt, K)


# ---- sweep rows: one pure function per cell family ---------------------


def _sweep_row(policy: str, shards: int, rate: float) -> dict:
    _, pool = _dataset()
    report = _run_cell(
        _replicated_router(shards),
        pool,
        arrivals=PoissonArrivals(rate),
        policy=BatchPolicy(max_batch_size=32, max_wait_s=2e-3, mode=policy),
        pipelined=True,
        coalesce=False,  # uniform pool: nothing to coalesce
    )
    return {
        "policy": policy,
        "shards": shards,
        "rate": rate,
        "qps": report.qps,
        "p50_ms": report.latency_p50_s * 1e3,
        "p99_ms": report.latency_p99_s * 1e3,
        "mean_batch": report.mean_batch_size,
        "util": float(np.mean(report.shard_utilization)),
    }


def _pipeline_row(platform: str, rate: float) -> dict:
    _, pool = _dataset()
    router = (
        _cpu_spill_router() if platform == "cpu" else _replicated_router(1)
    )
    cells = {}
    for mode, pipelined in (("blocking", False), ("pipelined", True)):
        cells[mode] = _run_cell(
            router,
            pool,
            arrivals=MMPPArrivals(rate),
            policy=BatchPolicy(max_batch_size=32, max_wait_s=2e-3),
            pipelined=pipelined,
            coalesce=False,
        )
    return {
        "platform": platform,
        "arrivals": "mmpp",
        "rate": rate,
        "qps_blocking": cells["blocking"].qps,
        "qps_pipelined": cells["pipelined"].qps,
        "p99_ms_blocking": cells["blocking"].latency_p99_s * 1e3,
        "p99_ms_pipelined": cells["pipelined"].latency_p99_s * 1e3,
        "qps_gain": (
            cells["pipelined"].qps / cells["blocking"].qps - 1.0
            if cells["blocking"].qps > 0
            else 0.0
        ),
    }


def _partitioned_row(nprobe: int | None) -> dict:
    # IVF nprobe lifted to the device pool: each query fans out only to
    # the nprobe shards whose k-means centroids are nearest.  Recall is
    # measured offline on the query pool, against exact ground truth
    # and against the replicated pool's results.
    _, pool = _dataset()
    part_router = _partitioned_router()
    gt, replicated_ids, recall_replicated = _partition_reference()
    if nprobe is None:
        ids, _, _ = part_router.search_all(pool, K)
    else:
        ids, _, _ = part_router.search_probed(pool, K, nprobe)
    report = _run_cell(
        part_router,
        pool,
        arrivals=PoissonArrivals(PARTITION_RATE),
        policy=BatchPolicy(max_batch_size=32, max_wait_s=2e-3),
        pipelined=True,
        coalesce=False,
        nprobe=nprobe,
    )
    return {
        "routing": "broadcast" if nprobe is None else f"nprobe={nprobe}",
        "nprobe": PARTITION_SHARDS if nprobe is None else nprobe,
        "qps": report.qps,
        "p50_ms": report.latency_p50_s * 1e3,
        "p99_ms": report.latency_p99_s * 1e3,
        "probes_per_query": report.mean_probes_per_query,
        "shard_probes": list(report.shard_probe_counts),
        "energy_j": report.energy_j,
        "recall": recall_at_k(ids, gt, K),
        "recall_vs_replicated": recall_at_k(ids, replicated_ids, K),
        "recall_replicated_baseline": recall_replicated,
    }


def _coalesce_row(coalesce: bool) -> dict:
    _, pool = _dataset()
    report = _run_cell(
        _replicated_router(1),
        pool,
        arrivals=MMPPArrivals(20000.0),
        policy=BatchPolicy(max_batch_size=32, max_wait_s=2e-3),
        pipelined=True,
        coalesce=coalesce,
        zipf=1.1,
    )
    return {
        "coalesce": coalesce,
        "searched": report.completed,
        "coalesced": report.coalesced,
        "qps": report.qps,
        "p99_ms": report.latency_p99_s * 1e3,
    }


def _observability_row() -> dict:
    # The (batch, 1 shard, high-rate) cell again, now with the span
    # tracer and event-time metrics windows attached.  The hooks are
    # observe-only, so every outcome must match the untraced cell
    # exactly (asserted in the bench test); the full report travels
    # through :meth:`ServingReport.to_dict` and the Chrome trace is
    # persisted as a separate CI artifact by the bench test.
    _, pool = _dataset()
    tracer = SpanTracer()
    obs_report = _run_cell(
        _replicated_router(1),
        pool,
        arrivals=PoissonArrivals(RATES[-1]),
        policy=BatchPolicy(max_batch_size=32, max_wait_s=2e-3, mode="batch"),
        pipelined=True,
        coalesce=False,
        metrics_window_s=OBS_WINDOW_S,
        tracer=tracer,
    )
    return {
        "report": obs_report.to_dict(),
        "trace": tracer.to_json(),
        "trace_events": len(tracer),
    }


def _slo_row(deadline_ms: float) -> dict:
    # Two priority classes share the stream (the high class carries the
    # tight deadline, the best-effort class 4x the budget); each
    # deadline runs under the slo policy (drain-time-predicted closes)
    # and under the classic max-wait policy, same stream and pool.
    _, pool = _dataset()
    slo_spec = {1: deadline_ms * 1e-3, 0: 4 * deadline_ms * 1e-3}
    cells = {}
    for mode in ("slo", "batch"):
        # The margin absorbs service-model error (per-query trace
        # variance around the affine fit); it only means anything to
        # the slo policy.
        cells[mode] = _run_cell(
            _replicated_router(1),
            pool,
            arrivals=PoissonArrivals(SLO_RATE),
            policy=BatchPolicy(
                max_batch_size=32, max_wait_s=20e-3, mode=mode,
                slo_margin_s=SLO_MARGIN_S if mode == "slo" else 0.0,
            ),
            pipelined=True,
            coalesce=False,
            priorities=(0, 1),
            weights=(1.0 - SLO_HIGH_FRAC, SLO_HIGH_FRAC),
            slo=slo_spec,
        )
    slo_report, batch_report = cells["slo"], cells["batch"]
    return {
        "deadline_ms": deadline_ms,
        "miss_rate_slo": slo_report.deadline_miss_rate,
        "miss_rate_max_wait": batch_report.deadline_miss_rate,
        "attainment_high_slo": slo_report.priority_stats[1]["attainment"],
        "attainment_high_max_wait":
            batch_report.priority_stats[1]["attainment"],
        "high_served_slo": slo_report.priority_stats[1]["served"],
        "high_shed_slo": slo_report.priority_stats[1]["shed"],
        "goodput_slo": slo_report.goodput_qps,
        "goodput_max_wait": batch_report.goodput_qps,
        "p99_ms_slo": slo_report.latency_p99_s * 1e3,
        "p99_ms_max_wait": batch_report.latency_p99_s * 1e3,
        "mean_batch_slo": slo_report.mean_batch_size,
        "mean_batch_max_wait": batch_report.mean_batch_size,
    }


def _autoscale_row(scaled: bool) -> dict:
    _, pool = _dataset()
    policy = (
        AutoscalePolicy(
            min_replicas=1,
            max_replicas=AUTOSCALE_MAX_REPLICAS,
            interval_s=2e-3,
            high_utilization=0.7,
            high_queue_depth=8.0,
        )
        if scaled
        else None
    )
    report = _run_cell(
        _replicated_router(1),
        pool,
        arrivals=PoissonArrivals(AUTOSCALE_RATE),
        policy=BatchPolicy(max_batch_size=4, max_wait_s=2e-3),
        pipelined=True,
        coalesce=False,
        admission=AUTOSCALE_CAPACITY,
        autoscale=policy,
    )
    return {
        "pool": "autoscaled" if scaled else "static",
        "qps": report.qps,
        "shed": report.shed,
        "shed_rate": report.shed_rate,
        "p99_ms": report.latency_p99_s * 1e3,
        "mean_queue_depth": report.mean_queue_depth,
        "scale_events": list(report.scale_events),
        "replicas_final": report.replicas_final,
    }


def _rebalance_row(moved: bool) -> dict:
    # A skewed Zipfian stream routed with nprobe=1 piles onto the
    # devices owning the popular clusters; the rebalancer migrates hot
    # clusters to cold devices.  Each run builds a fresh pool:
    # migration mutates the cluster placement.
    _, pool = _dataset()
    router = _partitioned_router(
        clusters_per_shard=REBALANCE_CLUSTERS_PER_SHARD
    )
    report = _run_cell(
        router,
        pool,
        arrivals=PoissonArrivals(REBALANCE_RATE),
        policy=BatchPolicy(max_batch_size=16, max_wait_s=2e-3),
        pipelined=True,
        coalesce=False,
        zipf=REBALANCE_ZIPF,
        nprobe=1,
        slo=REBALANCE_SLO_S,
        rebalance=REBALANCE_POLICY if moved else None,
    )
    return {
        "placement": "rebalanced" if moved else "static",
        "qps": report.qps,
        "goodput": report.goodput_qps,
        "p50_ms": report.latency_p50_s * 1e3,
        "p99_ms": report.latency_p99_s * 1e3,
        "miss_rate": report.deadline_miss_rate,
        "util": list(report.shard_utilization),
        "max_util": max(report.shard_utilization),
        "migrations": list(report.rebalance_events),
        "bytes_moved": sum(e["bytes"] for e in report.rebalance_events),
        "cluster_map_final": list(report.cluster_map_final),
    }


def _flash_row(enabled: bool) -> dict:
    # The rebalance sweep's skewed workload again (partitioned pool,
    # Zipfian stream, nprobe=1), now with a live FTL + ECC under every
    # device: cluster reads accumulate read disturb, hot blocks cross
    # the threshold and refresh (a GC pause booked on the device), and
    # LDPC retry storms jitter individual reads.  The flash-off leg is
    # the same cell with ``flash=None`` — the parity baseline.
    _, pool = _dataset()
    router = _partitioned_router(
        clusters_per_shard=REBALANCE_CLUSTERS_PER_SHARD
    )
    report = _run_cell(
        router,
        pool,
        arrivals=PoissonArrivals(REBALANCE_RATE),
        policy=BatchPolicy(max_batch_size=16, max_wait_s=2e-3),
        pipelined=True,
        coalesce=False,
        zipf=REBALANCE_ZIPF,
        nprobe=1,
        slo=REBALANCE_SLO_S,
        flash=FlashConfig(
            read_disturb_threshold=FLASH_THRESHOLD,
            ecc_hard_failure_prob=FLASH_ECC_PROB,
        )
        if enabled
        else None,
    )
    row = {
        "storage": "flash" if enabled else "ideal",
        "qps": report.qps,
        "p50_ms": report.latency_p50_s * 1e3,
        "p99_ms": report.latency_p99_s * 1e3,
        "miss_rate": report.deadline_miss_rate,
    }
    if report.flash is not None:
        row.update(
            page_reads=report.flash["page_reads"],
            ecc_soft_decodes=report.flash["ecc_soft_decodes"],
            refreshes=report.flash["refreshes"],
            total_erases=report.flash["total_erases"],
            write_amplification=report.flash["write_amplification"],
            cluster_page_reads=report.flash["cluster_page_reads"],
            cluster_erases=report.flash["cluster_erases"],
        )
    return row


@lru_cache(maxsize=1)
def _twin_base():
    """The shared warm prefix: the broadcast partitioned cell fed to a
    twin window by window.  Built once per process; every what-if row
    forks from its checkpoints (warm-worker affinity keys the twin
    rows to the ``partitioned`` family, so pooled runs share it too).
    """
    _, pool = _dataset()
    twin = ServingTwin(
        _partitioned_router,
        ServingConfig(
            policy=BatchPolicy(max_batch_size=32, max_wait_s=2e-3),
            cache_capacity=0,
            coalesce=False,
        ),
        pool,
        window_s=TWIN_WINDOW_S,
        calibrate_k=K,
    )
    arrivals = QueryStream(
        PoissonArrivals(PARTITION_RATE),
        pool_size=POOL,
        n_requests=REQUESTS,
        k=K,
        zipf_exponent=0.0,
        seed=33,
    ).generate()
    last_arrival = arrivals[-1].arrival_s
    fed, window = 0, 1
    while window * TWIN_WINDOW_S <= last_arrival:
        boundary = window * TWIN_WINDOW_S
        cut = fed
        while cut < len(arrivals) and arrivals[cut].arrival_s <= boundary:
            cut += 1
        twin.feed(arrivals[fed:cut])
        fed = cut
        twin.advance(boundary)
        window += 1
    twin.feed(arrivals[fed:])
    return twin, twin.finish()


def _twin_row(nprobe) -> dict:
    # One what-if fork off the shared warm prefix: re-simulate only
    # the final window under the routing delta.  The no-delta fork
    # ("base") is compared byte for byte against a from-scratch run of
    # the same cell — the determinism contract that makes answering
    # what-ifs from checkpoints (and caching the answers) honest.
    twin, base_report = _twin_base()
    answer = twin.whatif() if nprobe == "keep" else twin.whatif(nprobe=nprobe)
    row = {
        "routing": "base" if nprobe == "keep" else f"nprobe={nprobe}",
        "qps": answer.qps,
        "p50_ms": answer.latency_p50_s * 1e3,
        "p99_ms": answer.latency_p99_s * 1e3,
        "searched": answer.completed,
        "probes_per_query": answer.mean_probes_per_query,
        "cache_entries": len(twin.cache),
        "checkpoints": len(twin.checkpoints),
    }
    if nprobe == "keep":
        _, pool = _dataset()
        scratch = _run_cell(
            _partitioned_router(),
            pool,
            arrivals=PoissonArrivals(PARTITION_RATE),
            policy=BatchPolicy(max_batch_size=32, max_wait_s=2e-3),
            pipelined=True,
            coalesce=False,
        )
        row["identical"] = (
            json.dumps(answer.to_dict(), sort_keys=True)
            == json.dumps(scratch.to_dict(), sort_keys=True)
        )
        row["base_matches_live"] = (
            json.dumps(
                {k: v for k, v in base_report.to_dict().items() if k != "twin"},
                sort_keys=True,
            )
            == json.dumps(
                {k: v for k, v in scratch.to_dict().items() if k != "twin"},
                sort_keys=True,
            )
        )
    return row


_SECTION_ROWS = {
    "sweep": _sweep_row,
    "pipeline": _pipeline_row,
    "partitioned": _partitioned_row,
    "coalescing": _coalesce_row,
    "observability": _observability_row,
    "slo": _slo_row,
    "autoscale": _autoscale_row,
    "rebalance": _rebalance_row,
    "flash": _flash_row,
    "twin": _twin_row,
}


def bench_row(section: str, spec: dict) -> dict:
    """Pool task: run one sweep row (a pure function of its spec)."""
    return _SECTION_ROWS[section](**spec)


def _row_specs(
    slo: bool, autoscale: bool, rebalance: bool, flash: bool
) -> list[tuple[str, str, dict]]:
    """The sweep matrix as ``(affinity_key, section, spec)`` rows, in
    the order the sections assemble.

    The affinity key names the router family a row needs, so a warm
    worker that owns e.g. the partitioned indexes serves every row
    built on them.
    """
    rows: list[tuple[str, str, dict]] = []
    for policy_mode in POLICIES:
        for shards in SHARDS:
            for rate in RATES:
                rows.append((
                    f"replicated-x{shards}", "sweep",
                    {"policy": policy_mode, "shards": shards, "rate": rate},
                ))
    for platform in ("cpu", "ndsearch"):
        key = "cpu-spill" if platform == "cpu" else "replicated-x1"
        for rate in PIPELINE_RATES:
            rows.append(
                (key, "pipeline", {"platform": platform, "rate": rate})
            )
    for nprobe in (None, 1, 2, PARTITION_SHARDS):
        rows.append(("partitioned", "partitioned", {"nprobe": nprobe}))
    for coalesce in (False, True):
        rows.append(("replicated-x1", "coalescing", {"coalesce": coalesce}))
    rows.append(("replicated-x1", "observability", {}))
    for nprobe in ("keep", 1, 2):
        rows.append(("partitioned", "twin", {"nprobe": nprobe}))
    if slo:
        for deadline_ms in SLO_DEADLINES_MS:
            rows.append(
                ("replicated-x1", "slo", {"deadline_ms": deadline_ms})
            )
    if autoscale:
        for scaled in (False, True):
            rows.append(("replicated-x1", "autoscale", {"scaled": scaled}))
    if rebalance:
        for moved in (False, True):
            rows.append(("partitioned", "rebalance", {"moved": moved}))
    if flash:
        for enabled in (False, True):
            rows.append(("partitioned", "flash", {"enabled": enabled}))
    return rows


def collect(
    slo: bool = False, autoscale: bool = False, rebalance: bool = False,
    flash: bool = False, workers: int = 0,
) -> dict:
    """Run the sweep matrix; pooled over ``workers`` warm subprocesses
    when positive, serially in-process otherwise.

    Either way the rows are the same pure functions of the same specs
    and the results merge in row order, so the pooled payload is
    byte-identical to the serial one.
    """
    specs = _row_specs(slo, autoscale, rebalance, flash)
    outputs = run_rows(
        [
            (key, "bench_serving:bench_row", {"section": section, "spec": spec})
            for key, section, spec in specs
        ],
        workers,
        path=[Path(__file__).resolve().parent],
    )
    results: dict = {
        "sweep": [],
        "pipeline": [],
        "partitioned": [],
        "coalescing": [],
        "observability": None,
        "twin": [],
    }
    for (_, section, _spec), output in zip(specs, outputs):
        if section == "observability":
            results["observability"] = output
        else:
            results.setdefault(section, []).append(output)
    return results


def run(results: dict | None = None) -> str:
    results = results or collect()
    sweep_table = format_table(
        ["policy", "shards", "rate", "QPS", "p50 ms", "p99 ms", "batch", "util"],
        [
            [
                r["policy"],
                r["shards"],
                f"{r['rate']:g}",
                f"{r['qps']:,.0f}",
                f"{r['p50_ms']:.3f}",
                f"{r['p99_ms']:.3f}",
                f"{r['mean_batch']:.1f}",
                f"{r['util']:.0%}",
            ]
            for r in results["sweep"]
        ],
        title="serving sweep: policy x shards x arrival rate (replicated)",
    )
    pipeline_table = format_table(
        ["platform", "rate", "QPS blk", "QPS pipe", "p99 blk", "p99 pipe", "gain"],
        [
            [
                r["platform"],
                f"{r['rate']:g}",
                f"{r['qps_blocking']:,.0f}",
                f"{r['qps_pipelined']:,.0f}",
                f"{r['p99_ms_blocking']:.3f}",
                f"{r['p99_ms_pipelined']:.3f}",
                f"{r['qps_gain']:+.1%}",
            ]
            for r in results["pipeline"]
        ],
        title="pipelined vs blocking shard devices (bursty MMPP arrivals)",
    )
    partition_table = format_table(
        ["routing", "QPS", "p50 ms", "p99 ms", "probes/q", "energy J",
         "recall", "vs repl"],
        [
            [
                r["routing"],
                f"{r['qps']:,.0f}",
                f"{r['p50_ms']:.3f}",
                f"{r['p99_ms']:.3f}",
                f"{r['probes_per_query']:.2f}",
                f"{r['energy_j']:.3g}",
                f"{r['recall']:.4f}",
                f"{r['recall_vs_replicated']:.4f}",
            ]
            for r in results["partitioned"]
        ],
        title=(
            f"partitioned x{PARTITION_SHARDS}: broadcast vs selective probing "
            f"(replicated baseline recall "
            f"{results['partitioned'][0]['recall_replicated_baseline']:.4f})"
        ),
    )
    tables = [sweep_table, pipeline_table, partition_table]
    if results.get("twin"):
        tables.append(
            format_table(
                ["fork", "QPS", "p50 ms", "p99 ms", "probes/q", "searched",
                 "note"],
                [
                    [
                        r["routing"],
                        f"{r['qps']:,.0f}",
                        f"{r['p50_ms']:.3f}",
                        f"{r['p99_ms']:.3f}",
                        f"{r['probes_per_query']:.2f}",
                        r["searched"],
                        (
                            "byte-identical to scratch"
                            if r.get("identical")
                            else "final window re-routed"
                        ),
                    ]
                    for r in results["twin"]
                ],
                title=(
                    f"incremental what-if forks off one warm prefix "
                    f"(twin, {TWIN_WINDOW_S * 1e3:g} ms checkpoints, "
                    f"{results['twin'][0]['checkpoints']} snapshots)"
                ),
            )
        )
    if "slo" in results:
        tables.append(
            format_table(
                ["deadline ms", "miss slo", "miss wait", "hi attain slo",
                 "hi attain wait", "goodput slo", "p99 slo", "p99 wait",
                 "batch slo"],
                [
                    [
                        f"{r['deadline_ms']:g}",
                        f"{r['miss_rate_slo']:.1%}",
                        f"{r['miss_rate_max_wait']:.1%}",
                        f"{r['attainment_high_slo']:.1%}",
                        f"{r['attainment_high_max_wait']:.1%}",
                        f"{r['goodput_slo']:,.0f}",
                        f"{r['p99_ms_slo']:.3f}",
                        f"{r['p99_ms_max_wait']:.3f}",
                        f"{r['mean_batch_slo']:.1f}",
                    ]
                    for r in results["slo"]
                ],
                title=(
                    f"slo policy vs max-wait @ {SLO_RATE:g} QPS "
                    f"(high-priority deadline sweep, best-effort = 4x)"
                ),
            )
        )
    if "rebalance" in results:
        tables.append(
            format_table(
                ["placement", "QPS", "goodput", "p99 ms", "miss", "max util",
                 "migr", "MB moved"],
                [
                    [
                        r["placement"],
                        f"{r['qps']:,.0f}",
                        f"{r['goodput']:,.0f}",
                        f"{r['p99_ms']:.3f}",
                        f"{r['miss_rate']:.1%}",
                        f"{r['max_util']:.0%}",
                        len(r["migrations"]),
                        f"{r['bytes_moved'] / 1e6:.2f}",
                    ]
                    for r in results["rebalance"]
                ],
                title=(
                    f"static vs rebalanced partitioned x{REBALANCE_SHARDS} "
                    f"@ {REBALANCE_RATE:g} QPS (zipf {REBALANCE_ZIPF:g}, "
                    f"nprobe 1, "
                    f"{REBALANCE_CLUSTERS_PER_SHARD} clusters/shard)"
                ),
            )
        )
    if "flash" in results:
        tables.append(_flash_table(results["flash"]))
    if "autoscale" in results:
        tables.append(
            format_table(
                ["pool", "QPS", "shed", "shed rate", "p99 ms", "queue",
                 "events", "replicas"],
                [
                    [
                        r["pool"],
                        f"{r['qps']:,.0f}",
                        r["shed"],
                        f"{r['shed_rate']:.1%}",
                        f"{r['p99_ms']:.3f}",
                        f"{r['mean_queue_depth']:.1f}",
                        len(r["scale_events"]),
                        r["replicas_final"],
                    ]
                    for r in results["autoscale"]
                ],
                title=(
                    f"static vs autoscaled pool @ {AUTOSCALE_RATE:g} QPS "
                    f"(capacity {AUTOSCALE_CAPACITY}, "
                    f"max {AUTOSCALE_MAX_REPLICAS} replicas)"
                ),
            )
        )
    return "\n\n".join(tables)


def _flash_table(rows: list[dict]) -> str:
    return format_table(
        ["storage", "QPS", "p50 ms", "p99 ms", "miss", "refresh",
         "erases", "WA", "ECC soft"],
        [
            [
                r["storage"],
                f"{r['qps']:,.0f}",
                f"{r['p50_ms']:.3f}",
                f"{r['p99_ms']:.3f}",
                f"{r['miss_rate']:.1%}",
                r.get("refreshes", "-"),
                r.get("total_erases", "-"),
                f"{r['write_amplification']:.2f}"
                if "write_amplification" in r
                else "-",
                r.get("ecc_soft_decodes", "-"),
            ]
            for r in rows
        ],
        title=(
            f"ideal vs stateful flash, partitioned "
            f"x{REBALANCE_SHARDS} @ {REBALANCE_RATE:g} QPS "
            f"(zipf {REBALANCE_ZIPF:g}, nprobe 1, disturb "
            f"threshold {FLASH_THRESHOLD})"
        ),
    )


def check_flash_rows(rows: list[dict]) -> None:
    """The --flash acceptance assertions, shared by the pytest sweep
    and the standalone tier-1 runner: the same skewed cell through a
    live FTL pays for its reads — GC refresh pauses inflate the tail,
    hot clusters wear their blocks harder than cold ones, and
    relocation writes amplify beyond the host's."""
    ideal, stateful = rows
    assert ideal["storage"] == "ideal"
    assert stateful["storage"] == "flash"
    assert "refreshes" not in ideal  # flash-off leg carries no state
    assert stateful["refreshes"] > 0, stateful
    assert stateful["p99_ms"] > ideal["p99_ms"], (ideal, stateful)
    assert stateful["ecc_soft_decodes"] > 0
    assert stateful["write_amplification"] > 1.0, stateful
    reads = stateful["cluster_page_reads"]
    erases = stateful["cluster_erases"]
    hot = max(reads, key=reads.get)
    cold = min(reads, key=reads.get)
    # Zipfian skew shows up as wear skew: the most-read cluster
    # erased its blocks more than the least-read one.
    assert reads[hot] > reads[cold]
    assert erases.get(hot, 0) > erases.get(cold, 0), (reads, erases)


def test_bench_serving(benchmark, record_table, record_json, request):
    slo = request.config.getoption("--slo")
    autoscale = request.config.getoption("--autoscale")
    rebalance = request.config.getoption("--rebalance")
    flash = request.config.getoption("--flash")
    workers = request.config.getoption("--workers")
    results = benchmark.pedantic(
        lambda: collect(
            slo=slo, autoscale=autoscale, rebalance=rebalance,
            flash=flash, workers=workers,
        ),
        rounds=1, iterations=1,
    )
    # The Chrome trace goes to its own artifact (it is a standalone
    # Perfetto-loadable file, and it would bloat the sweep JSON).
    trace = results["observability"].pop("trace")
    record_json("serving_trace", trace)
    record_table("serving_sweep", run(results))
    record_json("serving_sweep", results)
    rows = results["sweep"]

    def cell(policy, shards, rate):
        return next(
            r
            for r in rows
            if r["policy"] == policy and r["shards"] == shards and r["rate"] == rate
        )

    hi = RATES[-1]
    # Batching forms real batches under load; greedy stays near 1.
    assert cell("batch", 1, hi)["mean_batch"] > 2.0
    assert cell("greedy", 1, hi)["mean_batch"] == 1.0
    # Batching sustains at least greedy's throughput at high load.
    assert cell("batch", 1, hi)["qps"] >= 0.95 * cell("greedy", 1, hi)["qps"]
    # More shards never hurt sustained throughput under overload.
    assert cell("batch", 4, hi)["qps"] >= cell("batch", 1, hi)["qps"]
    # Load fills batches and devices: both grow with the offered rate.
    assert cell("batch", 1, hi)["mean_batch"] > cell("batch", 1, RATES[0])["mean_batch"]
    assert cell("batch", 1, hi)["util"] > cell("batch", 1, RATES[0])["util"]
    # Spreading the same load over 4 replicas relaxes per-device pressure.
    assert cell("batch", 4, hi)["util"] <= cell("batch", 1, hi)["util"]

    # Pipelining never hurts, and strictly wins (QPS up, p99 not worse)
    # on at least one bursty configuration.
    for r in results["pipeline"]:
        assert r["qps_pipelined"] >= r["qps_blocking"] * (1 - 1e-9), r
    assert any(
        r["qps_pipelined"] > r["qps_blocking"]
        and r["p99_ms_pipelined"] <= r["p99_ms_blocking"] * (1 + 1e-9)
        for r in results["pipeline"]
    ), results["pipeline"]

    # Selective probing: nprobe = num_shards reproduces broadcast
    # exactly; smaller nprobe strictly reduces per-query device work
    # while recall degrades gracefully and monotonically.
    part = {r["routing"]: r for r in results["partitioned"]}
    broadcast = part["broadcast"]
    full = part[f"nprobe={PARTITION_SHARDS}"]
    assert full["qps"] == broadcast["qps"]
    assert full["p99_ms"] == broadcast["p99_ms"]
    assert full["recall"] == broadcast["recall"]
    assert broadcast["probes_per_query"] == PARTITION_SHARDS
    assert part["nprobe=1"]["probes_per_query"] == 1.0
    assert part["nprobe=1"]["energy_j"] < broadcast["energy_j"]
    by_nprobe = sorted(
        (r for r in results["partitioned"] if r["routing"] != "broadcast"),
        key=lambda r: r["nprobe"],
    )
    for lo, hi in zip(by_nprobe[:-1], by_nprobe[1:]):
        assert lo["recall_vs_replicated"] <= hi["recall_vs_replicated"] + 1e-9
        assert lo["probes_per_query"] < hi["probes_per_query"]

    # Coalescing piggybacks duplicate in-flight queries: fewer searches
    # for the same served count.
    off, on = results["coalescing"]
    assert on["coalesced"] > 0
    assert on["searched"] < off["searched"]

    # Observability rerun: tracing + windowed metrics change nothing
    # about the run itself (observe-only hooks), the trace is a valid
    # Chrome trace-event payload, and the time series tallies with the
    # report it came from.
    obs = results["observability"]["report"]
    untraced = cell("batch", 1, RATES[-1])
    assert obs["qps"] == untraced["qps"]
    assert obs["latency_p99_s"] * 1e3 == untraced["p99_ms"]
    assert obs["counters"]["loop_events_total"] > 0
    assert obs["counters"]["loop_events_Arrival"] == REQUESTS
    series = obs["timeseries"]
    assert series["window_s"] == OBS_WINDOW_S
    windows = series["windows"]
    assert sum(w["counters"]["completions"] for w in windows) == obs["completed"]
    assert sum(w["counters"]["arrivals"] for w in windows) == REQUESTS
    assert results["observability"]["trace_events"] == len(trace["traceEvents"])
    assert trace["traceEvents"], "traced run recorded no events"
    for event in trace["traceEvents"]:
        assert "ph" in event and "name" in event

    # Incremental what-if forks (twin): the no-delta fork off the last
    # checkpoint reproduces the from-scratch broadcast cell byte for
    # byte, the base (windowed, checkpointed) run matches the live run
    # modulo the twin counters, and re-routed forks actually change
    # the suffix's routing without touching the shared prefix.
    twin_rows = {r["routing"]: r for r in results["twin"]}
    assert twin_rows["base"]["identical"], twin_rows["base"]
    assert twin_rows["base"]["base_matches_live"], twin_rows["base"]
    assert twin_rows["base"]["checkpoints"] > 1
    assert (
        twin_rows["nprobe=1"]["probes_per_query"]
        < twin_rows["base"]["probes_per_query"]
    )
    assert (
        twin_rows["nprobe=1"]["probes_per_query"]
        < twin_rows["nprobe=2"]["probes_per_query"]
    )

    # SLO sweep (--slo): loosening the deadline never raises the miss
    # rate, the slo policy keeps >= 95% high-priority attainment, and
    # it never misses more than the fixed max-wait policy it replaces.
    if "slo" in results:
        slo_rows = results["slo"]
        for tight, loose in zip(slo_rows[:-1], slo_rows[1:]):
            assert loose["miss_rate_slo"] <= tight["miss_rate_slo"] + 1e-9, (
                tight, loose,
            )
        for r in slo_rows:
            # Attainment must be earned, not vacuous: the high class
            # actually gets served, and nearly all of it on time.
            assert r["high_served_slo"] > 0, r
            assert r["high_shed_slo"] == 0, r
            assert r["attainment_high_slo"] >= 0.95, r
            assert r["miss_rate_slo"] <= r["miss_rate_max_wait"] + 1e-9, r

    # Autoscaling (--autoscale): above a static replica's capacity the
    # scaled pool sheds less and holds a lower p99.
    if "autoscale" in results:
        static, scaled = results["autoscale"]
        assert static["pool"] == "static" and scaled["pool"] == "autoscaled"
        assert static["shed"] > 0
        assert scaled["shed"] < static["shed"]
        assert scaled["p99_ms"] < static["p99_ms"]
        assert scaled["scale_events"]
        assert scaled["replicas_final"] > 1

    # Rebalancing (--rebalance): under skewed Zipfian load the
    # migrated placement beats the static one on tail latency and
    # on-time throughput, by unloading the hottest device.
    if "rebalance" in results:
        static, moved = results["rebalance"]
        assert static["placement"] == "static"
        assert moved["placement"] == "rebalanced"
        assert moved["migrations"], "skew never triggered a migration"
        assert moved["bytes_moved"] > 0
        assert moved["p99_ms"] < static["p99_ms"], (static, moved)
        assert moved["goodput"] > static["goodput"], (static, moved)
        assert moved["max_util"] < static["max_util"]
        # The log replays onto the final placement (atomic commits).
        placement = [
            c % REBALANCE_SHARDS
            for c in range(REBALANCE_SHARDS * REBALANCE_CLUSTERS_PER_SHARD)
        ]
        for event in moved["migrations"]:
            assert placement[event["cluster"]] == event["source"]
            placement[event["cluster"]] = event["dest"]
        assert placement == moved["cluster_map_final"]

    # Stateful flash (--flash): GC pauses shape the tail, wear skew
    # follows read skew — the same assertions the standalone tier-1
    # runner (`python benchmarks/bench_serving.py`) enforces.
    if "flash" in results:
        check_flash_rows(results["flash"])


def main(argv: list[str] | None = None) -> int:
    """Standalone flash sweep for tier-1 CI (no pytest-benchmark
    needed): run the ideal-vs-stateful-flash rows, assert the
    acceptance shape (GC-pause p99 inflation, erase skew following
    read skew, WA > 1) and write the wear/GC stats JSON artifact."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="Run the ideal-vs-stateful-flash serving rows and "
                    "write the wear/GC stats.",
    )
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent / "results" / "flash_wear.json",
        help="wear/GC stats output path "
             "(default benchmarks/results/flash_wear.json)",
    )
    args = parser.parse_args(argv)
    rows = [_flash_row(enabled=False), _flash_row(enabled=True)]
    print(_flash_table(rows))
    check_flash_rows(rows)
    args.out.parent.mkdir(exist_ok=True)
    args.out.write_text(json.dumps(rows, indent=2, sort_keys=True) + "\n")
    print(f"\nOK: GC pauses inflate p99, erase skew follows read skew; "
          f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
