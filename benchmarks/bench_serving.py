"""Serving sweep: batch policy x shard count x arrival rate, plus the
pipelined-vs-blocking device comparison.

The online analogue of Figs. 13/19: the same frontend, stream seed and
corpus across every cell, varying only the batching policy, the size of
the replicated device pool and the offered load.  Expected shape:

* batching beats greedy dispatch at high load (larger batches fill the
  LUN-level parallelism — the Fig. 19 effect, now under queueing);
* adding shards lifts sustained throughput once one device saturates;
* p99 grows with offered load at fixed capacity;
* pipelined shard devices (phase-timeline stage overlap) sustain at
  least blocking throughput everywhere, and strictly more on an
  I/O-bound platform under bursty arrivals, where batch N+1's SSD
  reads overlap batch N's in-core drain;
* selective shard probing (partitioned mode, IVF nprobe at the device
  pool) cuts per-query device work proportionally to nprobe while
  recall falls gracefully toward — and matches exactly at
  nprobe = num_shards — the broadcast result.

Besides the human-readable table, the sweep persists
``benchmarks/results/serving_sweep.json`` for the perf-trajectory
tooling.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.analysis.reporting import format_table
from repro.ann import BruteForceIndex, recall_at_k
from repro.core.config import NDSearchConfig
from repro.data.synthetic import clustered_gaussian, split_queries
from repro.serving import (
    BatchPolicy,
    MMPPArrivals,
    PoissonArrivals,
    QueryStream,
    ServingConfig,
    ServingFrontend,
    build_router,
)
from repro.serving.sharding import PARTITIONED

POLICIES = ("batch", "greedy")
SHARDS = (1, 4)
RATES = (500.0, 20000.0)

#: Bursty-arrival rates for the pipelined-vs-blocking comparison.
PIPELINE_RATES = (10000.0, 40000.0)

#: Shard count and offered rate for the broadcast-vs-selective rows.
PARTITION_SHARDS = 4
PARTITION_RATE = 2000.0

CORPUS, DIM, POOL, REQUESTS, K = 800, 16, 128, 400, 10


def _run_cell(
    router, pool, *, arrivals, policy, pipelined, coalesce, zipf=0.0, nprobe=None
):
    stream = QueryStream(
        arrivals,
        pool_size=POOL,
        n_requests=REQUESTS,
        k=K,
        zipf_exponent=zipf,
        seed=33,
    )
    frontend = ServingFrontend(
        router,
        ServingConfig(
            policy=policy,
            cache_capacity=0,  # no cache noise in the sweeps
            pipelined=pipelined,
            coalesce=coalesce,
            nprobe=nprobe,
        ),
    )
    return frontend.run(stream.generate(), pool)


def collect() -> dict:
    vectors = clustered_gaussian(CORPUS, DIM, seed=31)
    pool = split_queries(vectors, POOL, seed=32)
    config = NDSearchConfig.scaled()
    routers = {
        shards: build_router(vectors, num_shards=shards, config=config)
        for shards in SHARDS
    }

    # ---- policy x shards x rate (replicated NDSearch pool) --------------
    sweep = []
    for policy_mode in POLICIES:
        for shards in SHARDS:
            for rate in RATES:
                report = _run_cell(
                    routers[shards],
                    pool,
                    arrivals=PoissonArrivals(rate),
                    policy=BatchPolicy(
                        max_batch_size=32, max_wait_s=2e-3, mode=policy_mode
                    ),
                    pipelined=True,
                    coalesce=False,  # uniform pool: nothing to coalesce
                )
                sweep.append(
                    {
                        "policy": policy_mode,
                        "shards": shards,
                        "rate": rate,
                        "qps": report.qps,
                        "p50_ms": report.latency_p50_s * 1e3,
                        "p99_ms": report.latency_p99_s * 1e3,
                        "mean_batch": report.mean_batch_size,
                        "util": float(np.mean(report.shard_utilization)),
                    }
                )

    # ---- pipelined vs blocking devices under bursty arrivals ------------
    # The CPU host with a spilling DRAM (the billion-scale analogue:
    # the corpus does not fit, every access reads the SSD) has the
    # fattest front stage, so it shows the overlap most clearly; the
    # NDSearch pool is included to confirm "never worse".
    spill_config = replace(
        config, host=replace(config.host, dram_capacity_bytes=16 * 1024)
    )
    pipeline_routers = {
        "cpu": build_router(
            vectors, num_shards=2, config=spill_config, platform="cpu"
        ),
        "ndsearch": routers[1],
    }
    pipeline = []
    for platform, router in pipeline_routers.items():
        for rate in PIPELINE_RATES:
            cells = {}
            for mode, pipelined in (("blocking", False), ("pipelined", True)):
                report = _run_cell(
                    router,
                    pool,
                    arrivals=MMPPArrivals(rate),
                    policy=BatchPolicy(max_batch_size=32, max_wait_s=2e-3),
                    pipelined=pipelined,
                    coalesce=False,
                )
                cells[mode] = report
            pipeline.append(
                {
                    "platform": platform,
                    "arrivals": "mmpp",
                    "rate": rate,
                    "qps_blocking": cells["blocking"].qps,
                    "qps_pipelined": cells["pipelined"].qps,
                    "p99_ms_blocking": cells["blocking"].latency_p99_s * 1e3,
                    "p99_ms_pipelined": cells["pipelined"].latency_p99_s * 1e3,
                    "qps_gain": (
                        cells["pipelined"].qps / cells["blocking"].qps - 1.0
                        if cells["blocking"].qps > 0
                        else 0.0
                    ),
                }
            )

    # ---- partitioned mode: broadcast vs selective shard probing ---------
    # IVF nprobe lifted to the device pool: each query fans out only to
    # the nprobe shards whose k-means centroids are nearest.  Recall is
    # measured offline on the query pool, against exact ground truth
    # and against the replicated pool's results (the "no partitioning"
    # reference a deployment would compare to).
    part_router = build_router(
        vectors,
        num_shards=PARTITION_SHARDS,
        config=config,
        mode=PARTITIONED,
        seed=35,
    )
    gt, _ = BruteForceIndex(vectors).search_batch(pool, K)
    replicated_ids, _, _ = routers[1].search_all(pool, K)
    recall_replicated = recall_at_k(replicated_ids, gt, K)
    partition_rows = []
    for nprobe in (None, 1, 2, PARTITION_SHARDS):
        if nprobe is None:
            ids, _, _ = part_router.search_all(pool, K)
        else:
            ids, _, _ = part_router.search_probed(pool, K, nprobe)
        report = _run_cell(
            part_router,
            pool,
            arrivals=PoissonArrivals(PARTITION_RATE),
            policy=BatchPolicy(max_batch_size=32, max_wait_s=2e-3),
            pipelined=True,
            coalesce=False,
            nprobe=nprobe,
        )
        partition_rows.append(
            {
                "routing": "broadcast" if nprobe is None else f"nprobe={nprobe}",
                "nprobe": PARTITION_SHARDS if nprobe is None else nprobe,
                "qps": report.qps,
                "p50_ms": report.latency_p50_s * 1e3,
                "p99_ms": report.latency_p99_s * 1e3,
                "probes_per_query": report.mean_probes_per_query,
                "shard_probes": list(report.shard_probe_counts),
                "energy_j": report.energy_j,
                "recall": recall_at_k(ids, gt, K),
                "recall_vs_replicated": recall_at_k(ids, replicated_ids, K),
                "recall_replicated_baseline": recall_replicated,
            }
        )

    # ---- request coalescing on a skewed bursty stream -------------------
    coalesce_rows = []
    for coalesce in (False, True):
        report = _run_cell(
            routers[1],
            pool,
            arrivals=MMPPArrivals(20000.0),
            policy=BatchPolicy(max_batch_size=32, max_wait_s=2e-3),
            pipelined=True,
            coalesce=coalesce,
            zipf=1.1,
        )
        coalesce_rows.append(
            {
                "coalesce": coalesce,
                "searched": report.completed,
                "coalesced": report.coalesced,
                "qps": report.qps,
                "p99_ms": report.latency_p99_s * 1e3,
            }
        )

    return {
        "sweep": sweep,
        "pipeline": pipeline,
        "partitioned": partition_rows,
        "coalescing": coalesce_rows,
    }


def run(results: dict | None = None) -> str:
    results = results or collect()
    sweep_table = format_table(
        ["policy", "shards", "rate", "QPS", "p50 ms", "p99 ms", "batch", "util"],
        [
            [
                r["policy"],
                r["shards"],
                f"{r['rate']:g}",
                f"{r['qps']:,.0f}",
                f"{r['p50_ms']:.3f}",
                f"{r['p99_ms']:.3f}",
                f"{r['mean_batch']:.1f}",
                f"{r['util']:.0%}",
            ]
            for r in results["sweep"]
        ],
        title="serving sweep: policy x shards x arrival rate (replicated)",
    )
    pipeline_table = format_table(
        ["platform", "rate", "QPS blk", "QPS pipe", "p99 blk", "p99 pipe", "gain"],
        [
            [
                r["platform"],
                f"{r['rate']:g}",
                f"{r['qps_blocking']:,.0f}",
                f"{r['qps_pipelined']:,.0f}",
                f"{r['p99_ms_blocking']:.3f}",
                f"{r['p99_ms_pipelined']:.3f}",
                f"{r['qps_gain']:+.1%}",
            ]
            for r in results["pipeline"]
        ],
        title="pipelined vs blocking shard devices (bursty MMPP arrivals)",
    )
    partition_table = format_table(
        ["routing", "QPS", "p50 ms", "p99 ms", "probes/q", "energy J",
         "recall", "vs repl"],
        [
            [
                r["routing"],
                f"{r['qps']:,.0f}",
                f"{r['p50_ms']:.3f}",
                f"{r['p99_ms']:.3f}",
                f"{r['probes_per_query']:.2f}",
                f"{r['energy_j']:.3g}",
                f"{r['recall']:.4f}",
                f"{r['recall_vs_replicated']:.4f}",
            ]
            for r in results["partitioned"]
        ],
        title=(
            f"partitioned x{PARTITION_SHARDS}: broadcast vs selective probing "
            f"(replicated baseline recall "
            f"{results['partitioned'][0]['recall_replicated_baseline']:.4f})"
        ),
    )
    return sweep_table + "\n\n" + pipeline_table + "\n\n" + partition_table


def test_bench_serving(benchmark, record_table, record_json):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    record_table("serving_sweep", run(results))
    record_json("serving_sweep", results)
    rows = results["sweep"]

    def cell(policy, shards, rate):
        return next(
            r
            for r in rows
            if r["policy"] == policy and r["shards"] == shards and r["rate"] == rate
        )

    hi = RATES[-1]
    # Batching forms real batches under load; greedy stays near 1.
    assert cell("batch", 1, hi)["mean_batch"] > 2.0
    assert cell("greedy", 1, hi)["mean_batch"] == 1.0
    # Batching sustains at least greedy's throughput at high load.
    assert cell("batch", 1, hi)["qps"] >= 0.95 * cell("greedy", 1, hi)["qps"]
    # More shards never hurt sustained throughput under overload.
    assert cell("batch", 4, hi)["qps"] >= cell("batch", 1, hi)["qps"]
    # Load fills batches and devices: both grow with the offered rate.
    assert cell("batch", 1, hi)["mean_batch"] > cell("batch", 1, RATES[0])["mean_batch"]
    assert cell("batch", 1, hi)["util"] > cell("batch", 1, RATES[0])["util"]
    # Spreading the same load over 4 replicas relaxes per-device pressure.
    assert cell("batch", 4, hi)["util"] <= cell("batch", 1, hi)["util"]

    # Pipelining never hurts, and strictly wins (QPS up, p99 not worse)
    # on at least one bursty configuration.
    for r in results["pipeline"]:
        assert r["qps_pipelined"] >= r["qps_blocking"] * (1 - 1e-9), r
    assert any(
        r["qps_pipelined"] > r["qps_blocking"]
        and r["p99_ms_pipelined"] <= r["p99_ms_blocking"] * (1 + 1e-9)
        for r in results["pipeline"]
    ), results["pipeline"]

    # Selective probing: nprobe = num_shards reproduces broadcast
    # exactly; smaller nprobe strictly reduces per-query device work
    # while recall degrades gracefully and monotonically.
    part = {r["routing"]: r for r in results["partitioned"]}
    broadcast = part["broadcast"]
    full = part[f"nprobe={PARTITION_SHARDS}"]
    assert full["qps"] == broadcast["qps"]
    assert full["p99_ms"] == broadcast["p99_ms"]
    assert full["recall"] == broadcast["recall"]
    assert broadcast["probes_per_query"] == PARTITION_SHARDS
    assert part["nprobe=1"]["probes_per_query"] == 1.0
    assert part["nprobe=1"]["energy_j"] < broadcast["energy_j"]
    by_nprobe = sorted(
        (r for r in results["partitioned"] if r["routing"] != "broadcast"),
        key=lambda r: r["nprobe"],
    )
    for lo, hi in zip(by_nprobe[:-1], by_nprobe[1:]):
        assert lo["recall_vs_replicated"] <= hi["recall_vs_replicated"] + 1e-9
        assert lo["probes_per_query"] < hi["probes_per_query"]

    # Coalescing piggybacks duplicate in-flight queries: fewer searches
    # for the same served count.
    off, on = results["coalescing"]
    assert on["coalesced"] > 0
    assert on["searched"] < off["searched"]
