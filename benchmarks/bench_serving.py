"""Serving sweep: batch policy x shard count x arrival rate.

The online analogue of Figs. 13/19: the same frontend, stream seed and
corpus across every cell, varying only the batching policy, the size of
the replicated device pool and the offered load.  Expected shape:

* batching beats greedy dispatch at high load (larger batches fill the
  LUN-level parallelism — the Fig. 19 effect, now under queueing);
* adding shards lifts sustained throughput once one device saturates;
* p99 grows with offered load at fixed capacity.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.config import NDSearchConfig
from repro.data.synthetic import clustered_gaussian, split_queries
from repro.serving import (
    BatchPolicy,
    PoissonArrivals,
    QueryStream,
    ServingConfig,
    ServingFrontend,
    build_router,
)

POLICIES = ("batch", "greedy")
SHARDS = (1, 4)
RATES = (500.0, 20000.0)

CORPUS, DIM, POOL, REQUESTS, K = 800, 16, 128, 400, 10


def collect() -> list[dict]:
    vectors = clustered_gaussian(CORPUS, DIM, seed=31)
    pool = split_queries(vectors, POOL, seed=32)
    config = NDSearchConfig.scaled()
    routers = {
        shards: build_router(vectors, num_shards=shards, config=config)
        for shards in SHARDS
    }
    rows = []
    for policy_mode in POLICIES:
        for shards in SHARDS:
            for rate in RATES:
                stream = QueryStream(
                    PoissonArrivals(rate),
                    pool_size=POOL,
                    n_requests=REQUESTS,
                    k=K,
                    zipf_exponent=0.0,  # uniform: no cache noise in the sweep
                    seed=33,
                )
                frontend = ServingFrontend(
                    routers[shards],
                    ServingConfig(
                        policy=BatchPolicy(
                            max_batch_size=32, max_wait_s=2e-3, mode=policy_mode
                        ),
                        cache_capacity=0,
                    ),
                )
                report = frontend.run(stream.generate(), pool)
                rows.append(
                    {
                        "policy": policy_mode,
                        "shards": shards,
                        "rate": rate,
                        "qps": report.qps,
                        "p50_ms": report.latency_p50_s * 1e3,
                        "p99_ms": report.latency_p99_s * 1e3,
                        "mean_batch": report.mean_batch_size,
                        "util": float(np.mean(report.shard_utilization)),
                    }
                )
    return rows


def run() -> str:
    rows = collect()
    return format_table(
        ["policy", "shards", "rate", "QPS", "p50 ms", "p99 ms", "batch", "util"],
        [
            [
                r["policy"],
                r["shards"],
                f"{r['rate']:g}",
                f"{r['qps']:,.0f}",
                f"{r['p50_ms']:.3f}",
                f"{r['p99_ms']:.3f}",
                f"{r['mean_batch']:.1f}",
                f"{r['util']:.0%}",
            ]
            for r in rows
        ],
        title="serving sweep: policy x shards x arrival rate (replicated)",
    )


def test_bench_serving(benchmark, record_table):
    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    record_table("serving_sweep", run())

    def cell(policy, shards, rate):
        return next(
            r
            for r in rows
            if r["policy"] == policy and r["shards"] == shards and r["rate"] == rate
        )

    hi = RATES[-1]
    # Batching forms real batches under load; greedy stays near 1.
    assert cell("batch", 1, hi)["mean_batch"] > 2.0
    assert cell("greedy", 1, hi)["mean_batch"] == 1.0
    # Batching sustains at least greedy's throughput at high load.
    assert cell("batch", 1, hi)["qps"] >= 0.95 * cell("greedy", 1, hi)["qps"]
    # More shards never hurt sustained throughput under overload.
    assert cell("batch", 4, hi)["qps"] >= cell("batch", 1, hi)["qps"]
    # Load fills batches and devices: both grow with the offered rate.
    assert cell("batch", 1, hi)["mean_batch"] > cell("batch", 1, RATES[0])["mean_batch"]
    assert cell("batch", 1, hi)["util"] > cell("batch", 1, RATES[0])["util"]
    # Spreading the same load over 4 replicas relaxes per-device pressure.
    assert cell("batch", 4, hi)["util"] <= cell("batch", 1, hi)["util"]
