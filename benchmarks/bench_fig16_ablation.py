"""Fig. 16 — full ablation of the proposed techniques on spacev-1b."""

from repro.experiments import fig16_ablation


def test_fig16_ablation(benchmark, record_table):
    rows = benchmark.pedantic(fig16_ablation.collect, rounds=1, iterations=1)
    record_table("fig16_ablation", fig16_ablation.run())
    by = {r["setting"]: r for r in rows}

    # Bare NDSearch already beats the CPU (paper: > 4x; scaled machine
    # compresses the factor but the win must be clear).
    assert by["Bare"]["speedup_vs_cpu"] > 1.5

    # Each added technique is monotonic non-hurting, and the full stack
    # is a large multiple of Bare (paper: 4.1x).
    order = ["Bare", "re", "re+mp", "re+mp+da", "re+mp+da+sp"]
    qps = [by[s]["qps"] for s in order]
    for a, b in zip(qps, qps[1:]):
        assert b >= a * 0.98
    assert qps[-1] / qps[0] > 2.5

    # Without dynamic allocating, NDSearch can hardly beat DS-cp.
    assert by["re+mp"]["qps"] < by["DS-cp"]["qps"] * 1.5
    # With everything on, it clearly does.
    assert by["re+mp+da+sp"]["qps"] > by["DS-cp"]["qps"] * 1.5
