"""Fig. 1 — CPU execution-time breakdown (SSD I/O vs compute+sort)."""

from repro.experiments import fig01_cpu_breakdown


def test_fig01_cpu_breakdown(benchmark, record_table):
    rows = benchmark.pedantic(
        fig01_cpu_breakdown.collect, rounds=1, iterations=1
    )
    record_table("fig01_cpu_breakdown", fig01_cpu_breakdown.run())

    # Acceptance: SSD I/O read dominates (paper: 62-75% HNSW, 61-67%
    # DiskANN) on every out-of-core dataset and batch size.
    for row in rows:
        assert row["ssd_io_read"] > 0.5, row
    # DiskANN's hot-vertex cache trades SSD reads for DRAM: its I/O
    # share is lower than HNSW's on the same dataset/batch.
    by_key = {(r["algorithm"], r["dataset"], r["batch"]): r for r in rows}
    for (algo, ds, batch), row in by_key.items():
        if algo == "diskann":
            hnsw = by_key[("hnsw", ds, batch)]
            assert row["ssd_io_read"] <= hnsw["ssd_io_read"] + 0.02
