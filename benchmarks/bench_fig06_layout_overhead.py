"""Fig. 6 — padded slice-layout overhead vs LUNCSR."""

import pytest

from repro.experiments import fig06_layout_overhead


def test_fig06_layout_overhead(benchmark, record_table):
    rows = benchmark.pedantic(
        fig06_layout_overhead.collect, rounds=1, iterations=1
    )
    record_table("fig06_layout_overhead", fig06_layout_overhead.run())

    # The paper's headline number, exactly.
    assert fig06_layout_overhead.paper_example() == pytest.approx(
        0.469, abs=0.001
    )
    # Every dataset wastes page bytes on irrelevant IDs under the slice
    # layout, and CSR always shrinks the footprint.
    for row in rows[1:]:
        assert row["id_waste"] > 0.0
        assert row["csr_saving"] > 0.0
