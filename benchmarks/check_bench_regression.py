"""Gate a fresh serving profile against the committed perf trajectory.

Compares a freshly recorded profile (``profile_serving.py --out ...``)
against the committed ``BENCH_serving.json`` baseline and exits
non-zero if any config's events/sec fell more than the threshold below
the baseline *after calibration scaling* — both payloads carry a
pure-kernel events/sec measurement from their own host, and the
baseline is rescaled by their ratio, so a slower CI runner does not
trip the gate but a genuinely slower simulator does (see
:func:`repro.obs.profile.check_regression`).

Usage (what CI runs)::

    PYTHONPATH=src python benchmarks/profile_serving.py --out /tmp/current.json
    PYTHONPATH=src python benchmarks/check_bench_regression.py \\
        --baseline BENCH_serving.json --current /tmp/current.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import check_regression  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail if the serving stack's events/sec regressed "
                    "versus the committed BENCH_serving.json.",
    )
    parser.add_argument(
        "--baseline", type=Path, default=REPO_ROOT / "BENCH_serving.json",
        help="committed trajectory to gate against",
    )
    parser.add_argument(
        "--current", type=Path, required=True,
        help="freshly recorded profile (profile_serving.py --out ...)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.30,
        help="maximum tolerated calibration-scaled events/sec drop "
             "(default 0.30 = 30%%)",
    )
    args = parser.parse_args(argv)
    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    rows, failures = check_regression(
        baseline, current, threshold=args.threshold
    )
    skipped_new = []
    for row in rows:
        if row["status"] == "new":
            # A config present in the fresh run but absent from the
            # baseline has no trajectory to gate against: skip it
            # explicitly (never fail) — it gets a baseline entry at
            # the next BENCH_serving.json refresh.
            skipped_new.append(row["name"])
            print(
                f"  {row['name']:<26} skipped: not in baseline "
                f"(gated from the next BENCH refresh on)"
            )
            continue
        if row["status"] == "removed":
            print(f"  {row['name']:<26} removed (in baseline only)")
            continue
        print(
            f"  {row['name']:<26} {row['status']:<9} "
            f"baseline {row['baseline_eps']:>10,.0f} ev/s "
            f"(scaled {row['expected_eps']:>10,.0f})  "
            f"current {row['current_eps']:>10,.0f}  "
            f"ratio {row['ratio']:.2f}"
        )
    if failures:
        print(
            f"\nFAIL: {len(failures)} config(s) regressed more than "
            f"{args.threshold:.0%}:",
            file=sys.stderr,
        )
        for message in failures:
            print(f"  {message}", file=sys.stderr)
        return 1
    note = (
        f" ({len(skipped_new)} new config(s) skipped — not in baseline)"
        if skipped_new else ""
    )
    print(f"\nOK: no config regressed more than {args.threshold:.0%}{note}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
