"""Fig. 18 — ECC: BER distribution and hard-decode-failure latency."""

from repro.experiments import fig18_ecc


def test_fig18a_ber_distribution(benchmark):
    data = benchmark.pedantic(fig18_ecc.collect_ber, rounds=1, iterations=1)
    s = data["summary"]
    # Centered near the 1e-6 typical raw BER with a worse-plane tail.
    assert 5e-7 < s["median"] < 2e-6
    assert s["p95"] > 1.5 * s["median"]
    assert data["counts"].sum() == 512


def test_fig18b_latency_vs_failure_prob(benchmark, record_table):
    rows = benchmark.pedantic(
        fig18_ecc.collect_latency, rounds=1, iterations=1
    )
    record_table("fig18_ecc", fig18_ecc.run())
    by = {(r["dataset"], r["failure_prob"]): r for r in rows}
    for ds in fig18_ecc.DATASETS:
        # Latency grows monotonically with failure probability.
        lat = [by[(ds, p)]["norm_latency"] for p in (0.01, 0.05, 0.10, 0.30)]
        for a, b in zip(lat, lat[1:]):
            assert b >= a * 0.999, (ds, lat)
        # At the default 1% the slowdown is negligible; at 30% it is
        # tangible but bounded (paper: 1.23-1.66x).
        assert by[(ds, 0.01)]["norm_latency"] < 1.10
        assert 1.05 < by[(ds, 0.30)]["norm_latency"] < 2.0
        assert by[(ds, 0.30)]["soft_decodes"] > by[(ds, 0.01)]["soft_decodes"]
