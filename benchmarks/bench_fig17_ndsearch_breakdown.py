"""Fig. 17 — execution-time breakdown of NDSearch."""

from repro.experiments import fig17_ndsearch_breakdown


def test_fig17_ndsearch_breakdown(benchmark, record_table):
    rows = benchmark.pedantic(
        fig17_ndsearch_breakdown.collect, rounds=1, iterations=1
    )
    record_table(
        "fig17_ndsearch_breakdown", fig17_ndsearch_breakdown.run()
    )
    big = ("sift-1b", "deep-1b", "spacev-1b")
    for row in rows:
        # NAND read is a leading component (paper: 24-38%); on the
        # out-of-core datasets it is the largest one.  The tiny
        # in-memory analogues share pages so aggressively that
        # controller work can edge ahead there.
        others = {
            k: v for k, v in row.items()
            if k not in ("algorithm", "dataset", "nand_read")
            and isinstance(v, float)
        }
        if row["dataset"] in big:
            assert row["nand_read"] >= max(others.values()) * 0.9, row
        assert 0.10 < row["nand_read"] < 0.75, row
        # Host SSD I/O collapses from ~70% (Fig. 1) to a few percent.
        assert row["ssd_io_read"] < 0.10, row
        # The bitonic kernel stays a small share (paper: <= 12%).
        assert row["bitonic_fpga"] < 0.15, row

    # DiskANN uses the internal DRAM cache: more DRAM+core share, less
    # NAND, than HNSW on the same dataset (paper's Fig. 17 note).
    by = {(r["algorithm"], r["dataset"]): r for r in rows}
    for ds in ("sift-1b", "deep-1b", "spacev-1b"):
        hnsw, diskann = by[("hnsw", ds)], by[("diskann", ds)]
        hnsw_host = hnsw["dram_access"] + hnsw["embedded_cores"]
        diskann_host = diskann["dram_access"] + diskann["embedded_cores"]
        assert diskann_host > hnsw_host * 0.9, ds
