"""Fig. 10 — reordering quality: beta for original/random-BFS/ours."""

import numpy as np

from repro.experiments import fig10_reordering_beta


def test_fig10_example(benchmark, record_table):
    data = benchmark.pedantic(
        fig10_reordering_beta.collect_example, rounds=1, iterations=1
    )
    record_table("fig10_reordering_beta", fig10_reordering_beta.run())
    # Ours beats the original labeling and at least matches the random
    # method's average, in one deterministic run (the Fig. 10 claim).
    assert data["ours"] < data["original"]
    assert data["ours"] <= np.mean(data["random_bfs"])


def test_fig10_workload_graphs(benchmark):
    rows = benchmark.pedantic(
        fig10_reordering_beta.collect_workloads, rounds=1, iterations=1
    )
    for row in rows:
        assert row["ours"] < row["original"], row
        assert row["ours"] <= row["random_bfs"] * 1.05, row
