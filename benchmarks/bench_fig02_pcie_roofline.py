"""Fig. 2 — PCIe utilisation saturation and the roofline lift."""

from repro.experiments import fig02_pcie_roofline


def test_fig02a_pcie_utilization(benchmark, record_table):
    util = benchmark.pedantic(
        fig02_pcie_roofline.collect_utilization, rounds=1, iterations=1
    )
    # Monotonic ramp saturating near 83% (paper Fig. 2a).
    values = [r["utilization"] for r in util]
    assert all(b >= a for a, b in zip(values, values[1:]))
    assert values[-1] > 0.82
    by_batch = {r["batch"]: r["utilization"] for r in util}
    assert by_batch[1024] > 0.79  # saturated past batch 1024
    record_table("fig02_pcie_roofline", fig02_pcie_roofline.run())


def test_fig02b_roofline_bounds_speedup(benchmark):
    rows = benchmark.pedantic(
        fig02_pcie_roofline.collect_roofline, rounds=1, iterations=1
    )
    for row in rows:
        # The measured speedup must stay under the bandwidth-ceiling
        # lift of the *scaled* machine (Fig. 2b's headroom argument).
        assert row["measured_speedup_vs_cpu"] < row["scaled_lift"], row
        # Paper-scale machine: ~53x lift (819.2 / 15.4 GB/s).
        assert 40 < row["paper_scale_lift"] < 70
