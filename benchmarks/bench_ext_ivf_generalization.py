"""Extension bench — Section VIII-B: generalising NDSearch beyond
graph traversal.

The paper argues NDSearch's design should carry over to other ANNS
families because they are all memory-bandwidth-bound.  This bench runs
a quantization-based index (IVF-Flat) through the same trace-driven
machinery and checks the claim: NDSearch still clearly beats the
CPU+SSD deployment, and IVF's *sequential* posting-list scans achieve
better page locality than graph traversal's scattered hops.
"""

import numpy as np

from repro.analysis.locality import page_access_ratio
from repro.analysis.reporting import format_table
from repro.ann.ivf import IVFFlatIndex, IVFParams
from repro.ann.trace import remap_trace
from repro.baselines import CPUModel
from repro.baselines.common import DatasetProfile
from repro.core import NDSearch, NDSearchConfig
from repro.data import load_dataset
from repro.experiments.common import get_workload


def _run():
    dataset = load_dataset("sift-1b")
    ivf = IVFFlatIndex(dataset.vectors, IVFParams(n_lists=64, nprobe=6))
    queries = dataset.query_batch(512)
    ids, dists, traces = ivf.search_batch(queries, 10)

    config = NDSearchConfig.scaled()
    system = NDSearch(index=ivf, config=config)
    nd = system.simulate_traces(traces, dataset="sift-1b", algorithm="ivf")
    profile = DatasetProfile(
        name="sift-1b",
        num_vectors=dataset.num_vectors,
        dim=dataset.dim,
        vector_bytes=dataset.vector_bytes,
        footprint_bytes=dataset.footprint_bytes(),
    )
    cpu = CPUModel(timing=config.timing, host=config.host).run_batch(
        traces, profile, algorithm="ivf"
    )
    ratio_ivf = page_access_ratio(
        [remap_trace(t, system.new_id) for t in traces[:64]],
        system._model.placement,
    )

    graph_workload = get_workload("sift-1b", "hnsw")
    graph_system = graph_workload.ndsearch(config)
    graph_traces = graph_workload.trace_set.subset(64).traces
    ratio_graph = page_access_ratio(
        [remap_trace(t, graph_system.new_id) for t in graph_traces],
        graph_system._model.placement,
    )
    return nd, cpu, ratio_ivf, ratio_graph


def test_ext_ivf_generalization(benchmark, record_table):
    nd, cpu, ratio_ivf, ratio_graph = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    table = format_table(
        ["metric", "value"],
        [
            ["IVF on NDSearch (QPS)", f"{nd.qps / 1e3:.1f}K"],
            ["IVF on CPU+SSD (QPS)", f"{cpu.qps / 1e3:.1f}K"],
            ["NDSearch speedup", f"{nd.speedup_over(cpu):.2f}x"],
            ["page-access ratio (IVF lists)", f"{ratio_ivf:.3f}"],
            ["page-access ratio (HNSW hops)", f"{ratio_graph:.3f}"],
        ],
        title="Extension — quantization-based ANNS on the NDSearch substrate",
    )
    record_table("ext_ivf_generalization", table)

    # The Section VIII-B claim: the memory-bound workload still wins
    # big from in-storage execution ...
    assert nd.speedup_over(cpu) > 2.0
    # ... and sequential posting-list scans have far better spatial
    # locality than graph hops.
    assert ratio_ivf < 0.6 * ratio_graph
