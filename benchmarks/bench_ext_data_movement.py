"""Extension bench — the data-movement hierarchy behind the speedups.

Quantifies Section IV-A's filtering claim on real workload traffic:
how many bytes cross each boundary per platform, and the multi-LUN
search workflow's bus-byte reduction versus multi-LUN read (paper:
result lists can be as little as ~1/32 of the page traffic).
"""

from repro.analysis.datamovement import filtering_factor, movement_of
from repro.analysis.reporting import format_table
from repro.core.config import NDSearchConfig
from repro.experiments.common import get_workload, run_platform
from repro.flash.channel import ChannelSimulator


def _collect():
    workload = get_workload("sift-1b", "hnsw")
    results = {
        p: run_platform(p, workload, batch=512)
        for p in ("cpu", "smartssd", "ds-cp", "ndsearch")
    }
    movements = {p: movement_of(r) for p, r in results.items()}
    config = NDSearchConfig.scaled()
    channel = ChannelSimulator(
        geometry=config.geometry, timing=config.timing
    )
    workflow_ratio = channel.filtering_ratio(
        list(range(4)), results_per_lun=4, dim=workload.dataset.dim
    )
    return results, movements, workflow_ratio


def test_ext_data_movement(benchmark, record_table):
    results, movements, workflow_ratio = benchmark.pedantic(
        _collect, rounds=1, iterations=1
    )
    rows = [
        [
            p,
            f"{m.host_pcie_bytes / 1e6:.2f} MB",
            f"{m.private_pcie_bytes / 1e6:.2f} MB",
            f"{m.internal_bytes / 1e6:.2f} MB",
            f"{m.per_query(512) / 1e3:.1f} KB",
        ]
        for p, m in movements.items()
    ]
    table = format_table(
        ["platform", "host PCIe", "private PCIe", "internal buses",
         "total / query"],
        rows,
        title="Extension — bytes moved per 512-query batch (sift-1b, HNSW)",
    )
    table += (
        f"\n\nmulti-LUN search vs read bus bytes: {workflow_ratio:.0f}x "
        "reduction (paper: as low as ~32x)"
    )
    record_table("ext_data_movement", table)

    # The hierarchy: every NDP design moves less than the CPU deployment,
    # and NDSearch moves the least.
    assert movements["ndsearch"].total_bytes < movements["ds-cp"].total_bytes
    assert movements["ds-cp"].total_bytes < movements["cpu"].total_bytes
    assert movements["smartssd"].total_bytes < movements["cpu"].total_bytes

    # The command-workflow filtering factor reaches the paper's ~32x.
    assert workflow_ratio >= 30.0

    # End-to-end, NDSearch ships an order of magnitude less than the
    # page-shipping in-storage design.
    assert filtering_factor(results["ndsearch"], results["ds-cp"]) > 5.0
