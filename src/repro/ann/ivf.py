"""IVF-Flat: quantization-based ANNS (the Section VIII-B extension).

The paper limits NDSearch's evaluation to graph-traversal ANNS but
argues (Section VIII-B) that the design generalises: quantization-based
methods like Faiss's IVF are equally memory-bound, so computing their
distance scans inside the LUNs removes the same PCIe bottleneck.  This
module provides that workload: a from-scratch IVF-Flat index — a
k-means coarse quantizer over the corpus plus per-centroid posting
lists — whose searches emit the same :class:`SearchTrace` records as
the graph algorithms (one "iteration" per probed list), so the existing
trace-driven platform models run it unchanged.

Unlike graph traversal, IVF's access pattern is *sequential* within a
posting list; laying lists out contiguously gives near-perfect
page-buffer locality, which is why the NDP advantage persists even
without the paper's reordering machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ann.distance import DistanceMetric, distances_to_query, pairwise_distances
from repro.ann.graph import ProximityGraph
from repro.ann.trace import SearchTrace, TraceRecorder


def kmeans(
    vectors: np.ndarray,
    n_clusters: int,
    iterations: int = 15,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Plain Lloyd's k-means: returns (centroids, assignment).

    Deterministic given the seed; empty clusters are re-seeded from the
    points currently farthest from their centroids — each empty cluster
    takes a *distinct* farthest point, so simultaneously-empty clusters
    never collapse onto identical centroids.
    """
    if n_clusters < 1:
        raise ValueError("n_clusters must be >= 1")
    n = vectors.shape[0]
    if n_clusters > n:
        raise ValueError("more clusters than points")
    rng = np.random.default_rng(seed)
    centroids = vectors[rng.choice(n, size=n_clusters, replace=False)].copy()
    assignment = np.zeros(n, dtype=np.int64)
    for _ in range(iterations):
        dmat = pairwise_distances(vectors, centroids, DistanceMetric.EUCLIDEAN)
        assignment = np.argmin(dmat, axis=1)
        nearest = dmat[np.arange(n), assignment]
        farthest = iter(np.argsort(-nearest, kind="stable"))
        for c in range(n_clusters):
            members = vectors[assignment == c]
            if members.shape[0]:
                centroids[c] = members.mean(axis=0)
            else:
                centroids[c] = vectors[int(next(farthest))]
    return centroids.astype(np.float32), assignment


@dataclass(frozen=True)
class IVFParams:
    """IVF-Flat construction/search parameters."""

    n_lists: int = 64
    nprobe: int = 8
    kmeans_iterations: int = 15
    seed: int = 5

    def __post_init__(self) -> None:
        if self.n_lists < 1:
            raise ValueError("n_lists must be >= 1")
        if not 1 <= self.nprobe <= self.n_lists:
            raise ValueError("nprobe must be in [1, n_lists]")


class IVFFlatIndex:
    """Inverted-file index with exact (flat) residual scans."""

    def __init__(
        self,
        vectors: np.ndarray,
        params: IVFParams | None = None,
        metric: DistanceMetric = DistanceMetric.EUCLIDEAN,
    ) -> None:
        self.params = params or IVFParams()
        self.metric = metric
        self.vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        if self.vectors.shape[0] == 0:
            raise ValueError("cannot build an index over an empty dataset")
        n_lists = min(self.params.n_lists, self.vectors.shape[0])
        self.centroids, assignment = kmeans(
            self.vectors,
            n_lists,
            iterations=self.params.kmeans_iterations,
            seed=self.params.seed,
        )
        self.lists: list[np.ndarray] = [
            np.flatnonzero(assignment == c).astype(np.int64)
            for c in range(n_lists)
        ]

    # ---- search ----------------------------------------------------------
    def search(
        self,
        query: np.ndarray,
        k: int,
        nprobe: int | None = None,
        recorder: TraceRecorder | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Scan the ``nprobe`` nearest posting lists; exact within them."""
        if k < 1:
            raise ValueError("k must be >= 1")
        nprobe = nprobe or self.params.nprobe
        c_dists = distances_to_query(self.centroids, query, self.metric)
        probe_order = np.argsort(c_dists)[:nprobe]
        all_ids: list[np.ndarray] = []
        all_d: list[np.ndarray] = []
        for c in probe_order:
            members = self.lists[int(c)]
            if recorder is not None:
                recorder.record_iteration(int(c), members.tolist())
            if members.size == 0:
                continue
            d = distances_to_query(self.vectors[members], query, self.metric)
            all_ids.append(members)
            all_d.append(d)
        if not all_ids:
            return np.empty(0, dtype=np.int64), np.empty(0)
        ids = np.concatenate(all_ids)
        dists = np.concatenate(all_d)
        order = np.argsort(dists, kind="stable")[:k]
        top_ids = ids[order].astype(np.int64)
        top_d = dists[order].astype(np.float64)
        if recorder is not None:
            recorder.record_result(top_ids, top_d)
        return top_ids, top_d

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        ef: int | None = None,
        record: bool = True,
    ) -> tuple[np.ndarray, np.ndarray, list[SearchTrace]]:
        """Batch search; ``ef`` is accepted (and ignored) so IVF plugs
        into the same harness slots as the graph indexes."""
        n = queries.shape[0]
        all_ids = np.full((n, k), -1, dtype=np.int64)
        all_dists = np.full((n, k), np.inf, dtype=np.float64)
        traces: list[SearchTrace] = []
        for i in range(n):
            recorder = TraceRecorder(query_id=i) if record else None
            ids, dists = self.search(queries[i], k, recorder=recorder)
            all_ids[i, : ids.size] = ids
            all_dists[i, : dists.size] = dists
            if recorder is not None:
                traces.append(recorder.finish())
        return all_ids, all_dists, traces

    # ---- export ----------------------------------------------------------------
    def base_graph(self) -> ProximityGraph:
        """A list-membership 'graph' for the placement machinery.

        Vertices in one posting list are chained consecutively, so the
        static mapping lays each list out contiguously — exactly how a
        deployment would store IVF lists on flash.
        """
        n = self.vectors.shape[0]
        adjacency: list[list[int]] = [[] for _ in range(n)]
        for members in self.lists:
            for a, b in zip(members[:-1], members[1:]):
                adjacency[int(a)].append(int(b))
                adjacency[int(b)].append(int(a))
        entry = int(self.lists[0][0]) if self.lists[0].size else 0
        return ProximityGraph.from_adjacency(
            self.vectors, adjacency, metric=self.metric, entry_point=entry
        )

    @property
    def list_sizes(self) -> np.ndarray:
        return np.asarray([m.size for m in self.lists])
