"""HCNNG: hierarchical-clustering-based graphs (Munoz et al., 2019).

HCNNG builds a proximity graph by repeating (``num_clusterings`` times)
a random hierarchical bisection of the dataset down to small leaves and
connecting each leaf with a degree-capped minimum spanning tree; the
union of all MST edges forms the search graph.  Search is the common
greedy traversal (the paper's Section VIII runs it on NDSearch with
only a control-logic change), entered from the vertex nearest the query
among a random routing sample — a lightweight stand-in for HCNNG's
KD-tree entry selection that preserves its behaviour: start close, then
traverse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ann.distance import DistanceMetric, distances_to_query, pairwise_distances
from repro.ann.graph import ProximityGraph
from repro.ann.search import greedy_beam_search, top_k_from_results
from repro.ann.trace import SearchTrace, TraceRecorder


@dataclass(frozen=True)
class HCNNGParams:
    """Construction parameters."""

    num_clusterings: int = 8
    """Independent random hierarchical clusterings to union."""

    leaf_size: int = 32
    """Stop splitting when a cluster is at most this large."""

    mst_max_degree: int = 3
    """Per-MST degree cap (the HCNNG paper uses 3)."""

    routing_sample: int = 64
    """Vertices sampled as candidate entry points at search time."""

    seed: int = 99

    def __post_init__(self) -> None:
        if self.num_clusterings < 1:
            raise ValueError("num_clusterings must be >= 1")
        if self.leaf_size < 3:
            raise ValueError("leaf_size must be >= 3")
        if self.mst_max_degree < 2:
            raise ValueError("mst_max_degree must be >= 2")


class HCNNGIndex:
    """A built HCNNG graph with greedy-traversal search."""

    def __init__(
        self,
        vectors: np.ndarray,
        params: HCNNGParams | None = None,
        metric: DistanceMetric = DistanceMetric.EUCLIDEAN,
    ) -> None:
        self.params = params or HCNNGParams()
        self.metric = metric
        self.vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        n = self.vectors.shape[0]
        if n == 0:
            raise ValueError("cannot build an index over an empty dataset")
        self._rng = np.random.default_rng(self.params.seed)
        self._edges: set[tuple[int, int]] = set()
        self._build()
        self.adjacency: list[list[int]] = [[] for _ in range(n)]
        for a, b in sorted(self._edges):
            self.adjacency[a].append(b)
            self.adjacency[b].append(a)
        self.routing_ids = self._rng.choice(
            n, size=min(self.params.routing_sample, n), replace=False
        ).astype(np.int64)

    # ---- construction ------------------------------------------------------
    def _build(self) -> None:
        n = self.vectors.shape[0]
        all_ids = np.arange(n, dtype=np.int64)
        for _ in range(self.params.num_clusterings):
            self._split(all_ids)

    def _split(self, ids: np.ndarray) -> None:
        """Random bisection until leaves, then MST each leaf."""
        if ids.size <= self.params.leaf_size:
            self._add_mst_edges(ids)
            return
        pivots = self._rng.choice(ids, size=2, replace=False)
        a_vec, b_vec = self.vectors[pivots[0]], self.vectors[pivots[1]]
        d_a = distances_to_query(self.vectors[ids], a_vec, self.metric)
        d_b = distances_to_query(self.vectors[ids], b_vec, self.metric)
        mask = d_a <= d_b
        left, right = ids[mask], ids[~mask]
        # Guard against degenerate splits (duplicated points).
        if left.size == 0 or right.size == 0:
            half = ids.size // 2
            shuffled = self._rng.permutation(ids)
            left, right = shuffled[:half], shuffled[half:]
        self._split(left)
        self._split(right)

    def _add_mst_edges(self, ids: np.ndarray) -> None:
        """Degree-capped Kruskal MST over one leaf cluster."""
        m = ids.size
        if m < 2:
            return
        dmat = pairwise_distances(self.vectors[ids], self.vectors[ids], self.metric)
        iu, ju = np.triu_indices(m, k=1)
        order = np.argsort(dmat[iu, ju], kind="stable")
        parent = list(range(m))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        degree = np.zeros(m, dtype=np.int32)
        added = 0
        for e in order:
            if added == m - 1:
                break
            i, j = int(iu[e]), int(ju[e])
            if degree[i] >= self.params.mst_max_degree:
                continue
            if degree[j] >= self.params.mst_max_degree:
                continue
            ri, rj = find(i), find(j)
            if ri == rj:
                continue
            parent[ri] = rj
            degree[i] += 1
            degree[j] += 1
            added += 1
            a, b = int(ids[i]), int(ids[j])
            self._edges.add((min(a, b), max(a, b)))

    # ---- search ----------------------------------------------------------------
    def _entry_point(self, query: np.ndarray) -> int:
        dists = distances_to_query(self.vectors[self.routing_ids], query, self.metric)
        return int(self.routing_ids[int(np.argmin(dists))])

    def search(
        self,
        query: np.ndarray,
        k: int,
        ef: int | None = None,
        recorder: TraceRecorder | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        if ef is None:
            ef = max(32, 2 * k)
        if ef < k:
            raise ValueError("ef must be >= k")
        results = greedy_beam_search(
            self.vectors,
            lambda v: np.asarray(self.adjacency[v], dtype=np.int64),
            query,
            [self._entry_point(query)],
            ef,
            self.metric,
            recorder=recorder,
        )
        ids, dists = top_k_from_results(results, k)
        if recorder is not None:
            recorder.record_result(ids, dists)
        return ids, dists

    def search_batch(
        self, queries: np.ndarray, k: int, ef: int | None = None, record: bool = True
    ) -> tuple[np.ndarray, np.ndarray, list[SearchTrace]]:
        n = queries.shape[0]
        all_ids = np.full((n, k), -1, dtype=np.int64)
        all_dists = np.full((n, k), np.inf, dtype=np.float64)
        traces: list[SearchTrace] = []
        for i in range(n):
            recorder = TraceRecorder(query_id=i) if record else None
            ids, dists = self.search(queries[i], k, ef=ef, recorder=recorder)
            all_ids[i, : ids.size] = ids
            all_dists[i, : dists.size] = dists
            if recorder is not None:
                traces.append(recorder.finish())
        return all_ids, all_dists, traces

    def base_graph(self) -> ProximityGraph:
        entry = int(self.routing_ids[0])
        return ProximityGraph.from_adjacency(
            self.vectors, self.adjacency, metric=self.metric, entry_point=entry
        )
