"""Recall@k — the accuracy metric the paper tunes each graph to.

The paper constructs its graphs so that recall@10 reaches 95/95/94/93/90%
on glove-100 / fashion-mnist / sift-1b / deep-1b / spacev-1b; the
scaled datasets in this reproduction are tuned to the same targets.
"""

from __future__ import annotations

import numpy as np


def recall_at_k(
    approx_ids: np.ndarray, exact_ids: np.ndarray, k: int | None = None
) -> float:
    """Mean fraction of true top-k found by the approximate search.

    Both arguments are (batch, >=k) ID arrays; rows may be ragged via
    padding with -1 (padding is ignored).
    """
    approx_ids = np.atleast_2d(np.asarray(approx_ids))
    exact_ids = np.atleast_2d(np.asarray(exact_ids))
    if approx_ids.shape[0] != exact_ids.shape[0]:
        raise ValueError("batch sizes differ")
    if k is None:
        k = exact_ids.shape[1]
    if k < 1:
        raise ValueError("k must be >= 1")
    total = 0.0
    for approx_row, exact_row in zip(approx_ids, exact_ids):
        truth = set(int(x) for x in exact_row[:k] if x >= 0)
        if not truth:
            continue
        found = set(int(x) for x in approx_row[:k] if x >= 0)
        total += len(found & truth) / len(truth)
    return total / approx_ids.shape[0]
