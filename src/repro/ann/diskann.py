"""DiskANN / Vamana graph (Subramanya et al., NeurIPS'19).

From-scratch implementation of the Vamana construction: start from a
random R-regular graph, then make two passes (alpha = 1, then the
user's alpha > 1) where each vertex is re-linked via a greedy search
from the medoid followed by *robust pruning*, with pruned back-edges.
Search is a beam search of list size L from the medoid.

DiskANN's deployment detail that matters to the paper's Fig. 17 — the
SSD's internal DRAM caches hot feature vectors, trading SSD reads for
DRAM accesses — is modelled by :meth:`DiskANNIndex.hot_vertices`, which
exposes the most frequently visited vertices for the platform models to
treat as cached.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.ann.distance import DistanceMetric, distances_to_query
from repro.ann.graph import ProximityGraph
from repro.ann.search import greedy_beam_search, top_k_from_results
from repro.ann.trace import SearchTrace, TraceRecorder


@dataclass(frozen=True)
class DiskANNParams:
    """Vamana construction parameters."""

    R: int = 16
    """Maximum out-degree."""

    L: int = 48
    """Construction beam width."""

    alpha: float = 1.2
    """Robust-prune distance slack (second pass)."""

    seed: int = 4321

    def __post_init__(self) -> None:
        if self.R < 2:
            raise ValueError("R must be >= 2")
        if self.L < self.R:
            raise ValueError("L must be >= R")
        if self.alpha < 1.0:
            raise ValueError("alpha must be >= 1.0")


class DiskANNIndex:
    """A built Vamana graph with DiskANN-style beam search."""

    def __init__(
        self,
        vectors: np.ndarray,
        params: DiskANNParams | None = None,
        metric: DistanceMetric = DistanceMetric.EUCLIDEAN,
    ) -> None:
        self.params = params or DiskANNParams()
        self.metric = metric
        self.vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        n = self.vectors.shape[0]
        if n == 0:
            raise ValueError("cannot build an index over an empty dataset")
        self._rng = np.random.default_rng(self.params.seed)
        self.medoid = self._find_medoid()
        self.adjacency: list[list[int]] = self._random_regular_init()
        self._visit_counts: Counter = Counter()
        self._build()

    # ---- construction ------------------------------------------------------
    def _find_medoid(self) -> int:
        """Vertex minimising distance to the dataset centroid."""
        centroid = self.vectors.mean(axis=0)
        dists = distances_to_query(self.vectors, centroid, self.metric)
        return int(np.argmin(dists))

    def _random_regular_init(self) -> list[list[int]]:
        n = self.vectors.shape[0]
        r = min(self.params.R, n - 1)
        adjacency: list[list[int]] = []
        for v in range(n):
            choices = self._rng.choice(n - 1, size=r, replace=False)
            choices = np.where(choices >= v, choices + 1, choices)
            adjacency.append([int(c) for c in choices])
        return adjacency

    def _robust_prune(
        self, v: int, candidates: dict[int, float], alpha: float
    ) -> list[int]:
        """RobustPrune(v, V, alpha, R) from the Vamana paper.

        Distances here are the kernel's native comparables (squared
        Euclidean); applying alpha in that space gives an effective
        true-distance slack of sqrt(alpha), which we compensate for by
        the default alpha choice rather than squaring — empirically the
        squared slack keeps too many covered candidates in the pool and
        degrades the pruning-driven edge diversity the graph's
        navigability depends on.
        """
        pool = dict(candidates)
        pool.pop(v, None)
        missing = [u for u in self.adjacency[v] if u not in pool and u != v]
        if missing:
            missing_arr = np.asarray(missing, dtype=np.int64)
            dists = distances_to_query(
                self.vectors[missing_arr], self.vectors[v], self.metric
            )
            for u, d in zip(missing, dists):
                pool[u] = float(d)
        selected: list[int] = []
        remaining = sorted(pool.items(), key=lambda kv: kv[1])
        while remaining and len(selected) < self.params.R:
            p_star, d_star = remaining.pop(0)
            selected.append(p_star)
            if not remaining:
                break
            rest_ids = np.asarray([u for u, _ in remaining], dtype=np.int64)
            d_to_pstar = distances_to_query(
                self.vectors[rest_ids], self.vectors[p_star], self.metric
            )
            kept = []
            for (u, d_uv), d_up in zip(remaining, d_to_pstar):
                if alpha * float(d_up) > d_uv:
                    kept.append((u, d_uv))
            remaining = kept
        return selected

    def _build(self) -> None:
        n = self.vectors.shape[0]
        for alpha in (1.0, self.params.alpha):
            order = self._rng.permutation(n)
            for v in order:
                v = int(v)
                visited: dict[int, float] = {}

                def neighbors_of(x: int) -> np.ndarray:
                    return np.asarray(self.adjacency[x], dtype=np.int64)

                results = greedy_beam_search(
                    self.vectors,
                    neighbors_of,
                    self.vectors[v],
                    [self.medoid],
                    self.params.L,
                    self.metric,
                )
                for dist, u in results:
                    visited[u] = dist
                self.adjacency[v] = self._robust_prune(v, visited, alpha)
                for u in self.adjacency[v]:
                    if v not in self.adjacency[u]:
                        self.adjacency[u].append(v)
                        if len(self.adjacency[u]) > self.params.R:
                            neigh = np.asarray(self.adjacency[u], dtype=np.int64)
                            dists = distances_to_query(
                                self.vectors[neigh], self.vectors[u], self.metric
                            )
                            cand = {
                                int(w): float(d) for w, d in zip(neigh, dists)
                            }
                            self.adjacency[u] = self._robust_prune(u, cand, alpha)

    # ---- search ----------------------------------------------------------------
    def search(
        self,
        query: np.ndarray,
        k: int,
        ef: int | None = None,
        recorder: TraceRecorder | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Beam search of width ``ef`` (DiskANN's L) from the medoid."""
        if ef is None:
            ef = self.params.L
        if ef < k:
            raise ValueError("ef must be >= k")
        results = greedy_beam_search(
            self.vectors,
            lambda v: np.asarray(self.adjacency[v], dtype=np.int64),
            query,
            [self.medoid],
            ef,
            self.metric,
            recorder=recorder,
        )
        self._visit_counts[self.medoid] += 1
        for _, v in results:
            self._visit_counts[v] += 1
        ids, dists = top_k_from_results(results, k)
        if recorder is not None:
            recorder.record_result(ids, dists)
        return ids, dists

    def search_batch(
        self, queries: np.ndarray, k: int, ef: int | None = None, record: bool = True
    ) -> tuple[np.ndarray, np.ndarray, list[SearchTrace]]:
        n = queries.shape[0]
        all_ids = np.full((n, k), -1, dtype=np.int64)
        all_dists = np.full((n, k), np.inf, dtype=np.float64)
        traces: list[SearchTrace] = []
        for i in range(n):
            recorder = TraceRecorder(query_id=i) if record else None
            ids, dists = self.search(queries[i], k, ef=ef, recorder=recorder)
            all_ids[i, : ids.size] = ids
            all_dists[i, : dists.size] = dists
            if recorder is not None:
                traces.append(recorder.finish())
        return all_ids, all_dists, traces

    # ---- export --------------------------------------------------------------------
    def base_graph(self) -> ProximityGraph:
        return ProximityGraph.from_adjacency(
            self.vectors, self.adjacency, metric=self.metric, entry_point=self.medoid
        )

    def hot_vertices(self, fraction: float = 0.05) -> np.ndarray:
        """Most-visited vertices (candidates for the internal DRAM cache).

        If no searches have run yet, falls back to the highest-degree
        vertices, which is the standard DiskANN static cache policy.
        """
        n = self.vectors.shape[0]
        count = max(1, int(n * fraction))
        if self._visit_counts:
            ranked = [v for v, _ in self._visit_counts.most_common(count)]
            return np.asarray(ranked, dtype=np.int64)
        degrees = np.asarray([len(a) for a in self.adjacency])
        return np.argsort(-degrees)[:count].astype(np.int64)
