"""Exact nearest neighbor search (ground truth for recall)."""

from __future__ import annotations

import numpy as np

from repro.ann.distance import DistanceMetric, pairwise_distances


class BruteForceIndex:
    """Exact top-k search by full scan; the NNS the paper approximates."""

    def __init__(
        self, vectors: np.ndarray, metric: DistanceMetric = DistanceMetric.EUCLIDEAN
    ) -> None:
        if vectors.ndim != 2 or vectors.shape[0] == 0:
            raise ValueError("vectors must be a non-empty (n, d) array")
        self.vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        self.metric = metric

    def search(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Exact top-k of one query: (ids, distances) ascending."""
        ids, dists = self.search_batch(query[None, :], k)
        return ids[0], dists[0]

    def search_batch(
        self, queries: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact top-k for a (b, d) batch: (b, k) ids and distances."""
        if k < 1:
            raise ValueError("k must be >= 1")
        k = min(k, self.vectors.shape[0])
        dmat = pairwise_distances(
            np.ascontiguousarray(queries, dtype=np.float32), self.vectors, self.metric
        )
        part = np.argpartition(dmat, k - 1, axis=1)[:, :k]
        part_d = np.take_along_axis(dmat, part, axis=1)
        order = np.argsort(part_d, axis=1, kind="stable")
        ids = np.take_along_axis(part, order, axis=1).astype(np.int64)
        dists = np.take_along_axis(part_d, order, axis=1).astype(np.float64)
        return ids, dists
