"""Search traces: the memory-access record driving the simulators.

The paper's simulation method (Section VII-A) "hacks" the search code
to dump, for every query, the index sequence of accessed vertices; the
trace-driven simulator then replays those accesses on each platform
model.  We formalise that record here:

* :class:`IterationRecord` — one search iteration: the entry vertex
  whose neighbor list was read, and the neighbor IDs whose distances
  were computed this iteration.
* :class:`SearchTrace` — all iterations of one query, plus the final
  result list.
* :class:`TraceRecorder` — the hook object search kernels call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class IterationRecord:
    """One iteration of graph-traversal search for one query.

    ``entry`` is the vertex popped from the candidate list (its
    adjacency information is read), ``computed`` are the previously
    unvisited neighbors whose feature vectors were fetched and whose
    distances to the query were computed.
    """

    entry: int
    computed: tuple[int, ...]


@dataclass
class SearchTrace:
    """The complete access trace of one query."""

    query_id: int
    iterations: list[IterationRecord] = field(default_factory=list)
    result_ids: np.ndarray | None = None
    result_distances: np.ndarray | None = None

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def visited_vertices(self) -> list[int]:
        """All computed vertex IDs in visit order (may repeat entries)."""
        out: list[int] = []
        for it in self.iterations:
            out.extend(it.computed)
        return out

    @property
    def trace_length(self) -> int:
        """The paper's 'length of the searching trace': number of
        visited vertices that are computed against the query."""
        return sum(len(it.computed) for it in self.iterations)

    @property
    def entries(self) -> list[int]:
        return [it.entry for it in self.iterations]


class TraceRecorder:
    """Mutable builder the search kernels feed; one per query."""

    def __init__(self, query_id: int = 0) -> None:
        self.trace = SearchTrace(query_id=query_id)

    def record_iteration(self, entry: int, computed: list[int] | np.ndarray) -> None:
        self.trace.iterations.append(
            IterationRecord(entry=int(entry), computed=tuple(int(c) for c in computed))
        )

    def record_result(self, ids: np.ndarray, distances: np.ndarray) -> None:
        self.trace.result_ids = np.asarray(ids, dtype=np.int64)
        self.trace.result_distances = np.asarray(distances, dtype=np.float64)

    def finish(self) -> SearchTrace:
        return self.trace


def remap_trace(trace: SearchTrace, new_id: np.ndarray) -> SearchTrace:
    """Rewrite a trace's vertex IDs through a relabeling map.

    Used after static-scheduling reordering: traces are generated on
    the original graph, then remapped to the reordered vertex IDs so
    the simulator sees the post-reordering physical placement.
    ``new_id[old] = new``.
    """
    remapped = SearchTrace(query_id=trace.query_id)
    for it in trace.iterations:
        remapped.iterations.append(
            IterationRecord(
                entry=int(new_id[it.entry]),
                computed=tuple(int(new_id[c]) for c in it.computed),
            )
        )
    if trace.result_ids is not None:
        remapped.result_ids = new_id[trace.result_ids]
        remapped.result_distances = trace.result_distances
    return remapped
