"""Distance kernels for ANNS (Euclidean, angular, inner product).

These are the kernels the SiN engines execute in-flash (the 2-bit
"Distance" field of the ``<SearchPage>`` instruction selects among
them).  All kernels are *smaller is better*: inner product is negated
and angular is ``1 - cosine`` so every algorithm can minimise
uniformly.
"""

from __future__ import annotations

from enum import Enum

import numpy as np


class DistanceMetric(Enum):
    """Supported metrics, matching the instruction encoding."""

    EUCLIDEAN = "euclidean"
    ANGULAR = "angular"
    INNER_PRODUCT = "inner_product"

    @property
    def instruction_code(self) -> int:
        """2-bit code used by :class:`repro.flash.commands.SearchPage`."""
        return {"euclidean": 0, "angular": 1, "inner_product": 2}[self.value]


def distances_to_query(
    vectors: np.ndarray, query: np.ndarray, metric: DistanceMetric
) -> np.ndarray:
    """Distances from ``query`` (d,) to each row of ``vectors`` (m, d).

    This is the batched kernel every search loop calls once per
    expanded vertex (one call covers all of that vertex's neighbors).
    """
    if vectors.ndim != 2:
        raise ValueError(f"vectors must be 2-D, got shape {vectors.shape}")
    if query.shape != (vectors.shape[1],):
        raise ValueError(
            f"query shape {query.shape} incompatible with vectors {vectors.shape}"
        )
    if metric is DistanceMetric.EUCLIDEAN:
        diff = vectors - query
        return np.einsum("ij,ij->i", diff, diff)
    if metric is DistanceMetric.INNER_PRODUCT:
        return -vectors @ query
    if metric is DistanceMetric.ANGULAR:
        norms = np.linalg.norm(vectors, axis=1) * np.linalg.norm(query)
        norms = np.where(norms == 0.0, 1.0, norms)
        return 1.0 - (vectors @ query) / norms
    raise ValueError(f"unsupported metric {metric!r}")


def pairwise_distances(
    a: np.ndarray, b: np.ndarray, metric: DistanceMetric
) -> np.ndarray:
    """Full (n, m) distance matrix between row sets ``a`` and ``b``."""
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ValueError(f"incompatible shapes {a.shape} and {b.shape}")
    if metric is DistanceMetric.EUCLIDEAN:
        # (x - y)^2 = |x|^2 + |y|^2 - 2 x.y, clipped for numeric safety.
        sq_a = np.einsum("ij,ij->i", a, a)[:, None]
        sq_b = np.einsum("ij,ij->i", b, b)[None, :]
        d = sq_a + sq_b - 2.0 * (a @ b.T)
        return np.maximum(d, 0.0)
    if metric is DistanceMetric.INNER_PRODUCT:
        return -(a @ b.T)
    if metric is DistanceMetric.ANGULAR:
        na = np.linalg.norm(a, axis=1)[:, None]
        nb = np.linalg.norm(b, axis=1)[None, :]
        denom = na * nb
        denom = np.where(denom == 0.0, 1.0, denom)
        return 1.0 - (a @ b.T) / denom
    raise ValueError(f"unsupported metric {metric!r}")


def distance(a: np.ndarray, b: np.ndarray, metric: DistanceMetric) -> float:
    """Scalar distance between two vectors."""
    return float(distances_to_query(b[None, :], a, metric)[0])
