"""TOGG: two-stage routing with optimized guided search (Xu et al., 2021).

TOGG routes a query over a proximity graph in two stages: a *guided*
stage that only explores neighbors lying in the query's direction
(pruning neighbors whose direction from the current vertex points away
from the query), switching to an exhaustive *greedy* stage once the
guided stage stops improving.  TOGG is a routing optimisation layered
on a navigable proximity graph (the TOGG paper evaluates on
NSG/HNSW-class graphs); we build the substrate as a flat
navigable-small-world layer (an HNSW base layer) seeded from a
symmetrised k-NN neighborhood, then repair any residual disconnection.

The direction test is the dot-product sign between (neighbor - current)
and (query - current): neighbors in the query's half-space are kept.
This reproduces TOGG's quadrant-based pruning at the granularity our
simulator needs — fewer, more directional vertex accesses in stage one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ann.distance import DistanceMetric, distances_to_query
from repro.ann.graph import ProximityGraph
from repro.ann.search import greedy_beam_search, top_k_from_results
from repro.ann.trace import SearchTrace, TraceRecorder


@dataclass(frozen=True)
class TOGGParams:
    """Construction and routing parameters."""

    knn: int = 10
    """Neighbors per vertex in the underlying k-NN graph."""

    guided_ef: int = 16
    """Beam width of the guided (stage-1) search."""

    seed: int = 77

    def __post_init__(self) -> None:
        if self.knn < 2:
            raise ValueError("knn must be >= 2")
        if self.guided_ef < 2:
            raise ValueError("guided_ef must be >= 2")


class TOGGIndex:
    """A symmetrised k-NN graph searched with two-stage routing."""

    def __init__(
        self,
        vectors: np.ndarray,
        params: TOGGParams | None = None,
        metric: DistanceMetric = DistanceMetric.EUCLIDEAN,
    ) -> None:
        self.params = params or TOGGParams()
        self.metric = metric
        self.vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        n = self.vectors.shape[0]
        if n == 0:
            raise ValueError("cannot build an index over an empty dataset")
        self._rng = np.random.default_rng(self.params.seed)
        self.adjacency = self._build_navigable_graph()
        centroid = self.vectors.mean(axis=0)
        dists = distances_to_query(self.vectors, centroid, self.metric)
        self.entry_point = int(np.argmin(dists))
        self._ensure_connected()

    def _build_navigable_graph(self) -> list[list[int]]:
        """A flat navigable-small-world base layer for the router.

        Built by incremental insertion with diversified neighbor
        selection (an HNSW layer-0 construction with M = knn/2), which
        yields the long-range navigability TOGG's routing assumes;
        edges are then symmetrised.
        """
        from repro.ann.hnsw import HNSWIndex, HNSWParams

        n = self.vectors.shape[0]
        m = max(4, min(self.params.knn // 2, n - 1))
        base = HNSWIndex(
            self.vectors,
            HNSWParams(
                M=m,
                ef_construction=max(32, 3 * m),
                seed=self.params.seed,
            ),
            self.metric,
        ).base_graph()
        adjacency: list[set[int]] = [set() for _ in range(n)]
        for v in range(n):
            for u in base.neighbors(v):
                u = int(u)
                if u != v:
                    adjacency[v].add(u)
                    adjacency[u].add(v)
        return [sorted(s) for s in adjacency]

    def _ensure_connected(self) -> None:
        """Link disconnected components into the entry component.

        Exact k-NN graphs on clustered corpora fall apart into one
        component per cluster; navigable-graph constructions (NSG,
        which TOGG builds on) repair this with spanning edges.  We add,
        for every stray component, a bidirectional edge between its
        medoid-nearest vertex and that vertex's nearest neighbor in the
        already-connected region.
        """
        n = self.vectors.shape[0]
        component = np.full(n, -1, dtype=np.int64)
        comp_id = 0
        for root in range(n):
            if component[root] >= 0:
                continue
            stack = [root]
            component[root] = comp_id
            while stack:
                v = stack.pop()
                for u in self.adjacency[v]:
                    if component[u] < 0:
                        component[u] = comp_id
                        stack.append(u)
            comp_id += 1
        main = int(component[self.entry_point])
        if comp_id == 1:
            return
        connected_mask = component == main
        for cid in range(comp_id):
            if cid == main:
                continue
            members = np.flatnonzero(component == cid)
            # Representative: the component vertex closest to the
            # connected region's centroid.
            connected_ids = np.flatnonzero(connected_mask)
            centroid = self.vectors[connected_ids].mean(axis=0)
            rep = int(members[np.argmin(
                distances_to_query(self.vectors[members], centroid, self.metric)
            )])
            bridge_d = distances_to_query(
                self.vectors[connected_ids], self.vectors[rep], self.metric
            )
            bridge = int(connected_ids[int(np.argmin(bridge_d))])
            self.adjacency[rep].append(bridge)
            self.adjacency[bridge].append(rep)
            connected_mask |= component == cid

    # ---- two-stage routing ---------------------------------------------------
    def _guided_filter(self, query: np.ndarray):
        """Stage-1 neighbor filter: keep the query's half-space."""

        def neighbor_filter(current: int, neighbor_ids: np.ndarray) -> np.ndarray:
            direction = query - self.vectors[current]
            offsets = self.vectors[neighbor_ids] - self.vectors[current]
            keep = offsets @ direction > 0.0
            if not keep.any():
                return neighbor_ids  # never dead-end the walk
            return neighbor_ids[keep]

        return neighbor_filter

    def search(
        self,
        query: np.ndarray,
        k: int,
        ef: int | None = None,
        recorder: TraceRecorder | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stage-1 guided routing, then stage-2 full greedy search."""
        if ef is None:
            ef = max(32, 2 * k)
        if ef < k:
            raise ValueError("ef must be >= k")
        neighbors_of = lambda v: np.asarray(self.adjacency[v], dtype=np.int64)
        stage1 = greedy_beam_search(
            self.vectors,
            neighbors_of,
            query,
            [self.entry_point],
            self.params.guided_ef,
            self.metric,
            recorder=recorder,
            neighbor_filter=self._guided_filter(query),
        )
        stage2_entries = [v for _, v in stage1[: max(1, self.params.guided_ef // 4)]]
        results = greedy_beam_search(
            self.vectors,
            neighbors_of,
            query,
            stage2_entries,
            ef,
            self.metric,
            recorder=recorder,
        )
        ids, dists = top_k_from_results(results, k)
        if recorder is not None:
            recorder.record_result(ids, dists)
        return ids, dists

    def search_batch(
        self, queries: np.ndarray, k: int, ef: int | None = None, record: bool = True
    ) -> tuple[np.ndarray, np.ndarray, list[SearchTrace]]:
        n = queries.shape[0]
        all_ids = np.full((n, k), -1, dtype=np.int64)
        all_dists = np.full((n, k), np.inf, dtype=np.float64)
        traces: list[SearchTrace] = []
        for i in range(n):
            recorder = TraceRecorder(query_id=i) if record else None
            ids, dists = self.search(queries[i], k, ef=ef, recorder=recorder)
            all_ids[i, : ids.size] = ids
            all_dists[i, : dists.size] = dists
            if recorder is not None:
                traces.append(recorder.finish())
        return all_ids, all_dists, traces

    def base_graph(self) -> ProximityGraph:
        return ProximityGraph.from_adjacency(
            self.vectors,
            self.adjacency,
            metric=self.metric,
            entry_point=self.entry_point,
        )
