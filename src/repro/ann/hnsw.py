"""HNSW: Hierarchical Navigable Small World graphs (Malkov & Yashunin).

From-scratch implementation of construction and search, following the
original paper's Algorithms 1-5: exponential level sampling, per-layer
greedy insertion with ``ef_construction`` beams, the neighbor-selection
heuristic (Algorithm 4) and Mmax/Mmax0 degree capping.  The search path
descends the hierarchy greedily then runs an ``ef``-wide beam on layer
0; trace recording covers the layer-0 beam, which is where the flash
traffic happens (upper layers are tiny and cached in the paper's
setting).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ann.distance import DistanceMetric, distances_to_query
from repro.ann.graph import ProximityGraph
from repro.ann.search import greedy_beam_search, top_k_from_results
from repro.ann.trace import SearchTrace, TraceRecorder


@dataclass(frozen=True)
class HNSWParams:
    """Construction parameters (hnswlib naming)."""

    M: int = 12
    ef_construction: int = 64
    seed: int = 1234
    use_heuristic: bool = True

    def __post_init__(self) -> None:
        if self.M < 2:
            raise ValueError("M must be >= 2")
        if self.ef_construction < self.M:
            raise ValueError("ef_construction must be >= M")

    @property
    def max_degree(self) -> int:
        """Mmax for upper layers."""
        return self.M

    @property
    def max_degree0(self) -> int:
        """Mmax0 for the base layer (2M as in hnswlib)."""
        return 2 * self.M

    @property
    def level_multiplier(self) -> float:
        return 1.0 / np.log(self.M)


class HNSWIndex:
    """A fully built HNSW index over a dataset."""

    def __init__(self, vectors: np.ndarray, params: HNSWParams | None = None,
                 metric: DistanceMetric = DistanceMetric.EUCLIDEAN) -> None:
        self.params = params or HNSWParams()
        self.metric = metric
        self.vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        n = self.vectors.shape[0]
        if n == 0:
            raise ValueError("cannot build an index over an empty dataset")
        self._rng = np.random.default_rng(self.params.seed)
        # layers[l][v] -> list[int]; vertex present iff level(v) >= l.
        self.layers: list[dict[int, list[int]]] = [dict()]
        self.levels = np.zeros(n, dtype=np.int32)
        self.entry_point = 0
        self._build()

    # ---- construction ------------------------------------------------------
    def _sample_level(self) -> int:
        u = self._rng.random()
        return int(-np.log(max(u, 1e-12)) * self.params.level_multiplier)

    def _build(self) -> None:
        n = self.vectors.shape[0]
        self.levels[0] = self._sample_level()
        for _ in range(self.levels[0] + 1 - len(self.layers)):
            self.layers.append(dict())
        for layer in range(self.levels[0] + 1):
            self.layers[layer][0] = []
        for v in range(1, n):
            self._insert(v)

    def _search_layer(
        self, query: np.ndarray, entries: list[int], ef: int, layer: int
    ) -> list[tuple[float, int]]:
        adj = self.layers[layer]
        return greedy_beam_search(
            self.vectors,
            lambda v: np.asarray(adj.get(v, ()), dtype=np.int64),
            query,
            entries,
            ef,
            self.metric,
        )

    def _insert(self, v: int) -> None:
        level = self._sample_level()
        self.levels[v] = level
        while len(self.layers) <= level:
            self.layers.append(dict())
        query = self.vectors[v]
        top = self.levels[self.entry_point]
        entry = self.entry_point
        # Greedy descent through layers above the insertion level.
        for layer in range(int(top), level, -1):
            nearest = self._search_layer(query, [entry], 1, layer)
            entry = nearest[0][1]
        # Insert with ef_construction beams from min(level, top) down to 0.
        entries = [entry]
        for layer in range(min(level, int(top)), -1, -1):
            found = self._search_layer(query, entries, self.params.ef_construction, layer)
            m_cap = self.params.max_degree0 if layer == 0 else self.params.max_degree
            selected = self._select_neighbors(query, found, self.params.M)
            adj = self.layers[layer]
            adj[v] = [u for _, u in selected]
            for dist_vu, u in selected:
                adj.setdefault(u, []).append(v)
                if len(adj[u]) > m_cap:
                    self._shrink(u, layer, m_cap)
            entries = [u for _, u in found]
        for layer in range(int(top) + 1, level + 1):
            self.layers[layer][v] = []
        if level > top:
            self.entry_point = v

    def _select_neighbors(
        self, query: np.ndarray, candidates: list[tuple[float, int]], m: int
    ) -> list[tuple[float, int]]:
        """Algorithm 4 heuristic (or plain closest-m when disabled)."""
        if not self.params.use_heuristic or len(candidates) <= m:
            return sorted(candidates)[:m]
        selected: list[tuple[float, int]] = []
        selected_ids: list[int] = []
        for dist_q, u in sorted(candidates):
            if len(selected) >= m:
                break
            if selected_ids:
                d_us = distances_to_query(
                    self.vectors[np.asarray(selected_ids, dtype=np.int64)],
                    self.vectors[u],
                    self.metric,
                )
                if float(d_us.min()) < dist_q:
                    continue
            selected.append((dist_q, u))
            selected_ids.append(u)
        # Fill up with skipped candidates if the heuristic was too strict.
        if len(selected) < m:
            chosen = {u for _, u in selected}
            for dist_q, u in sorted(candidates):
                if len(selected) >= m:
                    break
                if u not in chosen:
                    selected.append((dist_q, u))
        return selected

    def _shrink(self, u: int, layer: int, m_cap: int) -> None:
        adj = self.layers[layer]
        neigh = np.asarray(adj[u], dtype=np.int64)
        dists = distances_to_query(self.vectors[neigh], self.vectors[u], self.metric)
        candidates = [(float(d), int(x)) for d, x in zip(dists, neigh)]
        kept = self._select_neighbors(self.vectors[u], candidates, m_cap)
        adj[u] = [x for _, x in kept]

    # ---- search ----------------------------------------------------------------
    def search(
        self,
        query: np.ndarray,
        k: int,
        ef: int | None = None,
        recorder: TraceRecorder | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-k search; optionally records the layer-0 access trace."""
        if ef is None:
            ef = max(k, self.params.ef_construction // 2)
        if ef < k:
            raise ValueError("ef must be >= k")
        entry = self.entry_point
        for layer in range(int(self.levels[self.entry_point]), 0, -1):
            nearest = self._search_layer(query, [entry], 1, layer)
            entry = nearest[0][1]
        adj = self.layers[0]
        results = greedy_beam_search(
            self.vectors,
            lambda v: np.asarray(adj.get(v, ()), dtype=np.int64),
            query,
            [entry],
            ef,
            self.metric,
            recorder=recorder,
        )
        ids, dists = top_k_from_results(results, k)
        if recorder is not None:
            recorder.record_result(ids, dists)
        return ids, dists

    def search_batch(
        self, queries: np.ndarray, k: int, ef: int | None = None, record: bool = True
    ) -> tuple[np.ndarray, np.ndarray, list[SearchTrace]]:
        """Batch search returning ids, distances and per-query traces."""
        n = queries.shape[0]
        all_ids = np.full((n, k), -1, dtype=np.int64)
        all_dists = np.full((n, k), np.inf, dtype=np.float64)
        traces: list[SearchTrace] = []
        for i in range(n):
            recorder = TraceRecorder(query_id=i) if record else None
            ids, dists = self.search(queries[i], k, ef=ef, recorder=recorder)
            all_ids[i, : ids.size] = ids
            all_dists[i, : dists.size] = dists
            if recorder is not None:
                traces.append(recorder.finish())
        return all_ids, all_dists, traces

    # ---- export --------------------------------------------------------------------
    def base_graph(self) -> ProximityGraph:
        """The layer-0 graph: what NDSearch stores in the flash array."""
        n = self.vectors.shape[0]
        adjacency = [self.layers[0].get(v, []) for v in range(n)]
        return ProximityGraph.from_adjacency(
            self.vectors, adjacency, metric=self.metric, entry_point=self.entry_point
        )

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def memory_per_vertex_bytes(self) -> float:
        """Average per-vertex footprint (paper: 60-450 B/vertex)."""
        edge_bytes = sum(
            4 * len(neigh) for layer in self.layers for neigh in layer.values()
        )
        vec_bytes = self.vectors.size * self.vectors.itemsize
        return (edge_bytes + vec_bytes) / self.vectors.shape[0]
