"""HNSW: Hierarchical Navigable Small World graphs (Malkov & Yashunin).

From-scratch implementation of construction and search, following the
original paper's Algorithms 1-5: exponential level sampling, per-layer
greedy insertion with ``ef_construction`` beams, the neighbor-selection
heuristic (Algorithm 4) and Mmax/Mmax0 degree capping.  The search path
descends the hierarchy greedily then runs an ``ef``-wide beam on layer
0; trace recording covers the layer-0 beam, which is where the flash
traffic happens (upper layers are tiny and cached in the paper's
setting).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ann.distance import DistanceMetric, distances_to_query, pairwise_distances
from repro.ann.graph import ProximityGraph
from repro.ann.search import greedy_beam_search, top_k_from_results
from repro.ann.trace import SearchTrace, TraceRecorder

#: Cap on the number of extra layer-0 entry points seeded per search.
#: Greedy beam search from a single entry can park in a local minimum on
#: adversarial clouds (a stored vector is then not its own nearest
#: neighbor at small ``ef``); seeding the beam with a few well-spread
#: pivots restarts it from other basins.  Distant pivots never expand
#: (the beam pops candidates in distance order and terminates on the
#: ef-th result), so the cost is one batch of extra distance
#: computations, not extra traversal.
MAX_SEARCH_PIVOTS = 32

#: Corpora up to this size get the exact nearest-neighbor in-link pass
#: at build time (chunked O(n^2) distances).  Larger corpora skip it:
#: they are built with production-grade M / ef_construction, where the
#: single-entry miss is already vanishingly rare.
NEAREST_INLINK_MAX_N = 4096


@dataclass(frozen=True)
class HNSWParams:
    """Construction parameters (hnswlib naming)."""

    M: int = 12
    ef_construction: int = 64
    seed: int = 1234
    use_heuristic: bool = True

    def __post_init__(self) -> None:
        if self.M < 2:
            raise ValueError("M must be >= 2")
        if self.ef_construction < self.M:
            raise ValueError("ef_construction must be >= M")

    @property
    def max_degree(self) -> int:
        """Mmax for upper layers."""
        return self.M

    @property
    def max_degree0(self) -> int:
        """Mmax0 for the base layer (2M as in hnswlib)."""
        return 2 * self.M

    @property
    def level_multiplier(self) -> float:
        return 1.0 / np.log(self.M)


class HNSWIndex:
    """A fully built HNSW index over a dataset."""

    def __init__(self, vectors: np.ndarray, params: HNSWParams | None = None,
                 metric: DistanceMetric = DistanceMetric.EUCLIDEAN) -> None:
        self.params = params or HNSWParams()
        self.metric = metric
        self.vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        n = self.vectors.shape[0]
        if n == 0:
            raise ValueError("cannot build an index over an empty dataset")
        self._rng = np.random.default_rng(self.params.seed)
        # layers[l][v] -> list[int]; vertex present iff level(v) >= l.
        self.layers: list[dict[int, list[int]]] = [dict()]
        self.levels = np.zeros(n, dtype=np.int32)
        self.entry_point = 0
        self._build()

    # ---- construction ------------------------------------------------------
    def _sample_level(self) -> int:
        u = self._rng.random()
        return int(-np.log(max(u, 1e-12)) * self.params.level_multiplier)

    def _build(self) -> None:
        n = self.vectors.shape[0]
        self.levels[0] = self._sample_level()
        for _ in range(self.levels[0] + 1 - len(self.layers)):
            self.layers.append(dict())
        for layer in range(self.levels[0] + 1):
            self.layers[layer][0] = []
        for v in range(1, n):
            self._insert(v)
        self._ensure_nearest_inlink()
        self._pivots = self._select_pivots()
        self._ensure_reachable()

    def _ensure_nearest_inlink(self) -> None:
        """Guarantee each vector an in-edge from its true nearest neighbor.

        Greedy beam search always expands the best result it returns,
        so if the nearest other vertex ``w*`` of a stored vector ``v``
        links to ``v``, any search for ``v`` that reaches ``w*`` also
        reaches ``v``.  Degree capping (:meth:`_shrink`) can silently
        drop exactly these edges; this pass restores the missing ones
        and re-shrinks over-cap lists with the nearest-in-links
        protected.  Skipped above :data:`NEAREST_INLINK_MAX_N` (the
        exact pass is chunked O(n^2)).
        """
        n = self.vectors.shape[0]
        if n < 2 or n > NEAREST_INLINK_MAX_N:
            return
        nearest = np.empty(n, dtype=np.int64)
        chunk = 512
        for lo in range(0, n, chunk):
            hi = min(lo + chunk, n)
            d = pairwise_distances(self.vectors[lo:hi], self.vectors, self.metric)
            d[np.arange(hi - lo), np.arange(lo, hi)] = np.inf
            nearest[lo:hi] = np.argmin(d, axis=1)
        required: dict[int, set[int]] = {}
        for v in range(n):
            required.setdefault(int(nearest[v]), set()).add(v)
        adj = self.layers[0]
        cap = self.params.max_degree0
        for w, targets in required.items():
            neigh = adj.setdefault(w, [])
            neigh.extend(v for v in targets if v not in neigh)
            if len(neigh) > cap:
                self._shrink(w, 0, cap, protect=targets)

    def _ensure_reachable(self) -> None:
        """Guarantee every vertex is reachable from the search seeds.

        Degree capping makes layer 0 a *directed* graph, so a small
        vertex group can end up with no in-edges from the rest — a
        single-entry search can then never return it.  Any vertex a
        BFS from entry point + pivots cannot reach promotes a
        representative of its component to the pivot list (cheapest
        repair: no graph surgery, no degree-cap interactions).
        """
        adj = self.layers[0]
        n = self.vectors.shape[0]
        seen = np.zeros(n, dtype=bool)
        stack = sorted({int(self.entry_point), *self._pivots})
        for s in stack:
            seen[s] = True
        while True:
            while stack:
                u = stack.pop()
                for w in adj.get(u, ()):
                    if not seen[w]:
                        seen[w] = True
                        stack.append(w)
            if seen.all():
                return
            rep = int(np.flatnonzero(~seen)[0])
            self._pivots.append(rep)
            seen[rep] = True
            stack = [rep]

    def _select_pivots(self) -> list[int]:
        """Well-spread restart entries for layer-0 searches.

        Greedy maximin (k-center) selection: start from the entry point
        and repeatedly add the vertex farthest from the current pivot
        set.  This deliberately picks the most isolated points — the
        outliers and stray components that a single-entry beam misses —
        so a search seeded with the pivots always starts within reach
        of every region of the corpus.  Deterministic, O(n · pivots)
        distance computations at build time.
        """
        n = self.vectors.shape[0]
        pivots = [int(self.entry_point)]
        d = distances_to_query(self.vectors, self.vectors[pivots[0]], self.metric)
        for _ in range(min(n, MAX_SEARCH_PIVOTS) - 1):
            far = int(np.argmax(d))
            if d[far] <= 0.0:
                break  # remaining points duplicate a pivot
            pivots.append(far)
            d = np.minimum(
                d, distances_to_query(self.vectors, self.vectors[far], self.metric)
            )
        return pivots

    def _search_layer(
        self, query: np.ndarray, entries: list[int], ef: int, layer: int
    ) -> list[tuple[float, int]]:
        adj = self.layers[layer]
        return greedy_beam_search(
            self.vectors,
            lambda v: np.asarray(adj.get(v, ()), dtype=np.int64),
            query,
            entries,
            ef,
            self.metric,
        )

    def _insert(self, v: int) -> None:
        level = self._sample_level()
        self.levels[v] = level
        while len(self.layers) <= level:
            self.layers.append(dict())
        query = self.vectors[v]
        top = self.levels[self.entry_point]
        entry = self.entry_point
        # Greedy descent through layers above the insertion level.
        for layer in range(int(top), level, -1):
            nearest = self._search_layer(query, [entry], 1, layer)
            entry = nearest[0][1]
        # Insert with ef_construction beams from min(level, top) down to 0.
        entries = [entry]
        for layer in range(min(level, int(top)), -1, -1):
            found = self._search_layer(query, entries, self.params.ef_construction, layer)
            m_cap = self.params.max_degree0 if layer == 0 else self.params.max_degree
            selected = self._select_neighbors(query, found, self.params.M)
            adj = self.layers[layer]
            adj[v] = [u for _, u in selected]
            for dist_vu, u in selected:
                adj.setdefault(u, []).append(v)
                if len(adj[u]) > m_cap:
                    self._shrink(u, layer, m_cap)
            entries = [u for _, u in found]
        for layer in range(int(top) + 1, level + 1):
            self.layers[layer][v] = []
        if level > top:
            self.entry_point = v

    def _select_neighbors(
        self, query: np.ndarray, candidates: list[tuple[float, int]], m: int
    ) -> list[tuple[float, int]]:
        """Algorithm 4 heuristic (or plain closest-m when disabled)."""
        if not self.params.use_heuristic or len(candidates) <= m:
            return sorted(candidates)[:m]
        selected: list[tuple[float, int]] = []
        selected_ids: list[int] = []
        for dist_q, u in sorted(candidates):
            if len(selected) >= m:
                break
            if selected_ids:
                d_us = distances_to_query(
                    self.vectors[np.asarray(selected_ids, dtype=np.int64)],
                    self.vectors[u],
                    self.metric,
                )
                if float(d_us.min()) < dist_q:
                    continue
            selected.append((dist_q, u))
            selected_ids.append(u)
        # Fill up with skipped candidates if the heuristic was too strict.
        if len(selected) < m:
            chosen = {u for _, u in selected}
            for dist_q, u in sorted(candidates):
                if len(selected) >= m:
                    break
                if u not in chosen:
                    selected.append((dist_q, u))
        return selected

    def _shrink(
        self, u: int, layer: int, m_cap: int, protect: set[int] | frozenset = frozenset()
    ) -> None:
        adj = self.layers[layer]
        neigh = np.asarray(adj[u], dtype=np.int64)
        dists = distances_to_query(self.vectors[neigh], self.vectors[u], self.metric)
        candidates = [(float(d), int(x)) for d, x in zip(dists, neigh)]
        if protect:
            # Nearest-in-link edges survive the heuristic unconditionally
            # (the cap may be exceeded on pathological duplicate-heavy
            # data, where one vertex is the nearest neighbor of many).
            kept_protected = [(d, x) for d, x in candidates if x in protect]
            free = [(d, x) for d, x in candidates if x not in protect]
            m_free = max(m_cap - len(kept_protected), 0)
            kept = kept_protected + (
                self._select_neighbors(self.vectors[u], free, m_free)
                if m_free
                else []
            )
        else:
            kept = self._select_neighbors(self.vectors[u], candidates, m_cap)
        adj[u] = [x for _, x in kept]

    # ---- search ----------------------------------------------------------------
    def search(
        self,
        query: np.ndarray,
        k: int,
        ef: int | None = None,
        recorder: TraceRecorder | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-k search; optionally records the layer-0 access trace.

        The layer-0 beam is seeded with the greedy-descent entry *plus*
        the index's restart pivots, and ``ef`` is floored at ``Mmax0``
        (= 2M): both guard against the single-entry beam parking in a
        local minimum, which on adversarial clouds could miss even a
        stored vector queried at ``k=1``.
        """
        if ef is None:
            ef = max(k, self.params.ef_construction // 2)
        if ef < k:
            raise ValueError("ef must be >= k")
        ef = max(ef, self.params.max_degree0)
        entry = self.entry_point
        for layer in range(int(self.levels[self.entry_point]), 0, -1):
            nearest = self._search_layer(query, [entry], 1, layer)
            entry = nearest[0][1]
        adj = self.layers[0]
        entries = [entry] + [p for p in self._pivots if p != entry]
        results = greedy_beam_search(
            self.vectors,
            lambda v: np.asarray(adj.get(v, ()), dtype=np.int64),
            query,
            entries,
            ef,
            self.metric,
            recorder=recorder,
        )
        ids, dists = top_k_from_results(results, k)
        if recorder is not None:
            recorder.record_result(ids, dists)
        return ids, dists

    def search_batch(
        self, queries: np.ndarray, k: int, ef: int | None = None, record: bool = True
    ) -> tuple[np.ndarray, np.ndarray, list[SearchTrace]]:
        """Batch search returning ids, distances and per-query traces."""
        n = queries.shape[0]
        all_ids = np.full((n, k), -1, dtype=np.int64)
        all_dists = np.full((n, k), np.inf, dtype=np.float64)
        traces: list[SearchTrace] = []
        for i in range(n):
            recorder = TraceRecorder(query_id=i) if record else None
            ids, dists = self.search(queries[i], k, ef=ef, recorder=recorder)
            all_ids[i, : ids.size] = ids
            all_dists[i, : dists.size] = dists
            if recorder is not None:
                traces.append(recorder.finish())
        return all_ids, all_dists, traces

    # ---- export --------------------------------------------------------------------
    def base_graph(self) -> ProximityGraph:
        """The layer-0 graph: what NDSearch stores in the flash array."""
        n = self.vectors.shape[0]
        adjacency = [self.layers[0].get(v, []) for v in range(n)]
        return ProximityGraph.from_adjacency(
            self.vectors, adjacency, metric=self.metric, entry_point=self.entry_point
        )

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def memory_per_vertex_bytes(self) -> float:
        """Average per-vertex footprint (paper: 60-450 B/vertex)."""
        edge_bytes = sum(
            4 * len(neigh) for layer in self.layers for neigh in layer.values()
        )
        vec_bytes = self.vectors.size * self.vectors.itemsize
        return (edge_bytes + vec_bytes) / self.vectors.shape[0]
