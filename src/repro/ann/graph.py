"""Proximity graph container with CSR storage.

Every construction algorithm (HNSW base layer, Vamana, HCNNG, TOGG)
produces a :class:`ProximityGraph`: the dataset's vectors plus a CSR
adjacency (offset + neighbor arrays, exactly the first two LUNCSR
arrays of the paper's Fig. 5(b)).  The NDSearch placement/scheduling
machinery consumes this object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ann.distance import DistanceMetric


@dataclass
class ProximityGraph:
    """An immutable CSR proximity graph over a vector dataset.

    Attributes
    ----------
    vectors:
        (n, d) float32 feature vectors.
    indptr / indices:
        CSR offset and neighbor arrays.  ``indices[indptr[v]:indptr[v+1]]``
        are the neighbor IDs of vertex ``v``.
    metric:
        Distance metric the graph was built under.
    entry_point:
        Default entry vertex for searches (medoid or HNSW top entry).
    """

    vectors: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray
    metric: DistanceMetric = DistanceMetric.EUCLIDEAN
    entry_point: int = 0
    _degree_cache: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.vectors = np.ascontiguousarray(self.vectors, dtype=np.float32)
        self.indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(self.indices, dtype=np.int32)
        n = self.vectors.shape[0]
        if self.indptr.shape != (n + 1,):
            raise ValueError(f"indptr must have length n+1={n + 1}")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr endpoints inconsistent with indices")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= n
        ):
            raise ValueError("neighbor IDs out of range")
        if not 0 <= self.entry_point < max(n, 1):
            raise ValueError(f"entry point {self.entry_point} out of range")

    @classmethod
    def from_adjacency(
        cls,
        vectors: np.ndarray,
        adjacency: list[list[int]] | list[np.ndarray],
        metric: DistanceMetric = DistanceMetric.EUCLIDEAN,
        entry_point: int = 0,
    ) -> "ProximityGraph":
        """Freeze per-vertex neighbor lists into CSR form."""
        n = len(adjacency)
        if vectors.shape[0] != n:
            raise ValueError("adjacency length must match vector count")
        degrees = np.fromiter((len(a) for a in adjacency), dtype=np.int64, count=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int32)
        for v, neigh in enumerate(adjacency):
            indices[indptr[v] : indptr[v + 1]] = neigh
        return cls(vectors, indptr, indices, metric=metric, entry_point=entry_point)

    # ---- basic accessors --------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.vectors.shape[0]

    @property
    def num_edges(self) -> int:
        return int(self.indices.size)

    @property
    def dim(self) -> int:
        return self.vectors.shape[1]

    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    @property
    def degrees(self) -> np.ndarray:
        if self._degree_cache is None:
            self._degree_cache = np.diff(self.indptr)
        return self._degree_cache

    @property
    def max_degree(self) -> int:
        return int(self.degrees.max()) if self.num_vertices else 0

    @property
    def mean_degree(self) -> float:
        return float(self.degrees.mean()) if self.num_vertices else 0.0

    # ---- transformations ------------------------------------------------------
    def relabeled(self, order: np.ndarray) -> "ProximityGraph":
        """Return the graph with vertices renumbered by ``order``.

        ``order[i]`` is the *old* ID of the vertex that becomes new ID
        ``i`` (i.e. ``order`` is a permutation in visit order, the
        output of the reordering algorithms).  Vectors, adjacency and
        the entry point are all remapped consistently.
        """
        n = self.num_vertices
        order = np.asarray(order, dtype=np.int64)
        if sorted(order.tolist()) != list(range(n)):
            raise ValueError("order must be a permutation of all vertex IDs")
        new_id = np.empty(n, dtype=np.int64)
        new_id[order] = np.arange(n)
        adjacency: list[np.ndarray] = [
            new_id[self.neighbors(old)].astype(np.int32) for old in order
        ]
        return ProximityGraph.from_adjacency(
            self.vectors[order],
            adjacency,
            metric=self.metric,
            entry_point=int(new_id[self.entry_point]),
        )

    def undirected(self) -> "ProximityGraph":
        """Return the graph with every edge made bidirectional."""
        pairs = set()
        for v in range(self.num_vertices):
            for u in self.neighbors(v):
                pairs.add((v, int(u)))
                pairs.add((int(u), v))
        adjacency: list[list[int]] = [[] for _ in range(self.num_vertices)]
        for v, u in sorted(pairs):
            if v != u:
                adjacency[v].append(u)
        return ProximityGraph.from_adjacency(
            self.vectors, adjacency, metric=self.metric, entry_point=self.entry_point
        )

    def is_connected(self) -> bool:
        """BFS reachability from the entry point (treating edges as undirected)."""
        if self.num_vertices == 0:
            return True
        # Build reverse adjacency on the fly via a single undirected pass.
        seen = np.zeros(self.num_vertices, dtype=bool)
        undirected: list[set[int]] = [set() for _ in range(self.num_vertices)]
        for v in range(self.num_vertices):
            for u in self.neighbors(v):
                undirected[v].add(int(u))
                undirected[int(u)].add(v)
        stack = [self.entry_point]
        seen[self.entry_point] = True
        while stack:
            v = stack.pop()
            for u in undirected[v]:
                if not seen[u]:
                    seen[u] = True
                    stack.append(u)
        return bool(seen.all())

    # ---- storage accounting (paper Fig. 6) -----------------------------------------
    def padded_layout_bytes(self, max_neighbors: int, id_bytes: int = 4) -> int:
        """Footprint of the HNSW/DiskANN slice layout (vector + padded IDs)."""
        per_vertex = self.dim * self.vectors.itemsize + max_neighbors * id_bytes
        return per_vertex * self.num_vertices

    def csr_layout_bytes(self, id_bytes: int = 4, offset_bytes: int = 8) -> int:
        """Footprint of the CSR layout (no padding)."""
        return (
            self.num_vertices * self.dim * self.vectors.itemsize
            + self.num_edges * id_bytes
            + (self.num_vertices + 1) * offset_bytes
        )
