"""The shared greedy best-first (beam) search kernel.

All four graph-traversal ANNS algorithms in the paper run the same
inner loop (Section II-A): keep a candidate list, repeatedly pop the
candidate nearest to the query, terminate when it is farther than the
worst of the current top results, otherwise compute distances to its
unvisited neighbors and push them.  The kernel optionally records an
access trace (one :class:`IterationRecord` per pop) for the simulator.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.ann.distance import DistanceMetric, distances_to_query
from repro.ann.trace import TraceRecorder


def greedy_beam_search(
    vectors: np.ndarray,
    neighbors_of,
    query: np.ndarray,
    entry_points: list[int],
    ef: int,
    metric: DistanceMetric,
    recorder: TraceRecorder | None = None,
    neighbor_filter=None,
    max_iterations: int | None = None,
) -> list[tuple[float, int]]:
    """Beam search over an arbitrary adjacency function.

    Parameters
    ----------
    vectors:
        (n, d) dataset.
    neighbors_of:
        Callable ``vertex -> ndarray of neighbor IDs`` (lets HNSW pass a
        per-layer adjacency and TOGG pass a filtered one).
    entry_points:
        Initial candidate vertices.
    ef:
        Beam width — size of the dynamic result list.
    recorder:
        Optional :class:`TraceRecorder`; one iteration is recorded per
        expanded vertex, carrying the newly computed neighbor IDs.
    neighbor_filter:
        Optional callable ``(current_vertex, neighbor_ids) -> neighbor_ids``
        applied before distance computation (TOGG's guided stage).
    max_iterations:
        Optional safety cap on expansions.

    Returns
    -------
    list of (distance, vertex) pairs, ascending by distance, length <= ef.
    """
    if ef < 1:
        raise ValueError("ef must be >= 1")
    if not entry_points:
        raise ValueError("need at least one entry point")

    entry_set = set(int(e) for e in entry_points)
    entry_array = np.fromiter(entry_set, dtype=np.int64, count=len(entry_set))
    entry_dists = distances_to_query(vectors[entry_array], query, metric)
    # Visited bookkeeping as a dense bool mask: the per-expansion
    # "which neighbors are new" filter becomes one vectorized gather
    # instead of a per-edge Python set probe.
    visited = np.zeros(vectors.shape[0], dtype=bool)
    visited[entry_array] = True

    # candidates: min-heap by distance; results: max-heap (negated).
    candidates: list[tuple[float, int]] = []
    results: list[tuple[float, int]] = []
    for dist, vid in zip(entry_dists, entry_array):
        heapq.heappush(candidates, (float(dist), int(vid)))
        heapq.heappush(results, (-float(dist), int(vid)))
    while len(results) > ef:
        heapq.heappop(results)
    if recorder is not None:
        recorder.record_iteration(int(entry_array[0]), entry_array.tolist())

    iterations = 0
    while candidates:
        dist, vertex = heapq.heappop(candidates)
        worst = -results[0][0]
        if dist > worst and len(results) >= ef:
            break
        if max_iterations is not None and iterations >= max_iterations:
            break
        iterations += 1

        neigh = np.asarray(neighbors_of(vertex))
        if neighbor_filter is not None and neigh.size:
            neigh = np.asarray(neighbor_filter(vertex, neigh))
        if neigh.size:
            fresh_arr = neigh[~visited[neigh]].astype(np.int64)
        else:
            fresh_arr = neigh.astype(np.int64)
        if recorder is not None:
            recorder.record_iteration(vertex, fresh_arr)
        if fresh_arr.size == 0:
            continue
        visited[fresh_arr] = True
        dists = distances_to_query(vectors[fresh_arr], query, metric)
        worst = -results[0][0]
        for d, u in zip(dists, fresh_arr):
            d = float(d)
            if len(results) < ef or d < worst:
                heapq.heappush(candidates, (d, int(u)))
                heapq.heappush(results, (-d, int(u)))
                if len(results) > ef:
                    heapq.heappop(results)
                worst = -results[0][0]

    ordered = sorted(((-d, v) for d, v in results))
    return [(d, v) for d, v in ordered]


def top_k_from_results(
    results: list[tuple[float, int]], k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Split the (distance, id) beam output into top-k arrays."""
    top = results[: max(k, 0)]
    ids = np.asarray([v for _, v in top], dtype=np.int64)
    dists = np.asarray([d for d, _ in top], dtype=np.float64)
    return ids, dists


def merge_topk(
    ids_per_shard: list[np.ndarray],
    dists_per_shard: list[np.ndarray],
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-shard top-k candidate lists into a global top-k.

    Each shard contributes ``(batch, k_s)`` ID and distance arrays in a
    shared (global) ID space; rows may be padded with ``-1`` IDs /
    ``inf`` distances when a shard holds fewer than ``k_s`` vectors.
    The merge keeps, per query, the ``k`` nearest valid candidates by
    distance (stable: ties broken by shard order then rank), dropping
    duplicate IDs — so replicated shards merge as safely as disjoint
    partitions.  Output rows are padded with ``-1`` / ``inf`` when
    fewer than ``k`` distinct candidates exist.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if not ids_per_shard or len(ids_per_shard) != len(dists_per_shard):
        raise ValueError("need matching, non-empty per-shard id/dist lists")
    ids = np.concatenate(
        [np.atleast_2d(np.asarray(a, dtype=np.int64)) for a in ids_per_shard], axis=1
    )
    dists = np.concatenate(
        [np.atleast_2d(np.asarray(d, dtype=np.float64)) for d in dists_per_shard],
        axis=1,
    )
    if ids.shape != dists.shape:
        raise ValueError("id and distance shapes differ")
    batch, m = ids.shape
    out_ids = np.full((batch, k), -1, dtype=np.int64)
    out_dists = np.full((batch, k), np.inf, dtype=np.float64)
    # Rank candidates per row by distance (stable: ties keep shard
    # order then rank, matching the concatenation order).
    order = np.argsort(dists, axis=1, kind="stable")
    sid = np.take_along_axis(ids, order, axis=1)
    sdist = np.take_along_axis(dists, order, axis=1)
    valid = (sid >= 0) & np.isfinite(sdist)
    # First-occurrence dedup across the whole batch at once: group the
    # flattened candidates by (row, id) with rank as the tie-break;
    # the group head is the nearest valid occurrence of that id.
    # Invalid entries are collapsed onto id -1 so they never shadow a
    # valid duplicate, and are dropped by the validity mask below.
    flat_id = np.where(valid, sid, -1).ravel()
    flat_row = np.repeat(np.arange(batch), m)
    flat_rank = np.tile(np.arange(m), batch)
    perm = np.lexsort((flat_rank, flat_id, flat_row))
    head = np.ones(perm.size, dtype=bool)
    head[1:] = (flat_row[perm][1:] != flat_row[perm][:-1]) | (
        flat_id[perm][1:] != flat_id[perm][:-1]
    )
    keep = np.zeros(batch * m, dtype=bool)
    keep[perm] = head
    keep &= valid.ravel()
    keep = keep.reshape(batch, m)
    # Scatter the first k kept candidates of each row into the output.
    dest = np.cumsum(keep, axis=1) - 1
    take = keep & (dest < k)
    rows = np.nonzero(take)[0]
    out_ids[rows, dest[take]] = sid[take]
    out_dists[rows, dest[take]] = sdist[take]
    return out_ids, out_dists
