"""The shared greedy best-first (beam) search kernel.

All four graph-traversal ANNS algorithms in the paper run the same
inner loop (Section II-A): keep a candidate list, repeatedly pop the
candidate nearest to the query, terminate when it is farther than the
worst of the current top results, otherwise compute distances to its
unvisited neighbors and push them.  The kernel optionally records an
access trace (one :class:`IterationRecord` per pop) for the simulator.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.ann.distance import DistanceMetric, distances_to_query
from repro.ann.trace import TraceRecorder


def greedy_beam_search(
    vectors: np.ndarray,
    neighbors_of,
    query: np.ndarray,
    entry_points: list[int],
    ef: int,
    metric: DistanceMetric,
    recorder: TraceRecorder | None = None,
    neighbor_filter=None,
    max_iterations: int | None = None,
) -> list[tuple[float, int]]:
    """Beam search over an arbitrary adjacency function.

    Parameters
    ----------
    vectors:
        (n, d) dataset.
    neighbors_of:
        Callable ``vertex -> ndarray of neighbor IDs`` (lets HNSW pass a
        per-layer adjacency and TOGG pass a filtered one).
    entry_points:
        Initial candidate vertices.
    ef:
        Beam width — size of the dynamic result list.
    recorder:
        Optional :class:`TraceRecorder`; one iteration is recorded per
        expanded vertex, carrying the newly computed neighbor IDs.
    neighbor_filter:
        Optional callable ``(current_vertex, neighbor_ids) -> neighbor_ids``
        applied before distance computation (TOGG's guided stage).
    max_iterations:
        Optional safety cap on expansions.

    Returns
    -------
    list of (distance, vertex) pairs, ascending by distance, length <= ef.
    """
    if ef < 1:
        raise ValueError("ef must be >= 1")
    if not entry_points:
        raise ValueError("need at least one entry point")

    visited: set[int] = set(int(e) for e in entry_points)
    entry_array = np.fromiter(visited, dtype=np.int64, count=len(visited))
    entry_dists = distances_to_query(vectors[entry_array], query, metric)

    # candidates: min-heap by distance; results: max-heap (negated).
    candidates: list[tuple[float, int]] = []
    results: list[tuple[float, int]] = []
    for dist, vid in zip(entry_dists, entry_array):
        heapq.heappush(candidates, (float(dist), int(vid)))
        heapq.heappush(results, (-float(dist), int(vid)))
    while len(results) > ef:
        heapq.heappop(results)
    if recorder is not None:
        recorder.record_iteration(int(entry_array[0]), entry_array.tolist())

    iterations = 0
    while candidates:
        dist, vertex = heapq.heappop(candidates)
        worst = -results[0][0]
        if dist > worst and len(results) >= ef:
            break
        if max_iterations is not None and iterations >= max_iterations:
            break
        iterations += 1

        neigh = np.asarray(neighbors_of(vertex))
        if neighbor_filter is not None and neigh.size:
            neigh = np.asarray(neighbor_filter(vertex, neigh))
        fresh = [int(u) for u in neigh if int(u) not in visited]
        if recorder is not None:
            recorder.record_iteration(vertex, fresh)
        if not fresh:
            continue
        visited.update(fresh)
        fresh_arr = np.asarray(fresh, dtype=np.int64)
        dists = distances_to_query(vectors[fresh_arr], query, metric)
        worst = -results[0][0]
        for d, u in zip(dists, fresh_arr):
            d = float(d)
            if len(results) < ef or d < worst:
                heapq.heappush(candidates, (d, int(u)))
                heapq.heappush(results, (-d, int(u)))
                if len(results) > ef:
                    heapq.heappop(results)
                worst = -results[0][0]

    ordered = sorted(((-d, v) for d, v in results))
    return [(d, v) for d, v in ordered]


def top_k_from_results(
    results: list[tuple[float, int]], k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Split the (distance, id) beam output into top-k arrays."""
    top = results[: max(k, 0)]
    ids = np.asarray([v for _, v in top], dtype=np.int64)
    dists = np.asarray([d for d, _ in top], dtype=np.float64)
    return ids, dists


def merge_topk(
    ids_per_shard: list[np.ndarray],
    dists_per_shard: list[np.ndarray],
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-shard top-k candidate lists into a global top-k.

    Each shard contributes ``(batch, k_s)`` ID and distance arrays in a
    shared (global) ID space; rows may be padded with ``-1`` IDs /
    ``inf`` distances when a shard holds fewer than ``k_s`` vectors.
    The merge keeps, per query, the ``k`` nearest valid candidates by
    distance (stable: ties broken by shard order then rank), dropping
    duplicate IDs — so replicated shards merge as safely as disjoint
    partitions.  Output rows are padded with ``-1`` / ``inf`` when
    fewer than ``k`` distinct candidates exist.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if not ids_per_shard or len(ids_per_shard) != len(dists_per_shard):
        raise ValueError("need matching, non-empty per-shard id/dist lists")
    ids = np.concatenate(
        [np.atleast_2d(np.asarray(a, dtype=np.int64)) for a in ids_per_shard], axis=1
    )
    dists = np.concatenate(
        [np.atleast_2d(np.asarray(d, dtype=np.float64)) for d in dists_per_shard],
        axis=1,
    )
    if ids.shape != dists.shape:
        raise ValueError("id and distance shapes differ")
    batch = ids.shape[0]
    out_ids = np.full((batch, k), -1, dtype=np.int64)
    out_dists = np.full((batch, k), np.inf, dtype=np.float64)
    for row in range(batch):
        order = np.argsort(dists[row], kind="stable")
        seen: set[int] = set()
        filled = 0
        for pos in order:
            vid = int(ids[row, pos])
            if vid < 0 or not np.isfinite(dists[row, pos]) or vid in seen:
                continue
            seen.add(vid)
            out_ids[row, filled] = vid
            out_dists[row, filled] = dists[row, pos]
            filled += 1
            if filled == k:
                break
    return out_ids, out_dists
