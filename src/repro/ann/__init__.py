"""Graph-traversal-based ANNS algorithms, implemented from scratch.

The paper evaluates HNSW [59] and DiskANN [70] (plus HCNNG [63] and
TOGG [81] in the discussion).  This package provides faithful Python
implementations of all four, a brute-force exact searcher for ground
truth, recall computation, and — crucially for the simulator — *trace
recording*: every search emits the per-iteration sequence of visited
vertices, which is exactly the memory trace the paper feeds to its
trace-driven simulator (Section VII-A, "Simulation method").
"""

from repro.ann.distance import DistanceMetric, pairwise_distances, distances_to_query
from repro.ann.graph import ProximityGraph
from repro.ann.trace import IterationRecord, SearchTrace, TraceRecorder
from repro.ann.search import greedy_beam_search, merge_topk
from repro.ann.bruteforce import BruteForceIndex
from repro.ann.recall import recall_at_k
from repro.ann.hnsw import HNSWIndex, HNSWParams
from repro.ann.diskann import DiskANNIndex, DiskANNParams
from repro.ann.hcnng import HCNNGIndex, HCNNGParams
from repro.ann.togg import TOGGIndex, TOGGParams
from repro.ann.ivf import IVFFlatIndex, IVFParams

__all__ = [
    "DistanceMetric",
    "pairwise_distances",
    "distances_to_query",
    "ProximityGraph",
    "IterationRecord",
    "SearchTrace",
    "TraceRecorder",
    "greedy_beam_search",
    "merge_topk",
    "BruteForceIndex",
    "recall_at_k",
    "HNSWIndex",
    "HNSWParams",
    "DiskANNIndex",
    "DiskANNParams",
    "HCNNGIndex",
    "HCNNGParams",
    "TOGGIndex",
    "TOGGParams",
    "IVFFlatIndex",
    "IVFParams",
]
