"""Shard routing: spreading a corpus across a pool of SearSSD devices.

A single SearSSD holds ~512 GB; production corpora and traffic both
outgrow one device.  Two classic layouts are provided:

* **replicated** — every shard device stores the full corpus + graph.
  A batch is routed to *one* device (the least-loaded), so throughput
  scales with the pool while results are bit-identical to an unsharded
  system.  This is the layout for traffic scaling.
* **partitioned** — the corpus is split across shards by a k-means
  coarse quantizer (the IVF construction of :mod:`repro.ann.ivf`), one
  sub-corpus and sub-graph per device.  A batch *broadcasts* to every
  shard; per-shard top-k lists come back in global IDs and merge via
  :func:`repro.ann.search.merge_topk`.  This is the layout for corpus
  scaling (each device stores 1/N of the data).

Partitioned mode additionally supports **selective probing** — IVF
``nprobe`` lifted to the device-pool level (the paper's Section VIII-B
generalisation).  The router keeps the k-means centroids it split the
corpus with; :meth:`ShardRouter.probe` routes each query to its
``nprobe`` nearest shards, and :meth:`ShardRouter.search_probed`
regroups the batch into per-shard sub-batches, serves each through
:meth:`ShardRouter.search_selected` and merges the partial top-k lists
(per-query shard masks: a query only contributes candidates from the
shards it probed).  ``nprobe = num_shards`` reproduces the broadcast
results exactly; smaller ``nprobe`` trades recall for a fraction of
the per-query device work.

The router owns the shard backends and the ID translation; device
*timing* (who is busy until when) stays in the frontend's event loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ann.distance import DistanceMetric, pairwise_distances
from repro.ann.hnsw import HNSWIndex, HNSWParams
from repro.ann.ivf import kmeans
from repro.ann.search import merge_topk
from repro.core.config import NDSearchConfig
from repro.serving.backends import SearchBackend, make_backend
from repro.sim.stats import SimResult

REPLICATED = "replicated"
PARTITIONED = "partitioned"
SHARD_MODES = (REPLICATED, PARTITIONED)


@dataclass(frozen=True)
class ShardJob:
    """One shard's slice of a selectively-probed batch.

    ``rows`` are the batch-row indices routed to ``shard`` (ascending),
    ``result`` the shard's :class:`~repro.sim.stats.SimResult` for that
    sub-batch — what the frontend books onto the shard's device
    timeline.
    """

    shard: int
    rows: np.ndarray
    result: SimResult


@dataclass
class ShardRouter:
    """A pool of shard backends plus the global-ID bookkeeping.

    ``global_ids[s]`` maps shard ``s``'s local vertex IDs to corpus
    IDs; ``None`` means the shard stores the full corpus (replicated
    mode, local == global).  ``centroids`` holds the k-means coarse
    quantizer a partitioned corpus was split with — the routing table
    for selective probing.
    """

    backends: list[SearchBackend]
    mode: str = REPLICATED
    global_ids: list[np.ndarray] | None = None
    centroids: np.ndarray | None = None

    def __post_init__(self) -> None:
        if not self.backends:
            raise ValueError("need at least one shard backend")
        if self.mode not in SHARD_MODES:
            raise ValueError(
                f"unknown shard mode {self.mode!r}; expected one of {SHARD_MODES}"
            )
        if self.mode == PARTITIONED:
            if self.global_ids is None or len(self.global_ids) != len(self.backends):
                raise ValueError(
                    "partitioned mode needs one global-ID map per shard"
                )
            if self.centroids is not None and self.centroids.shape[0] != len(
                self.backends
            ):
                raise ValueError("need one routing centroid per shard")

    @property
    def num_shards(self) -> int:
        return len(self.backends)

    def add_replica(self) -> int:
        """Grow a replicated pool by one shard; returns the new count.

        Replicas share the corpus index and platform model (the models
        are stateless across ``simulate`` calls), so a grown pool
        serves bit-identical results — per-replica *occupancy* lives in
        the frontend's :class:`~repro.serving.device.ShardDevice`
        timelines.  This is the autoscaler's scale-up primitive;
        partitioned pools cannot grow this way (each shard owns a
        distinct sub-corpus).
        """
        if self.mode != REPLICATED:
            raise ValueError("only replicated pools can add replicas")
        self.backends.append(self.backends[0])
        return self.num_shards

    def search_on(
        self, shard: int, queries: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray, SimResult]:
        """Serve a batch on one shard; IDs come back in corpus numbering."""
        ids, dists, result = self.backends[shard].search_batch(queries, k)
        if self.global_ids is not None:
            local = self.global_ids[shard]
            ids = np.where(ids >= 0, local[np.clip(ids, 0, None)], -1)
        return ids, dists, result

    def probe(self, queries: np.ndarray, nprobe: int) -> np.ndarray:
        """Route each query to its ``nprobe`` nearest shards.

        Returns a ``(batch, nprobe)`` array of shard indices, ordered
        by ascending centroid distance (stable ties), one row per
        query.  Requires a partitioned router built with centroids.
        """
        if self.mode != PARTITIONED or self.centroids is None:
            raise ValueError(
                "selective probing needs a partitioned router with centroids"
            )
        if not 1 <= nprobe <= self.num_shards:
            raise ValueError(
                f"nprobe must be in [1, {self.num_shards}], got {nprobe}"
            )
        dmat = pairwise_distances(
            np.atleast_2d(queries), self.centroids, DistanceMetric.EUCLIDEAN
        )
        return np.argsort(dmat, axis=1, kind="stable")[:, :nprobe]

    def search_selected(
        self, shard: int, subbatch: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray, SimResult]:
        """Serve a probed sub-batch on one shard (corpus-ID results).

        The selective-probing leg of :meth:`search_probed`; results are
        identical to :meth:`search_on` because per-query searches are
        independent of batch composition — only the *timing* (the
        returned :class:`~repro.sim.stats.SimResult`) reflects the
        sub-batch size.
        """
        return self.search_on(shard, subbatch, k)

    def search_probed(
        self, queries: np.ndarray, k: int, nprobe: int
    ) -> tuple[np.ndarray, np.ndarray, list[ShardJob]]:
        """Selective fan-out: probe, regroup per shard, merge top-k.

        Each query fans out only to its ``nprobe`` nearest shards; each
        shard serves one sub-batch holding exactly the queries that
        probed it.  Partial top-k lists merge under per-query shard
        masks (rows a query did not probe stay ``-1``/``inf`` padded,
        which :func:`repro.ann.search.merge_topk` skips), so with
        ``nprobe = num_shards`` the merge — and therefore the results —
        is bit-identical to :meth:`search_all`.  Returns the merged
        ``(ids, dists)`` plus one :class:`ShardJob` per probed shard
        for the frontend's device timelines.
        """
        queries = np.atleast_2d(queries)
        assignment = self.probe(queries, nprobe)
        batch = queries.shape[0]
        per_ids: list[np.ndarray] = []
        per_dists: list[np.ndarray] = []
        jobs: list[ShardJob] = []
        for shard in range(self.num_shards):
            rows = np.flatnonzero((assignment == shard).any(axis=1))
            # Masked per-shard candidate block: unprobed rows stay padded.
            ids = np.full((batch, k), -1, dtype=np.int64)
            dists = np.full((batch, k), np.inf, dtype=np.float64)
            if rows.size:
                sub_ids, sub_dists, result = self.search_selected(
                    shard, queries[rows], k
                )
                ids[rows, : sub_ids.shape[1]] = sub_ids
                dists[rows, : sub_dists.shape[1]] = sub_dists
                jobs.append(ShardJob(shard=shard, rows=rows, result=result))
            per_ids.append(ids)
            per_dists.append(dists)
        merged_ids, merged_dists = merge_topk(per_ids, per_dists, k)
        return merged_ids, merged_dists, jobs

    def search_all(
        self, queries: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray, list[SimResult]]:
        """Broadcast a batch to every shard and merge the top-k lists."""
        per_ids: list[np.ndarray] = []
        per_dists: list[np.ndarray] = []
        results: list[SimResult] = []
        for shard in range(self.num_shards):
            ids, dists, result = self.search_on(shard, queries, k)
            per_ids.append(ids)
            per_dists.append(dists)
            results.append(result)
        merged_ids, merged_dists = merge_topk(per_ids, per_dists, k)
        return merged_ids, merged_dists, results


def build_router(
    vectors: np.ndarray,
    num_shards: int,
    config: NDSearchConfig,
    mode: str = REPLICATED,
    platform: str = "ndsearch",
    hnsw_params: HNSWParams | None = None,
    metric=None,
    ef: int | None = None,
    seed: int = 0,
    dataset: str = "synthetic",
) -> ShardRouter:
    """Construct a shard router over a corpus.

    Replicated mode builds the index once and shares it across the
    shard backends (each backend still gets its own device model with
    the per-shard :meth:`~repro.core.config.NDSearchConfig.shard`
    geometry).  Partitioned mode k-means-splits the corpus and builds
    one index per sub-corpus.
    """
    if mode not in SHARD_MODES:
        raise ValueError(f"unknown shard mode {mode!r}")
    params = hnsw_params or HNSWParams(M=8, ef_construction=48)
    try:
        shard_config = config.shard(num_shards)
    except ValueError:
        # Geometry does not divide evenly: deploy a pool of full-size
        # devices instead (scale-out rather than scale-split).
        shard_config = config
    kwargs = {"ef": ef, "dataset": dataset}
    if metric is not None:
        metric_kwargs = {"metric": metric}
    else:
        metric_kwargs = {}

    if mode == REPLICATED:
        index = HNSWIndex(vectors, params, **metric_kwargs)
        # The platform models are stateless across simulate calls
        # (SearSSD resets its fault stream per batch), so the replicas
        # share one backend object: identical results and timing, one
        # graph reorder/placement instead of N.  Per-shard *occupancy*
        # lives in the frontend's ShardDevice pipelines, not here.
        backend = make_backend(platform, index, vectors, shard_config, **kwargs)
        return ShardRouter(backends=[backend] * num_shards, mode=REPLICATED)

    if num_shards > vectors.shape[0]:
        raise ValueError("more shards than corpus vectors")
    if num_shards == 1:
        assignment = np.zeros(vectors.shape[0], dtype=np.int64)
        centroids = vectors.mean(axis=0, keepdims=True).astype(np.float32)
    else:
        centroids, assignment = kmeans(vectors, num_shards, seed=seed)
    backends = []
    global_ids = []
    for shard in range(num_shards):
        members = np.flatnonzero(assignment == shard).astype(np.int64)
        if members.size == 0:
            raise ValueError(
                f"k-means left shard {shard} empty; use fewer shards"
            )
        sub = np.ascontiguousarray(vectors[members])
        index = HNSWIndex(sub, params, **metric_kwargs)
        backends.append(make_backend(platform, index, sub, shard_config, **kwargs))
        global_ids.append(members)
    return ShardRouter(
        backends=backends,
        mode=PARTITIONED,
        global_ids=global_ids,
        centroids=centroids,
    )
