"""Shard routing: spreading a corpus across a pool of SearSSD devices.

A single SearSSD holds ~512 GB; production corpora and traffic both
outgrow one device.  Two classic layouts are provided:

* **replicated** — every shard device stores the full corpus + graph.
  A batch is routed to *one* device (the least-loaded), so throughput
  scales with the pool while results are bit-identical to an unsharded
  system.  This is the layout for traffic scaling.
* **partitioned** — the corpus is split into IVF *clusters* by a
  k-means coarse quantizer (the construction of :mod:`repro.ann.ivf`),
  one sub-corpus and sub-graph per cluster, and the clusters are
  placed across the shard devices (``cluster_shard`` maps cluster →
  owning device).  A batch fans out to clusters; per-cluster top-k
  lists come back in global IDs and merge via
  :func:`repro.ann.search.merge_topk`.  This is the layout for corpus
  scaling (each device stores ~1/N of the data).

With the default ``clusters_per_shard=1`` the clusters *are* the
shards — one cluster per device, which is the classic IVF-partitioned
pool.  More clusters per shard make placement a degree of freedom:
clusters can migrate between devices while serving continues
(:mod:`repro.serving.rebalance` books the data movement on the device
timelines and flips ``cluster_shard`` atomically when it completes),
because the per-cluster indexes and centroids never change — only the
*timing* of who serves a cluster does.

Partitioned mode additionally supports **selective probing** — IVF
``nprobe`` lifted to the device-pool level (the paper's Section VIII-B
generalisation).  The router keeps the k-means centroids it split the
corpus with; :meth:`ShardRouter.probe` routes each query to its
``nprobe`` nearest clusters, and :meth:`ShardRouter.search_probed`
regroups the batch into per-cluster sub-batches, serves each through
:meth:`ShardRouter.search_selected` and merges the partial top-k lists
(per-query cluster masks: a query only contributes candidates from the
clusters it probed).  ``nprobe = num_clusters`` — or
``search_probed(..., nprobe=None)`` — reproduces the broadcast results
exactly; smaller ``nprobe`` trades recall for a fraction of the
per-query device work.

The router owns the cluster backends and the ID translation; device
*timing* (who is busy until when) stays in the frontend's event loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ann.distance import DistanceMetric, pairwise_distances
from repro.ann.hnsw import HNSWIndex, HNSWParams
from repro.ann.ivf import kmeans
from repro.ann.search import merge_topk
from repro.core.config import NDSearchConfig
from repro.serving.backends import SearchBackend, make_backend
from repro.sim.stats import SimResult

REPLICATED = "replicated"
PARTITIONED = "partitioned"
SHARD_MODES = (REPLICATED, PARTITIONED)


@dataclass(frozen=True)
class ShardJob:
    """One shard device's slice of a fanned-out batch.

    ``rows`` are the batch-row indices routed to ``cluster``
    (ascending), ``shard`` the device that owns the cluster at dispatch
    time, ``result`` the cluster's :class:`~repro.sim.stats.SimResult`
    for that sub-batch — what the frontend books onto the shard's
    device timeline.
    """

    shard: int
    rows: np.ndarray
    result: SimResult
    cluster: int = -1


@dataclass
class ShardRouter:
    """A pool of search backends plus the global-ID bookkeeping.

    Replicated mode: one backend per replica device (they share the
    index object).  Partitioned mode: one backend per IVF *cluster*;
    ``global_ids[c]`` maps cluster ``c``'s local vertex IDs to corpus
    IDs, ``centroids`` holds the k-means coarse quantizer the corpus
    was split with (the routing table for selective probing), and
    ``cluster_shard`` maps each cluster to the shard device that
    currently serves it (identity by default — one cluster per
    device).  ``num_devices`` sizes the device pool; it defaults to
    the cluster count and must be given when clusters outnumber
    devices.
    """

    backends: list[SearchBackend]
    mode: str = REPLICATED
    global_ids: list[np.ndarray] | None = None
    centroids: np.ndarray | None = None
    cluster_shard: np.ndarray | None = None
    num_devices: int | None = None

    def __post_init__(self) -> None:
        if not self.backends:
            raise ValueError("need at least one shard backend")
        if self.mode not in SHARD_MODES:
            raise ValueError(
                f"unknown shard mode {self.mode!r}; expected one of {SHARD_MODES}"
            )
        if self.mode == PARTITIONED:
            if self.global_ids is None or len(self.global_ids) != len(self.backends):
                raise ValueError(
                    "partitioned mode needs one global-ID map per cluster"
                )
            if self.centroids is not None and self.centroids.shape[0] != len(
                self.backends
            ):
                raise ValueError("need one routing centroid per cluster")
            if self.cluster_shard is None:
                self.cluster_shard = np.arange(len(self.backends), dtype=np.int64)
            else:
                self.cluster_shard = np.asarray(
                    self.cluster_shard, dtype=np.int64
                )
            if self.cluster_shard.shape != (len(self.backends),):
                raise ValueError("need one owning shard per cluster")
            if self.num_devices is None:
                self.num_devices = int(self.cluster_shard.max()) + 1
            if self.cluster_shard.min() < 0 or (
                self.cluster_shard.max() >= self.num_devices
            ):
                raise ValueError(
                    f"cluster_shard values must lie in [0, {self.num_devices})"
                )
        elif self.cluster_shard is not None or self.num_devices is not None:
            raise ValueError(
                "cluster placement is a partitioned-mode concept"
            )

    @property
    def num_shards(self) -> int:
        """Size of the device pool the frontend books timing on."""
        if self.mode == PARTITIONED:
            return self.num_devices
        return len(self.backends)

    @property
    def num_clusters(self) -> int:
        """IVF clusters in a partitioned pool (= backends; replicated
        pools have one "cluster" per replica, the full corpus)."""
        return len(self.backends)

    def add_replica(self) -> int:
        """Grow a replicated pool by one shard; returns the new count.

        Replicas share the corpus index and platform model (the models
        are stateless across ``simulate`` calls), so a grown pool
        serves bit-identical results — per-replica *occupancy* lives in
        the frontend's :class:`~repro.serving.device.ShardDevice`
        timelines.  This is the autoscaler's scale-up primitive;
        partitioned pools grow capacity by *rebalancing* instead (each
        cluster owns a distinct sub-corpus).
        """
        if self.mode != REPLICATED:
            raise ValueError("only replicated pools can add replicas")
        self.backends.append(self.backends[0])
        return self.num_shards

    def remove_replica(self) -> int:
        """Shrink a replicated pool by one shard; returns the new count.

        The symmetric scale-down primitive to :meth:`add_replica`:
        the tail replica leaves the routing rotation.  Shared-index
        accounting: replicas hold references to one index/backend
        object, so dropping the tail reference frees nothing while any
        replica remains and the survivors keep serving bit-identical
        results.  Draining is the caller's concern — the frontend keeps
        the departed replica's device timeline until its in-flight
        batches finish; the router only stops routing to it.
        """
        if self.mode != REPLICATED:
            raise ValueError("only replicated pools can remove replicas")
        if len(self.backends) <= 1:
            raise ValueError("cannot remove the last replica")
        self.backends.pop()
        return self.num_shards

    def reassign_cluster(self, cluster: int, shard: int) -> None:
        """Atomically hand ``cluster`` to ``shard``.

        The commit point of a migration: batches dispatched from this
        moment on book the cluster's work on the new device.  Results
        are unaffected — the cluster's index and centroid do not move,
        only which device serves it.
        """
        if self.mode != PARTITIONED:
            raise ValueError("only partitioned pools place clusters")
        if not 0 <= cluster < self.num_clusters:
            raise ValueError(f"no such cluster {cluster}")
        if not 0 <= shard < self.num_devices:
            raise ValueError(f"no such shard device {shard}")
        self.cluster_shard[cluster] = shard

    def search_on(
        self, cluster: int, queries: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray, SimResult]:
        """Serve a batch on one backend; IDs come back in corpus numbering."""
        ids, dists, result = self.backends[cluster].search_batch(queries, k)
        if self.global_ids is not None:
            local = self.global_ids[cluster]
            ids = np.where(ids >= 0, local[np.clip(ids, 0, None)], -1)
        return ids, dists, result

    def probe(self, queries: np.ndarray, nprobe: int) -> np.ndarray:
        """Route each query to its ``nprobe`` nearest clusters.

        Returns a ``(batch, nprobe)`` array of cluster indices, ordered
        by ascending centroid distance (stable ties), one row per
        query.  Requires a partitioned router built with centroids.
        """
        if self.mode != PARTITIONED or self.centroids is None:
            raise ValueError(
                "selective probing needs a partitioned router with centroids"
            )
        if not 1 <= nprobe <= self.num_clusters:
            raise ValueError(
                f"nprobe must be in [1, {self.num_clusters}], got {nprobe}"
            )
        dmat = pairwise_distances(
            np.atleast_2d(queries), self.centroids, DistanceMetric.EUCLIDEAN
        )
        return np.argsort(dmat, axis=1, kind="stable")[:, :nprobe]

    def search_selected(
        self, cluster: int, subbatch: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray, SimResult]:
        """Serve a probed sub-batch on one cluster (corpus-ID results).

        The selective-probing leg of :meth:`search_probed`; results are
        identical to :meth:`search_on` because per-query searches are
        independent of batch composition — only the *timing* (the
        returned :class:`~repro.sim.stats.SimResult`) reflects the
        sub-batch size.
        """
        return self.search_on(cluster, subbatch, k)

    def search_probed(
        self, queries: np.ndarray, k: int, nprobe: int | None
    ) -> tuple[np.ndarray, np.ndarray, list[ShardJob]]:
        """Fan a batch out across clusters and merge the top-k lists.

        With ``nprobe=None`` every query fans out to every cluster (the
        broadcast join); with an integer ``nprobe`` each query goes
        only to its ``nprobe`` nearest clusters.  Either way each
        cluster serves one sub-batch holding exactly the queries routed
        to it, and partial top-k lists merge under per-query cluster
        masks (rows a query did not probe stay ``-1``/``inf`` padded,
        which :func:`repro.ann.search.merge_topk` skips) — so
        ``nprobe = num_clusters`` is bit-identical to the broadcast.
        Returns the merged ``(ids, dists)`` plus one :class:`ShardJob`
        per served cluster, tagged with the shard device that owns the
        cluster *now* (mid-migration, still the source), for the
        frontend's device timelines.
        """
        queries = np.atleast_2d(queries)
        assignment = None
        if nprobe is not None:
            assignment = self.probe(queries, nprobe)
        batch = queries.shape[0]
        per_ids: list[np.ndarray] = []
        per_dists: list[np.ndarray] = []
        jobs: list[ShardJob] = []
        cluster_shard = (
            self.cluster_shard
            if self.cluster_shard is not None
            else np.arange(self.num_clusters)
        )
        for cluster in range(self.num_clusters):
            if assignment is None:
                rows = np.arange(batch)
            else:
                rows = np.flatnonzero((assignment == cluster).any(axis=1))
            # Masked per-cluster candidate block: unprobed rows stay padded.
            ids = np.full((batch, k), -1, dtype=np.int64)
            dists = np.full((batch, k), np.inf, dtype=np.float64)
            if rows.size:
                sub_ids, sub_dists, result = self.search_selected(
                    cluster, queries[rows], k
                )
                ids[rows, : sub_ids.shape[1]] = sub_ids
                dists[rows, : sub_dists.shape[1]] = sub_dists
                jobs.append(
                    ShardJob(
                        shard=int(cluster_shard[cluster]),
                        rows=rows,
                        result=result,
                        cluster=cluster,
                    )
                )
            per_ids.append(ids)
            per_dists.append(dists)
        merged_ids, merged_dists = merge_topk(per_ids, per_dists, k)
        return merged_ids, merged_dists, jobs

    def search_all(
        self, queries: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray, list[SimResult]]:
        """Broadcast a batch to every backend and merge the top-k lists.

        The offline convenience path (parity checks, recall sweeps):
        one full-batch search per replica/cluster, no device-pool
        bookkeeping.  The frontend's serving path is
        :meth:`search_probed`, which the broadcast here must agree
        with bit for bit.
        """
        per_ids: list[np.ndarray] = []
        per_dists: list[np.ndarray] = []
        results: list[SimResult] = []
        for cluster in range(len(self.backends)):
            ids, dists, result = self.search_on(cluster, queries, k)
            per_ids.append(ids)
            per_dists.append(dists)
            results.append(result)
        merged_ids, merged_dists = merge_topk(per_ids, per_dists, k)
        return merged_ids, merged_dists, results


#: Content-keyed cache of built router artifacts (indexes, k-means
#: splits, backends).  Building an HNSW graph over even a small corpus
#: costs seconds; benchmarks and tests rebuild byte-identical routers
#: over and over.  Everything cached here is *immutable under serving*:
#: the per-cluster indexes, centroids and global-ID maps never change
#: after construction (rebalancing moves ownership, not data), and the
#: backends are already shared across replicas within one router.  The
#: mutable parts of a router — the backends *list* (add/remove_replica)
#: and ``cluster_shard`` (reassign_cluster) — are built fresh per call.
_build_cache: dict[tuple, tuple] = {}  # repro-lint: disable=DET005
_BUILD_CACHE_LIMIT = 32


def clear_router_cache() -> None:
    """Drop all cached router build artifacts (frees their indexes)."""
    _build_cache.clear()


def _corpus_digest(vectors: np.ndarray) -> tuple:
    import hashlib

    arr = np.ascontiguousarray(vectors)
    return (
        hashlib.sha256(arr.tobytes()).hexdigest(),
        arr.shape,
        str(arr.dtype),
    )


def build_router(
    vectors: np.ndarray,
    num_shards: int,
    config: NDSearchConfig,
    mode: str = REPLICATED,
    platform: str = "ndsearch",
    hnsw_params: HNSWParams | None = None,
    metric=None,
    ef: int | None = None,
    seed: int = 0,
    dataset: str = "synthetic",
    clusters_per_shard: int = 1,
) -> ShardRouter:
    """Construct a shard router over a corpus.

    Replicated mode builds the index once and shares it across the
    shard backends (each backend still gets its own device model with
    the per-shard :meth:`~repro.core.config.NDSearchConfig.shard`
    geometry).  Partitioned mode k-means-splits the corpus into
    ``num_shards * clusters_per_shard`` clusters, builds one index per
    cluster, and places clusters across the device pool round-robin
    (``clusters_per_shard=1`` is the classic one-cluster-per-device
    IVF layout; more clusters per shard gives the rebalancer migration
    granularity).

    Construction artifacts are memoized by content (corpus digest +
    every build parameter), so repeated builds of the same deployment —
    benchmark rounds, parity legs, sweep rows — skip the index/k-means
    work and return a fresh router over shared immutable artifacts.
    """
    if mode not in SHARD_MODES:
        raise ValueError(f"unknown shard mode {mode!r}")
    if clusters_per_shard < 1:
        raise ValueError("clusters_per_shard must be >= 1")
    if clusters_per_shard > 1 and mode != PARTITIONED:
        raise ValueError("clusters_per_shard is a partitioned-mode knob")
    params = hnsw_params or HNSWParams(M=8, ef_construction=48)
    try:
        shard_config = config.shard(num_shards)
    except ValueError:
        # Geometry does not divide evenly: deploy a pool of full-size
        # devices instead (scale-out rather than scale-split).
        shard_config = config
    kwargs = {"ef": ef, "dataset": dataset}
    if metric is not None:
        metric_kwargs = {"metric": metric}
    else:
        metric_kwargs = {}

    # Everything that shapes the built artifacts participates in the
    # key (shard_config folds in both `config` and `num_shards`).
    cache_key = (
        _corpus_digest(vectors),
        mode, platform, repr(params), repr(metric), ef, seed, dataset,
        num_shards, clusters_per_shard, repr(shard_config),
    )
    cached = _build_cache.get(cache_key)

    if mode == REPLICATED:
        if cached is not None:
            (backend,) = cached
        else:
            index = HNSWIndex(vectors, params, **metric_kwargs)
            # The platform models are stateless across simulate calls
            # (SearSSD resets its fault stream per batch), so the
            # replicas share one backend object: identical results and
            # timing, one graph reorder/placement instead of N.
            # Per-shard *occupancy* lives in the frontend's ShardDevice
            # pipelines, not here.
            backend = make_backend(
                platform, index, vectors, shard_config, **kwargs
            )
            _remember(cache_key, (backend,))
        return ShardRouter(backends=[backend] * num_shards, mode=REPLICATED)

    if cached is not None:
        backends_t, global_ids_t, centroids = cached
        backends = list(backends_t)
        global_ids = list(global_ids_t)
    else:
        num_clusters = num_shards * clusters_per_shard
        if num_clusters > vectors.shape[0]:
            raise ValueError("more clusters than corpus vectors")
        if num_clusters == 1:
            assignment = np.zeros(vectors.shape[0], dtype=np.int64)
            centroids = vectors.mean(axis=0, keepdims=True).astype(np.float32)
        else:
            centroids, assignment = kmeans(vectors, num_clusters, seed=seed)
        backends = []
        global_ids = []
        for cluster in range(num_clusters):
            members = np.flatnonzero(assignment == cluster).astype(np.int64)
            if members.size == 0:
                raise ValueError(
                    f"k-means left cluster {cluster} empty; use fewer clusters"
                )
            sub = np.ascontiguousarray(vectors[members])
            index = HNSWIndex(sub, params, **metric_kwargs)
            backends.append(
                make_backend(platform, index, sub, shard_config, **kwargs)
            )
            global_ids.append(members)
        _remember(cache_key, (tuple(backends), tuple(global_ids), centroids))
    return ShardRouter(
        backends=backends,
        mode=PARTITIONED,
        global_ids=global_ids,
        centroids=centroids,
        cluster_shard=np.arange(len(backends), dtype=np.int64) % num_shards,
        num_devices=num_shards,
    )


def _remember(key: tuple, value: tuple) -> None:
    if len(_build_cache) >= _BUILD_CACHE_LIMIT:
        _build_cache.pop(next(iter(_build_cache)))
    _build_cache[key] = value
