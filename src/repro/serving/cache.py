"""Result caching: exploiting query popularity skew.

Production retrieval traffic is heavily skewed — a small head of
queries accounts for most requests (the Zipfian model in
:mod:`repro.serving.arrivals`).  A small host-side LRU over final
top-k results answers repeats at DRAM latency, shaving whole searches
off the SearSSD devices.  The same :class:`LRUCache` primitive also
serves as an entry-point cache (store the previous best vertex for a
query region and seed the next beam search from it) — the result cache
is the variant wired into the frontend because its accounting is
directly comparable across backends.

Capacity 0 disables caching (every lookup misses, nothing is stored),
which gives experiments a clean no-cache baseline without branching.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

import numpy as np


class LRUCache:
    """A counting LRU map (ordered-dict based, O(1) get/put)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> object | None:
        """Look up ``key``, refreshing its recency; counts hit or miss."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return None

    def put(self, key: Hashable, value: object) -> None:
        """Insert/refresh ``key``, evicting the LRU entry when full."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class ResultCache(LRUCache):
    """LRU over final top-k results, keyed by ``(query_id, k)``.

    Keys are pool query IDs, not raw vectors: the stream draws repeats
    from a finite query pool, exactly how production caches key on a
    canonicalised query.  Arrays are copied on store *and* on lookup,
    so neither the producer nor a response consumer can mutate a
    cached entry.
    """

    def lookup(self, query_id: int, k: int) -> tuple[np.ndarray, np.ndarray] | None:
        value = self.get((query_id, k))
        if value is None:
            return None
        ids, dists = value
        return np.array(ids, copy=True), np.array(dists, copy=True)

    def store(
        self, query_id: int, k: int, ids: np.ndarray, dists: np.ndarray
    ) -> None:
        self.put((query_id, k), (np.array(ids, copy=True), np.array(dists, copy=True)))
