"""The unit of serving work: one query request and its lifecycle.

A request is born at its (simulated) arrival time, then either

* is **shed** by the admission controller (the system is over
  capacity),
* **hits** the result cache (answered immediately at cache latency),
* is **coalesced** onto an identical in-flight query: it piggybacks on
  the leader's batch and completes when the leader's results arrive —
  no second search is performed, or
* waits in the dynamic batcher, is dispatched inside a batch to one or
  more shard devices, and **completes** when its batch's results are
  back.

Every transition stamps a simulated-clock timestamp so the metrics
collector can decompose end-to-end latency into queueing wait and
service time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


#: Request outcomes.
PENDING = "pending"
COMPLETED = "completed"
CACHE_HIT = "cache_hit"
COALESCED = "coalesced"
SHED = "shed"


@dataclass
class Request:
    """One search request travelling through the serving frontend.

    ``query_id`` indexes the finite query pool (the unit of popularity
    skew and the cache key); the frontend resolves it to the actual
    query vector at dispatch time.
    """

    request_id: int
    query_id: int
    arrival_s: float
    k: int = 10

    priority: int = 0
    """Admission/scheduling class; higher values are more urgent.
    Priority-aware admission sheds the lowest class first, and the
    ``slo`` batch policy closes batches for the most urgent member."""

    deadline_s: float | None = None
    """Absolute completion deadline on the simulated clock (``None`` =
    best-effort).  The ``slo`` batch policy closes a batch before its
    most urgent member's predicted completion would breach this."""

    batched_s: float | None = None
    """When the batch containing this request closed."""

    start_s: float | None = None
    """When a shard device began serving the batch."""

    completion_s: float | None = None
    """When results were available to the client."""

    outcome: str = PENDING
    result_ids: np.ndarray | None = field(default=None, repr=False)
    result_dists: np.ndarray | None = field(default=None, repr=False)

    @property
    def latency_s(self) -> float:
        """End-to-end latency (arrival to completion)."""
        if self.completion_s is None:
            raise ValueError(f"request {self.request_id} has not completed")
        return self.completion_s - self.arrival_s

    @property
    def wait_s(self) -> float:
        """Time spent queued in the batcher before the batch closed."""
        if self.batched_s is None:
            return 0.0
        return self.batched_s - self.arrival_s

    @property
    def done(self) -> bool:
        return self.outcome in (COMPLETED, CACHE_HIT, COALESCED)

    @property
    def slo_met(self) -> bool | None:
        """Whether the deadline was met; ``None`` when no deadline set.

        A shed request with a deadline counts as a miss (the client
        never got an answer, let alone a timely one).
        """
        if self.deadline_s is None:
            return None
        if not self.done or self.completion_s is None:
            return False
        return self.completion_s <= self.deadline_s
