"""The serving digital twin: incremental re-simulation with what-if forks.

A :class:`ServingTwin` shadows a live deployment on the simulated
clock: arrivals are fed in as they appear (:meth:`ServingTwin.feed`),
the base simulation advances window by window
(:meth:`ServingTwin.advance`), and every closed window is checkpointed
as a deterministic :class:`~repro.sim.snapshot.Snapshot`.  What-if
queries — "replay the last K windows with ``nprobe=3`` / +2 replicas /
rebalancing on" — fork from the newest checkpoint whose prefix the
change cannot affect and re-simulate only the changed suffix
(:meth:`ServingTwin.whatif`), so a question about the recent past costs
O(changed suffix), not O(full run).

Answers are memoized in a content-addressed cache
(:class:`TwinCache`): the key hashes the fork's canonical
configuration (delta included), the restored snapshot's state digest,
its window index and the replayed arrival suffix — the full causal
input of the answer.  Repeated and overlapping queries hit instead of
re-simulating; the determinism contract (a restored run is
byte-identical to a from-scratch run, pinned by the parity suite)
is what makes serving a cached report honest.

Config deltas only steer *future* decisions (routing, batching,
scaling), never recorded history, so any delta may fork from any
checkpoint; ``last_windows`` chooses how much history the caller wants
re-simulated under the new config.  A what-if with no delta replaying
from the last checkpoint must reproduce the from-scratch report byte
for byte — the self-test the CI twin step asserts.

Observability rides the span tracer only (``twin.checkpoint`` /
``twin.restore`` / ``twin.cache_hit`` instants in the ``twin``
category): twin bookkeeping must never leak into the base run's
windowed metrics, or the null what-if would stop being byte-identical.
The aggregate counters land post-hoc on ``ServingReport.twin`` when
:meth:`ServingTwin.finish` closes the base run.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
from typing import Callable

import numpy as np

from repro.obs.trace import NullTracer, Tracer
from repro.serving.frontend import ServingConfig, ServingFrontend
from repro.serving.metrics import ServingReport
from repro.serving.rebalance import RebalancePolicy, Rebalancer
from repro.serving.request import Request
from repro.serving.sharding import REPLICATED, ShardRouter
from repro.sim.events import EpochTick
from repro.sim.snapshot import Snapshot


def config_digest(config: ServingConfig) -> str:
    """Canonical hash of a serving configuration.

    ``ServingConfig`` and every nested policy are dataclasses whose
    generated ``repr`` is a pure function of their field values, so the
    repr is a canonical serialization.
    """
    return hashlib.sha256(repr(config).encode()).hexdigest()


def _suffix_digest(requests: list[Request]) -> str:
    """Hash of an arrival suffix's *identity* (not its outcomes)."""
    h = hashlib.sha256()
    for r in requests:
        h.update(
            repr(
                (r.request_id, r.query_id, r.arrival_s, r.k, r.priority,
                 r.deadline_s)
            ).encode()
        )
    return h.hexdigest()


class TwinCache:
    """Content-addressed memo of what-if answers.

    Keys are :meth:`key` digests — (config, snapshot state, window
    index, arrival suffix) — and values are ``ServingReport.to_dict``
    payloads: plain data, safe to hold across forks.
    """

    def __init__(self) -> None:
        self._entries: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key(
        config: ServingConfig,
        snapshot_digest: str,
        window_index: int,
        suffix: list[Request],
    ) -> str:
        h = hashlib.sha256()
        h.update(config_digest(config).encode())
        h.update(snapshot_digest.encode())
        h.update(repr(window_index).encode())
        h.update(_suffix_digest(suffix).encode())
        return h.hexdigest()

    def lookup(self, key: str) -> dict | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(self, key: str, report: ServingReport) -> None:
        self._entries[key] = report.to_dict()


@dataclasses.dataclass(frozen=True)
class Checkpoint:
    """One closed window boundary: its snapshot plus how much of the
    master arrival log the base run had consumed when it was taken."""

    index: int
    time: float
    snapshot: Snapshot
    consumed: int


class ServingTwin:
    """Incremental re-simulation over a router factory.

    ``router_factory`` must build an *equivalent* router on every call
    (same corpus, mode, placement); :func:`~repro.serving.sharding.build_router`
    memoizes construction artifacts by content, so repeated calls share
    the immutable indexes and only rebuild the mutable wrappers — which
    is exactly what a fork needs (what-ifs mutate replica counts and
    cluster placement).
    """

    def __init__(
        self,
        router_factory: Callable[[], ShardRouter],
        config: ServingConfig,
        query_pool: np.ndarray,
        window_s: float,
        tracer: Tracer | None = None,
        calibrate_k: int | None = None,
    ) -> None:
        if window_s <= 0.0:
            raise ValueError(f"window_s must be positive, got {window_s!r}")
        self.router_factory = router_factory
        self.config = config
        self.window_s = window_s
        self.tracer: Tracer = tracer if tracer is not None else NullTracer()
        self._pool = np.ascontiguousarray(query_pool, dtype=np.float32)
        self._calibrate_k = calibrate_k
        self.frontend = ServingFrontend(
            router_factory(), config, tracer=tracer
        )
        self.frontend.stream_begin(self._pool, calibrate_k=calibrate_k)
        self.checkpoints: list[Checkpoint] = []
        self.cache = TwinCache()
        self._master_log: list[Request] = []
        self._next_window = 1
        self.restores = 0
        self._finished = False

    # ---- the base (live) simulation -------------------------------------
    def feed(self, requests: list[Request]) -> None:
        """Ingest newly observed arrivals (time-ordered append)."""
        ordered = sorted(requests, key=lambda r: r.arrival_s)
        self.frontend.stream_extend(ordered)
        self._master_log.extend(ordered)

    def advance(self, to_time: float) -> int:
        """Run the base simulation forward, checkpointing every crossed
        ``window_s`` boundary; returns the number of checkpoints taken."""
        taken = 0
        while self._next_window * self.window_s <= to_time:
            boundary = self._next_window * self.window_s
            self.frontend.stream_step(boundary)
            snapshot = self.frontend.snapshot()
            self.checkpoints.append(
                Checkpoint(
                    index=self._next_window,
                    time=boundary,
                    snapshot=snapshot,
                    consumed=len(self._master_log),
                )
            )
            if self.tracer.enabled:
                self.tracer.instant(
                    "twin.checkpoint", "twin", boundary,
                    args={
                        "window": self._next_window,
                        "digest": snapshot.digest[:12],
                    },
                )
            self._next_window += 1
            taken += 1
        return taken

    def finish(self) -> ServingReport:
        """Close the base run; its report carries the twin counters."""
        report = self.frontend.stream_finish()
        self._finished = True
        report.twin = self.stats()
        return report

    def stats(self) -> dict:
        """The twin's own bookkeeping (``ServingReport.twin``)."""
        return {
            "window_s": self.window_s,
            "windows_simulated": self._next_window - 1,
            "checkpoints": len(self.checkpoints),
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "restores": self.restores,
        }

    # ---- what-if forks ---------------------------------------------------
    def whatif(
        self,
        last_windows: int = 1,
        nprobe: int | None | str = "keep",
        add_replicas: int = 0,
        rebalance: RebalancePolicy | None = None,
    ) -> ServingReport:
        """Replay the last ``last_windows`` windows (plus the tail after
        the final checkpoint) under a config delta; returns the fork's
        report.

        Deltas: ``nprobe`` re-routes future partitioned dispatches
        (pass ``None`` for broadcast; the default ``"keep"`` leaves the
        base setting); ``add_replicas`` grows the replicated pool
        (static pools only — an autoscaler owns the replica count);
        ``rebalance`` switches hot-cluster migration on.  With no delta
        and ``last_windows=1`` the answer is byte-identical to the
        from-scratch result — re-simulating an unchanged suffix of a
        deterministic run proves the checkpoint machinery, and the
        cache memoizes it like any other query.

        Asking for more history than there are checkpoints falls back
        to a full from-scratch replay (window index 0, no restore).
        """
        if last_windows < 1:
            raise ValueError(f"last_windows must be >= 1, got {last_windows}")
        fork_config = self.config
        if nprobe != "keep":
            fork_config = dataclasses.replace(fork_config, nprobe=nprobe)
        if rebalance is not None:
            fork_config = dataclasses.replace(fork_config, rebalance=rebalance)
        if add_replicas:
            if add_replicas < 0:
                raise ValueError("add_replicas must be >= 0")
            if self.config.autoscale is not None:
                raise ValueError(
                    "add_replicas conflicts with an autoscaler: the "
                    "autoscaler owns the replica count"
                )
        # The newest checkpoint that still leaves >= last_windows of
        # history to replay; None = replay everything from scratch.
        checkpoint: Checkpoint | None = None
        available = len(self.checkpoints)
        if available >= last_windows:
            checkpoint = self.checkpoints[available - last_windows]
        snapshot_digest = (
            checkpoint.snapshot.digest if checkpoint is not None else "scratch"
        )
        window_index = checkpoint.index if checkpoint is not None else 0
        consumed = checkpoint.consumed if checkpoint is not None else 0
        suffix = self._master_log[consumed:]
        key = TwinCache.key(
            _delta_key_config(fork_config, add_replicas),
            snapshot_digest, window_index, suffix,
        )
        cached = self.cache.lookup(key)
        now = self.frontend._loop.now if not self._finished else 0.0
        if cached is not None:
            if self.tracer.enabled:
                self.tracer.instant(
                    "twin.cache_hit", "twin", now,
                    args={"window": window_index, "key": key[:12]},
                )
            return ServingReport.from_dict(copy.deepcopy(cached))
        fork = ServingFrontend(self.router_factory(), fork_config)
        if checkpoint is not None:
            fork.restore(checkpoint.snapshot, self._pool)
            self.restores += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    "twin.restore", "twin", now,
                    args={
                        "window": window_index,
                        "digest": checkpoint.snapshot.digest[:12],
                    },
                )
        else:
            fork.stream_begin(self._pool, calibrate_k=self._calibrate_k)
        self._apply_structural_deltas(fork, fork_config, add_replicas)
        # Forks replay their own deep copies: requests are mutated in
        # place during serving, and the master log's outcomes belong to
        # the base run.
        fork.stream_extend(copy.deepcopy(suffix))
        report = fork.stream_finish()
        self.cache.store(key, report)
        return report

    def _apply_structural_deltas(
        self,
        fork: ServingFrontend,
        fork_config: ServingConfig,
        add_replicas: int,
    ) -> None:
        """Mutations a config replace cannot express: pool growth and a
        rebalancer the restored snapshot did not carry."""
        if add_replicas:
            if fork.router.mode != REPLICATED:
                raise ValueError(
                    "add_replicas requires a replicated router"
                )
            new_active = fork._active + add_replicas
            fork._grow_pool(new_active)
            fork._active = new_active
        if fork_config.rebalance is not None and fork.rebalancer is None:
            fork.rebalancer = Rebalancer(
                fork_config.rebalance,
                fork.router.num_shards,
                fork.router.num_clusters,
            )
            if fork._epoch_armed:
                # The base run armed its epoch grid long ago, so the
                # first-arrival hook will not fire again — arm the new
                # controller here and start its tick chain.
                fork.rebalancer.arm(
                    fork._loop.now, [d.busy_s for d in fork.devices]
                )
                fork._loop.schedule(
                    EpochTick(time=fork.rebalancer.epoch_end)
                )


def _delta_key_config(
    fork_config: ServingConfig, add_replicas: int
) -> ServingConfig:
    """The config object the cache key hashes.

    ``add_replicas`` is structural (not a ``ServingConfig`` field), so
    it is folded into the key via the admission-capacity-preserving
    trick of hashing a tuple — here simply by hashing a wrapper repr.
    """
    if not add_replicas:
        return fork_config
    return _ReplicaDelta(fork_config, add_replicas)  # type: ignore[return-value]


@dataclasses.dataclass(frozen=True)
class _ReplicaDelta:
    """Repr-stable wrapper folding ``add_replicas`` into a cache key."""

    config: ServingConfig
    add_replicas: int
