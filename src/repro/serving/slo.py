"""Drain-time prediction: the service model behind the ``slo`` policy.

Deadline-driven batch closing needs an answer to "if this batch closed
*now*, when would its results land?" before the batch is searched.
Two ingredients provide it:

* the per-resource FIFO state the :class:`~repro.serving.device.ShardDevice`
  pipelines already book (when each stage of the device frees up), and
* a **calibrated per-size service model**: how long a batch of ``n``
  queries occupies each pipeline resource.

:class:`ServiceModel` learns the second ingredient online.  Every
dispatched batch reports its collapsed stage chain
(:meth:`~repro.sim.stats.SimResult.pipeline_stages`); the model fits an
affine ``duration(n) = a + b * n`` per resource by least squares over
everything observed so far.  Affine is the right shape here: the
platform models' batch makespans decompose into per-batch setup plus
per-query work, which is also why batching wins in Figs. 13/19.

Until the first batch has been observed the model is uncalibrated and
:meth:`estimate_chain` returns ``None`` — the ``slo`` batcher falls
back to its ``max_wait_s`` cap, so the first batches of a run both
bound staleness and calibrate the predictor.
"""

from __future__ import annotations


class ServiceModel:
    """Online per-resource affine fit of batch service time vs size.

    Observations arrive as ``(batch_size, stage_chain)`` pairs; the
    model keeps least-squares accumulators per resource and remembers
    the longest chain's resource order so estimates replay a realistic
    pipeline shape.
    """

    def __init__(self) -> None:
        # resource -> [count, sum_n, sum_n2, sum_d, sum_nd]
        self._acc: dict[str, list[float]] = {}
        self._chain: list[str] = []
        self.observations = 0
        # resource -> (a, b) affine coefficients, derived lazily from
        # the accumulators and invalidated by observe().  The slo
        # batcher estimates on every queue event but only observes once
        # per served batch, so the fit is reused many times over.
        self._fits: dict[str, tuple[float, float]] = {}

    @property
    def calibrated(self) -> bool:
        return self.observations > 0

    @property
    def entry_resource(self) -> str | None:
        """First resource of the learned stage chain (``None`` until
        calibrated) — where non-query work like a cluster migration
        should queue to contend with batches."""
        return self._chain[0] if self._chain else None

    def observe(
        self, batch_size: int, stages: list[tuple[str, float]]
    ) -> None:
        """Record one served batch's collapsed ``(resource, duration)`` chain."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        n = float(batch_size)
        for resource, duration in stages:
            acc = self._acc.setdefault(resource, [0.0] * 5)
            acc[0] += 1.0
            acc[1] += n
            acc[2] += n * n
            acc[3] += duration
            acc[4] += n * duration
        if len(stages) >= len(self._chain):
            self._chain = [resource for resource, _ in stages]
        self.observations += 1
        self._fits.clear()

    def _estimate_resource(self, resource: str, n: float) -> float:
        fit = self._fits.get(resource)
        if fit is None:
            count, sum_n, sum_n2, sum_d, sum_nd = self._acc[resource]
            var = count * sum_n2 - sum_n * sum_n
            if var > 1e-12 * max(sum_n2, 1.0):
                # Affine least squares: duration = a + b * n.
                b = (count * sum_nd - sum_n * sum_d) / var
                a = (sum_d - b * sum_n) / count
                fit = ("affine", a, b)
            else:
                # One distinct size so far: scale the mean per-query
                # cost.  This over-predicts small batches (the setup
                # term is amortised as if it were per-query), which
                # errs toward closing early — the safe side for a
                # deadline policy.
                fit = ("scaled", sum_d / count, sum_n / count)
            self._fits[resource] = fit
        kind, c1, c2 = fit
        if kind == "affine":
            estimate = c1 + c2 * n
        else:
            estimate = c1 * (n / c2)
        return max(estimate, 0.0)

    def estimate_chain(
        self, batch_size: int
    ) -> list[tuple[str, float]] | None:
        """Predicted ``(resource, duration)`` chain for a batch of ``n``.

        ``None`` until calibrated.  The chain follows the longest
        observed resource order, so a :class:`ShardDevice` dry-run of
        it queues against the same FIFOs real batches occupy.
        """
        if not self.calibrated:
            return None
        n = float(batch_size)
        return [
            (resource, self._estimate_resource(resource, n))
            for resource in self._chain
        ]

    def estimate(self, batch_size: int) -> float | None:
        """Predicted unloaded makespan (the chain summed); ``None`` until
        calibrated."""
        chain = self.estimate_chain(batch_size)
        if chain is None:
            return None
        return sum(duration for _, duration in chain)
