"""Search backends: what actually serves a dispatched batch.

The frontend is backend-agnostic: anything implementing
``search_batch(queries, k) -> (ids, dists, SimResult)`` can sit behind
the shard router.  Since the platform layer unified every device model
behind :class:`repro.platform.PlatformModel`, a single adapter covers
them all:

* :class:`PlatformBackend` — a functional index (producing results and
  access traces) paired with any registered platform model (pricing the
  traces).  The *same* frontend, batch policy, cache and arrival stream
  therefore produce apples-to-apples serving comparisons across
  NDSearch, the host baselines and the DeepStore variants (the online
  analogue of Fig. 13).

Service time is the model's simulated batch makespan — the serving
layer advances simulated time by it, it never waits on the wall clock.
The returned :class:`~repro.sim.stats.SimResult` also carries the phase
timeline the pipelined shard devices replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro import platform as platform_registry
from repro.baselines.common import DatasetProfile
from repro.core.config import NDSearchConfig
from repro.platform.base import PlatformModel
from repro.sim.stats import SimResult


class SearchBackend(Protocol):
    """One device (or device model) serving whole batches."""

    name: str

    def search_batch(
        self, queries: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray, SimResult]:
        """Search a (b, d) batch; returns (ids, dists, SimResult)."""
        ...


@dataclass
class PlatformBackend:
    """A host index + platform timing model as a serving backend.

    The index produces results and access traces; the platform model
    prices the traces.  ``index`` is any of the :mod:`repro.ann`
    indexes (their ``search_batch`` returns traces); ``model`` is any
    :class:`~repro.platform.PlatformModel`, typically from
    :func:`repro.platform.get`.
    """

    index: object
    model: PlatformModel
    profile: DatasetProfile
    ef: int | None = None
    algorithm: str = "hnsw"
    dataset: str = "synthetic"
    name: str = field(default="")
    _memo: dict = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.model.name

    def search_batch(
        self, queries: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray, SimResult]:
        # Per-query memo over the functional search.  Every index runs
        # queries through an independent per-query loop, so a row's
        # (ids, dists, trace) never depends on which batch it arrived
        # in — only its vector bytes and k.  Serving workloads draw
        # from a finite Zipfian query pool, so repeats dominate; the
        # batch's *timing* is still simulated fresh below because the
        # makespan does depend on batch composition.  Returning the
        # same trace object for a repeated query also lets the timing
        # models reuse their per-trace derivations (remap, speculative
        # sets, compiled replay).
        queries = np.ascontiguousarray(queries)
        n = queries.shape[0]
        memo = self._memo
        keys = [(queries[i].tobytes(), k) for i in range(n)]
        miss = [i for i, key in enumerate(keys) if key not in memo]
        if miss:
            sub_ids, sub_dists, sub_traces = self.index.search_batch(
                np.ascontiguousarray(queries[miss]), k, ef=self.ef
            )
            for j, i in enumerate(miss):
                if len(memo) >= 4096:
                    memo.pop(next(iter(memo)))
                memo[keys[i]] = (
                    sub_ids[j].copy(), sub_dists[j].copy(), sub_traces[j],
                )
        ids = np.empty((n, k), dtype=np.int64)
        dists = np.empty((n, k), dtype=np.float64)
        traces = []
        for i, key in enumerate(keys):
            row_ids, row_dists, trace = memo[key]
            ids[i] = row_ids
            dists[i] = row_dists
            traces.append(trace)
        result = self.model.simulate(
            traces, self.profile, algorithm=self.algorithm, dataset=self.dataset
        )
        return ids, dists, result


def dataset_profile(
    vectors: np.ndarray, index: object, name: str = "synthetic"
) -> DatasetProfile:
    """Profile a corpus + index for the platform models' capacity checks."""
    graph = index.base_graph()
    footprint = int(vectors.nbytes + graph.indptr.nbytes + graph.indices.nbytes)
    return DatasetProfile(
        name=name,
        num_vectors=int(vectors.shape[0]),
        dim=int(vectors.shape[1]),
        vector_bytes=int(vectors.shape[1] * vectors.itemsize),
        footprint_bytes=footprint,
    )


def make_backend(
    platform: str,
    index: object,
    vectors: np.ndarray,
    config: NDSearchConfig,
    ef: int | None = None,
    algorithm: str = "hnsw",
    dataset: str = "synthetic",
) -> SearchBackend:
    """Build a serving backend for one registered platform over an index."""
    model = platform_registry.get(platform, config, index=index)
    profile = dataset_profile(vectors, index, name=dataset)
    return PlatformBackend(
        index=index,
        model=model,
        profile=profile,
        ef=ef,
        algorithm=algorithm,
        dataset=dataset,
        name=platform,
    )
