"""Search backends: what actually serves a dispatched batch.

The frontend is backend-agnostic: anything implementing
``search_batch(queries, k) -> (ids, dists, SimResult)`` can sit behind
the shard router.  Two adapters cover the repo's platforms:

* :class:`NDSearchBackend` — wraps :class:`repro.core.NDSearch`
  (functional search + SearSSD timing simulation), the paper's system.
* :class:`BaselineBackend` — runs the functional search on a host
  index and replays the recorded traces on one of the baseline timing
  models (CPU / CPU-T / GPU / SmartSSD), so the *same* frontend, batch
  policy, cache and arrival stream produce apples-to-apples serving
  comparisons across platforms (the online analogue of Fig. 13).

Service time is the model's simulated batch makespan — the serving
layer advances simulated time by it, it never waits on the wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.baselines import CPUModel, GPUModel, SmartSSDModel
from repro.baselines.common import DatasetProfile
from repro.core.config import NDSearchConfig
from repro.core.ndsearch import NDSearch
from repro.sim.stats import SimResult

#: Baseline platforms the serving frontend can drive.
BASELINE_PLATFORMS = ("cpu", "cpu-t", "gpu", "smartssd")


class SearchBackend(Protocol):
    """One device (or device model) serving whole batches."""

    name: str

    def search_batch(
        self, queries: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray, SimResult]:
        """Search a (b, d) batch; returns (ids, dists, SimResult)."""
        ...


@dataclass
class NDSearchBackend:
    """An NDSearch system as a serving backend."""

    system: NDSearch
    ef: int | None = None
    dataset: str = "synthetic"
    name: str = "ndsearch"

    def search_batch(
        self, queries: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray, SimResult]:
        return self.system.search_batch(
            queries, k, ef=self.ef, dataset=self.dataset
        )


@dataclass
class BaselineBackend:
    """A host index + baseline timing model as a serving backend.

    The index produces results and access traces; the platform model
    prices the traces.  ``index`` is any of the :mod:`repro.ann`
    indexes (their ``search_batch`` returns traces).
    """

    index: object
    model: CPUModel | GPUModel | SmartSSDModel
    profile: DatasetProfile
    ef: int | None = None
    algorithm: str = "hnsw"
    name: str = field(default="")

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.model.platform

    def search_batch(
        self, queries: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray, SimResult]:
        ids, dists, traces = self.index.search_batch(queries, k, ef=self.ef)
        result = self.model.run_batch(traces, self.profile, self.algorithm)
        return ids, dists, result


def dataset_profile(
    vectors: np.ndarray, index: object, name: str = "synthetic"
) -> DatasetProfile:
    """Profile a corpus + index for the baseline models' capacity checks."""
    graph = index.base_graph()
    footprint = int(vectors.nbytes + graph.indptr.nbytes + graph.indices.nbytes)
    return DatasetProfile(
        name=name,
        num_vectors=int(vectors.shape[0]),
        dim=int(vectors.shape[1]),
        vector_bytes=int(vectors.shape[1] * vectors.itemsize),
        footprint_bytes=footprint,
    )


def make_backend(
    platform: str,
    index: object,
    vectors: np.ndarray,
    config: NDSearchConfig,
    ef: int | None = None,
    algorithm: str = "hnsw",
    dataset: str = "synthetic",
) -> SearchBackend:
    """Build a serving backend for one platform over a built index."""
    if platform == "ndsearch":
        system = NDSearch(index=index, config=config)
        return NDSearchBackend(system=system, ef=ef, dataset=dataset)
    profile = dataset_profile(vectors, index, name=dataset)
    if platform in ("cpu", "cpu-t"):
        model = CPUModel(
            timing=config.timing,
            host=config.host,
            terabyte_dram=(platform == "cpu-t"),
        )
    elif platform == "gpu":
        model = GPUModel(timing=config.timing, host=config.host)
    elif platform == "smartssd":
        model = SmartSSDModel(config=config)
    else:
        raise ValueError(
            f"unknown platform {platform!r}; expected 'ndsearch' or one of "
            f"{BASELINE_PLATFORMS}"
        )
    return BaselineBackend(
        index=index, model=model, profile=profile, ef=ef, algorithm=algorithm
    )
