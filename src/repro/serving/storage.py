"""Stateful flash under serving: each shard device gets a live SSD.

The platform timing models price a batch's storage work analytically —
the same batch always costs the same time.  Real NAND is stateful: every
page read disturbs its block-mates, hot blocks must be refreshed
(read + program + erase — a GC pause), refreshes relocate blocks and
wear them out, and a fraction of reads fail hard-decision LDPC and
stall on the soft decoder.  Under a Zipfian serving load these effects
concentrate exactly where the traffic does: hot clusters literally wear
out their blocks and their readers eat the refresh pauses.

:class:`FlashBackedStore` couples one
:class:`~repro.serving.device.ShardDevice` to a live
:class:`~repro.flash.ftl.FlashTranslationLayer`,
:class:`~repro.flash.ecc.BERModel` / :class:`~repro.flash.ecc.LDPCModel`
and :class:`~repro.flash.timing.FlashTiming`:

* IVF clusters are laid out across the device's planes at construction
  (block-granular, striped across (LUN, plane) pairs so multi-plane
  parallelism matches the paper's static mapping).
* Cluster reads translate through the FTL and accumulate read-disturb
  (:meth:`FlashTranslationLayer.record_reads`); blocks crossing
  ``read_disturb_threshold`` are returned to the frontend, which
  schedules a :class:`~repro.sim.events.FlashMaintenance` event and
  books the refresh latency on the device's stage FIFOs — GC pauses
  delay queries exactly like rebalance migrations.
* Rebalance migrations charge host programs (destination) and in-place
  erases (source) through the FTL, so erase counts and write
  amplification are honest.
* ECC retry storms (hard-decode failures falling back to the soft
  decoder) add per-read latency scaled by the cluster's plane BER.

Everything is opt-in via ``ServingConfig.flash``; with it unset the
serving stack never touches this module and stays byte-identical to the
pinned parity digests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.flash.ecc import BERModel, LDPCModel
from repro.flash.ftl import FlashTranslationLayer
from repro.flash.geometry import SSDGeometry
from repro.flash.timing import FlashTiming


@dataclass(frozen=True)
class FlashConfig:
    """Knobs for the per-device flash substrate (``ServingConfig.flash``).

    The default geometry is the benchmark-scale preset; the default
    disturb threshold matches the FTL's.  Serving sweeps lower the
    threshold so refreshes fire at benchmark request counts the way
    they would at production read volumes on the real threshold.
    """

    geometry: SSDGeometry = field(default_factory=SSDGeometry.scaled)
    timing: FlashTiming = field(default_factory=FlashTiming)
    read_disturb_threshold: int = 100_000
    reserved_per_plane: int = 2
    ecc_hard_failure_prob: float = 0.01
    mean_ber: float = 1e-6
    ber_sigma: float = 0.45
    seed: int = 1117
    """Base seed; each device derives its FTL/BER/LDPC streams from
    ``seed`` + its device index, so runs are seed-stable and devices
    are decorrelated."""


class FlashBackedStore:
    """Live flash state for one shard device.

    Owns the device's FTL, plane BER distribution and LDPC decoder, and
    the cluster → block layout.  The frontend drives it from the event
    handlers: reads accumulate disturb, due blocks come back as
    ``(lun, plane, logical_block)`` triples for the maintenance event,
    migrations program/erase through it.  All mutable flash state lives
    here (never in the router's cached immutable artifacts).
    """

    def __init__(self, config: FlashConfig, device_index: int) -> None:
        self.config = config
        self.device_index = device_index
        geometry = config.geometry
        self.geometry = geometry
        self.timing = config.timing
        self.ftl = FlashTranslationLayer(
            geometry,
            reserved_per_plane=config.reserved_per_plane,
            seed=config.seed + 31 * device_index,
            read_disturb_threshold=config.read_disturb_threshold,
        )
        self.ber = BERModel(
            n_planes=geometry.total_planes,
            mean_ber=config.mean_ber,
            sigma=config.ber_sigma,
            seed=config.seed + 97 * device_index,
        )
        self.ldpc = LDPCModel(
            hard_failure_prob=config.ecc_hard_failure_prob,
            seed=config.seed + 193 * device_index,
        )
        self._median_ber = float(np.median(self.ber.plane_ber))
        # Cluster layout: parallel arrays of (lun, plane, block) per
        # cluster plus a read-distribution cursor, block page counts
        # and owner map for refresh attribution.
        self._cluster_luns: dict[int, np.ndarray] = {}
        self._cluster_planes: dict[int, np.ndarray] = {}
        self._cluster_blocks: dict[int, np.ndarray] = {}
        self._cluster_cursor: dict[int, int] = {}
        self._cluster_ber_factor: dict[int, float] = {}
        self._block_pages: dict[tuple[int, int, int], int] = {}
        self._owner: dict[tuple[int, int, int], int] = {}
        self._pending: set[tuple[int, int, int]] = set()
        # Fresh allocation walks (lun, plane) pairs round-robin with a
        # per-plane next-block counter; released blocks are reused
        # FIFO before the cursor advances.
        self._next_plane = 0
        self._plane_next_block = np.zeros(
            (geometry.total_luns, geometry.planes_per_lun), dtype=np.int64
        )
        self._released: list[tuple[int, int, int]] = []
        # Counters (device-lifetime, folded into ServingReport.flash).
        self.page_reads = 0
        self.ecc_soft_decodes = 0
        self.refreshes = 0
        self.cluster_page_reads: dict[int, int] = {}
        self.cluster_refreshes: dict[int, int] = {}
        self.cluster_erases: dict[int, int] = {}

    # ---- layout ----------------------------------------------------------
    def pages_for(self, nbytes: int) -> int:
        """Pages needed to hold ``nbytes`` (at least one)."""
        page = self.geometry.page_size
        return max(1, -(-int(nbytes) // page))

    def has_cluster(self, cluster: int) -> bool:
        return cluster in self._cluster_blocks

    def _allocate_block(self) -> tuple[int, int, int]:
        """Next free (lun, plane, logical block), striped across planes."""
        if self._released:
            return self._released.pop(0)
        geometry = self.geometry
        n_planes = geometry.total_luns * geometry.planes_per_lun
        for _ in range(n_planes):
            flat = self._next_plane
            self._next_plane = (flat + 1) % n_planes
            lun, plane = divmod(flat, geometry.planes_per_lun)
            nxt = int(self._plane_next_block[lun, plane])
            if nxt < self.ftl.usable_blocks:
                self._plane_next_block[lun, plane] = nxt + 1
                return (lun, plane, nxt)
        raise RuntimeError(
            f"device {self.device_index}: flash capacity exhausted "
            f"({self.ftl.usable_blocks} blocks x {n_planes} planes)"
        )

    def ensure_cluster(self, cluster: int, nbytes: int) -> int:
        """Lay a cluster out over flash blocks; returns its page count.

        Idempotent: a cluster that already has a layout keeps it.
        Blocks are striped across (LUN, plane) pairs so a cluster's
        reads exercise multi-plane parallelism, and the last block may
        be partial (its ``pages_valid`` is what a refresh rewrites).
        """
        if cluster in self._cluster_blocks:
            return int(
                sum(
                    self._block_pages[key]
                    for key in zip(
                        self._cluster_luns[cluster].tolist(),
                        self._cluster_planes[cluster].tolist(),
                        self._cluster_blocks[cluster].tolist(),
                    )
                )
            )
        pages = self.pages_for(nbytes)
        per_block = self.geometry.pages_per_block
        n_blocks = -(-pages // per_block)
        luns = np.empty(n_blocks, dtype=np.int64)
        planes = np.empty(n_blocks, dtype=np.int64)
        blocks = np.empty(n_blocks, dtype=np.int64)
        remaining = pages
        for i in range(n_blocks):
            lun, plane, block = self._allocate_block()
            luns[i], planes[i], blocks[i] = lun, plane, block
            in_block = min(per_block, remaining)
            remaining -= in_block
            self._block_pages[(lun, plane, block)] = in_block
            self._owner[(lun, plane, block)] = cluster
        self._cluster_luns[cluster] = luns
        self._cluster_planes[cluster] = planes
        self._cluster_blocks[cluster] = blocks
        self._cluster_cursor[cluster] = 0
        global_planes = luns * self.geometry.planes_per_lun + planes
        self._cluster_ber_factor[cluster] = (
            float(self.ber.plane_ber[global_planes].mean()) / self._median_ber
        )
        self.cluster_page_reads.setdefault(cluster, 0)
        self.cluster_refreshes.setdefault(cluster, 0)
        self.cluster_erases.setdefault(cluster, 0)
        return pages

    # ---- the read path ---------------------------------------------------
    def record_reads(
        self, cluster: int, n_pages: int
    ) -> list[tuple[int, int, int]]:
        """Charge ``n_pages`` page reads to a cluster's blocks.

        Reads are spread round-robin over the cluster's blocks from a
        persistent cursor (every block of a hot cluster heats evenly,
        as the multi-plane mapping reads them together).  Returns the
        blocks that crossed the disturb threshold and are not already
        awaiting maintenance — the caller schedules the
        ``FlashMaintenance`` event.
        """
        if n_pages <= 0 or cluster not in self._cluster_blocks:
            return []
        self.page_reads += n_pages
        self.cluster_page_reads[cluster] += n_pages
        blocks = self._cluster_blocks[cluster]
        n_blocks = blocks.size
        base, rem = divmod(n_pages, n_blocks)
        counts = np.full(n_blocks, base, dtype=np.int64)
        if rem:
            cursor = self._cluster_cursor[cluster]
            counts[(cursor + np.arange(rem)) % n_blocks] += 1
            self._cluster_cursor[cluster] = (cursor + rem) % n_blocks
        due = self.ftl.record_reads(
            self._cluster_luns[cluster],
            self._cluster_planes[cluster],
            blocks,
            counts,
        )
        fresh = [t for t in due if t not in self._pending]
        self._pending.update(fresh)
        return fresh

    def ecc_delay_s(self, cluster: int, n_pages: int) -> float:
        """Soft-decode stall for ``n_pages`` hard-decoded reads.

        Hard-decision LDPC is pipelined with the array read; only the
        failures cost extra — each pays the soft-decode latency scaled
        by how bad the cluster's planes are relative to the device
        median (a cluster landed on tail-BER planes stalls more).
        """
        if n_pages <= 0:
            return 0.0
        failures = self.ldpc.decode_pages(n_pages)
        if failures == 0:
            return 0.0
        self.ecc_soft_decodes += failures
        factor = self._cluster_ber_factor.get(cluster, 1.0)
        return failures * self.timing.ecc_soft_decode_s * factor

    # ---- maintenance (GC pauses) -----------------------------------------
    def perform_refreshes(self, triples: list[tuple[int, int, int]]) -> float:
        """Refresh the given blocks through the FTL; returns the total
        pause the device must absorb (read + program each valid page,
        then erase — per block).

        Blocks whose owning cluster migrated away between the threshold
        crossing and the maintenance event are skipped (their release
        already erased them).
        """
        total = 0.0
        for triple in triples:
            self._pending.discard(triple)
            owner = self._owner.get(triple)
            if owner is None:
                continue
            lun, plane, block = triple
            pages_valid = self._block_pages[triple]
            event = self.ftl.refresh_block(
                lun, plane, block, pages_valid=pages_valid
            )
            total += event.latency_s(self.timing, pages_valid)
            self.refreshes += 1
            self.cluster_refreshes[owner] += 1
            self.cluster_erases[owner] += 1
        return total

    # ---- migrations (host writes / frees) --------------------------------
    def program_cluster(self, cluster: int, nbytes: int) -> int:
        """Host-program a cluster's data onto this device (migration
        destination or initial placement); returns the pages written."""
        pages = self.ensure_cluster(cluster, nbytes)
        luns = self._cluster_luns[cluster]
        planes = self._cluster_planes[cluster]
        blocks = self._cluster_blocks[cluster]
        for lun, plane, block in zip(
            luns.tolist(), planes.tolist(), blocks.tolist()
        ):
            self.ftl.program_block(
                lun, plane, block, pages=self._block_pages[(lun, plane, block)]
            )
        return pages

    def program_time_s(self, pages: int) -> float:
        """NAND program time for ``pages`` host pages (the floor a
        migration's write booking cannot beat, whatever the link
        bandwidth says)."""
        return pages * self.timing.program_page_s

    def release_cluster(self, cluster: int) -> None:
        """A cluster migrated away: erase its blocks in place and return
        them to this store's allocation free list."""
        if cluster not in self._cluster_blocks:
            return
        luns = self._cluster_luns.pop(cluster)
        planes = self._cluster_planes.pop(cluster)
        blocks = self._cluster_blocks.pop(cluster)
        self._cluster_cursor.pop(cluster, None)
        self._cluster_ber_factor.pop(cluster, None)
        for lun, plane, block in zip(
            luns.tolist(), planes.tolist(), blocks.tolist()
        ):
            key = (lun, plane, block)
            self.ftl.erase_block_in_place(lun, plane, block)
            self.cluster_erases[cluster] += 1
            self._pending.discard(key)
            self._block_pages.pop(key, None)
            self._owner.pop(key, None)
            self._released.append(key)

    # ---- reporting -------------------------------------------------------
    def summary(self) -> dict:
        """JSON-ready device summary (folded into ``report.flash``)."""
        gc = self.ftl.gc_summary()
        wear = self.ftl.wear_summary()
        return {
            "device": self.device_index,
            "page_reads": self.page_reads,
            "ecc_soft_decodes": self.ecc_soft_decodes,
            "refreshes": self.refreshes,
            "host_pages_written": int(gc["host_pages_written"]),
            "nand_pages_written": int(gc["nand_pages_written"]),
            "write_amplification": gc["write_amplification"],
            "total_erases": int(gc["total_erases"]),
            "max_erases": wear["max_erases"],
            "cluster_page_reads": {
                str(c): n for c, n in sorted(self.cluster_page_reads.items())
            },
            "cluster_refreshes": {
                str(c): n for c, n in sorted(self.cluster_refreshes.items())
            },
            "cluster_erases": {
                str(c): n for c, n in sorted(self.cluster_erases.items())
            },
        }
