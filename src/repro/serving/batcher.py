"""Dynamic batching: turning an arrival stream into device batches.

The paper's throughput results (Figs. 13 and 19) are a function of
batch size: SearSSD needs large batches to fill its LUN-level
parallelism, but an online frontend cannot wait forever for a batch to
fill.  The classic compromise is the *max-batch-size / max-wait-time*
policy (as in Triton/TensorFlow Serving dynamic batching): a batch
closes as soon as it reaches ``max_batch_size`` requests **or** its
oldest request has waited ``max_wait_s``, whichever comes first.

:class:`DynamicBatcher` implements that policy over simulated time.  It
is a passive state machine — the event loop feeds it arrivals
(:meth:`offer`) and deadline expirations (:meth:`poll`) and dispatches
whatever batches it closes — so the same batcher runs under any
arrival process, backend or clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serving.request import Request

#: Policy modes.
BATCH = "batch"      # size + wait-time triggers (the default)
GREEDY = "greedy"    # dispatch immediately, no artificial wait
FIXED = "fixed"      # size trigger only (offline-style fixed batches)

POLICY_MODES = (BATCH, GREEDY, FIXED)


@dataclass(frozen=True)
class BatchPolicy:
    """How the frontend forms batches.

    ``batch``  — close at ``max_batch_size`` or when the oldest queued
    request has waited ``max_wait_s`` (timeout closes *partial*
    batches).
    ``greedy`` — every arrival dispatches immediately (batch of one
    unless arrivals are simultaneous); the no-batching baseline.
    ``fixed``  — close only on size; stragglers flush at end of stream.
    """

    max_batch_size: int = 32
    max_wait_s: float = 2e-3
    mode: str = BATCH

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        if self.mode not in POLICY_MODES:
            raise ValueError(
                f"unknown policy mode {self.mode!r}; expected one of {POLICY_MODES}"
            )


class DynamicBatcher:
    """Accumulates requests into batches under a :class:`BatchPolicy`."""

    def __init__(self, policy: BatchPolicy) -> None:
        self.policy = policy
        self.pending: list[Request] = []
        self.batches_closed = 0
        self.timeout_closes = 0
        """Batches closed by the wait-time trigger (partial batches)."""

    def __len__(self) -> int:
        return len(self.pending)

    def deadline(self) -> float | None:
        """Simulated time at which the oldest request times out.

        ``None`` when nothing is queued or the policy has no wait-time
        trigger (``fixed`` mode).
        """
        if not self.pending or self.policy.mode == FIXED:
            return None
        return self.pending[0].arrival_s + self.policy.max_wait_s

    def offer(self, request: Request) -> list[Request] | None:
        """Queue an arrival; returns a batch if this arrival closed one.

        In ``greedy`` mode every offer closes immediately.  In the
        other modes a batch closes when it reaches
        ``policy.max_batch_size``.
        """
        self.pending.append(request)
        if self.policy.mode == GREEDY:
            return self._close()
        if len(self.pending) >= self.policy.max_batch_size:
            return self._close()
        return None

    def poll(self, now: float) -> list[Request] | None:
        """Close the queued batch if its deadline has passed.

        This is the timeout trigger: it fires on *partial* batches —
        under light load most batches close this way.
        """
        deadline = self.deadline()
        if deadline is None or deadline > now:
            return None
        self.timeout_closes += 1
        return self._close()

    def flush(self) -> list[Request] | None:
        """Close whatever is queued (end of stream)."""
        if not self.pending:
            return None
        return self._close()

    def _close(self) -> list[Request]:
        size = min(len(self.pending), self.policy.max_batch_size)
        batch, self.pending = self.pending[:size], self.pending[size:]
        self.batches_closed += 1
        return batch
