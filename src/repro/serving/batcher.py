"""Dynamic batching: turning an arrival stream into device batches.

The paper's throughput results (Figs. 13 and 19) are a function of
batch size: SearSSD needs large batches to fill its LUN-level
parallelism, but an online frontend cannot wait forever for a batch to
fill.  The classic compromise is the *max-batch-size / max-wait-time*
policy (as in Triton/TensorFlow Serving dynamic batching): a batch
closes as soon as it reaches ``max_batch_size`` requests **or** its
oldest request has waited ``max_wait_s``, whichever comes first.

The ``slo`` mode replaces the fixed wait with a *deadline-driven*
close: given a completion predictor (drain-time prediction from the
shard devices' FIFO state plus a calibrated per-size service model —
see :mod:`repro.serving.slo`), the batch stays open exactly as long as
its most urgent member can still meet its deadline, and closes the
moment waiting longer would breach it.  Loose deadlines fill batches;
tight ones dispatch early — the policy adapts per batch instead of
using one global wait.

:class:`DynamicBatcher` implements these policies over simulated time.
It is a passive state machine — the event loop feeds it arrivals
(:meth:`offer`) and deadline expirations (:meth:`poll`) and dispatches
whatever batches it closes — so the same batcher runs under any
arrival process, backend or clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.serving.request import Request

#: Policy modes.
BATCH = "batch"      # size + wait-time triggers (the default)
GREEDY = "greedy"    # dispatch without artificial wait (simultaneous
                     # arrivals share a batch)
FIXED = "fixed"      # size trigger only (offline-style fixed batches)
SLO = "slo"          # size + deadline-driven close (predicted breach)

POLICY_MODES = (BATCH, GREEDY, FIXED, SLO)

#: ``predictor(batch_size, close_time) -> predicted completion`` of a
#: batch of that size closed at that time, or ``None`` while the
#: service model is uncalibrated.
CompletionPredictor = Callable[[int, float], "float | None"]


@dataclass(frozen=True)
class BatchPolicy:
    """How the frontend forms batches.

    ``batch``  — close at ``max_batch_size`` or when the oldest queued
    request has waited ``max_wait_s`` (timeout closes *partial*
    batches).
    ``greedy`` — dispatch without artificial wait: a batch closes the
    moment the simulated clock moves past its arrival instant, so
    requests arriving at exactly the same time share one batch and
    everything else is a batch of one; the no-batching baseline.
    ``fixed``  — close only on size; stragglers flush at end of stream.
    ``slo``    — close at ``max_batch_size``, or when the *predicted*
    completion of the most urgent queued request would breach its
    deadline if the batch waited any longer (``max_wait_s`` stays as a
    staleness cap, and is the fallback while the predictor is
    uncalibrated or no member carries a deadline).
    """

    max_batch_size: int = 32
    max_wait_s: float = 2e-3
    mode: str = BATCH

    slo_margin_s: float = 0.0
    """``slo`` mode: close this much earlier than the predicted breach,
    absorbing service-model error (a safety margin on the deadline)."""

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        if self.slo_margin_s < 0:
            raise ValueError("slo_margin_s must be >= 0")
        if self.mode not in POLICY_MODES:
            raise ValueError(
                f"unknown policy mode {self.mode!r}; expected one of {POLICY_MODES}"
            )


class DynamicBatcher:
    """Accumulates requests into batches under a :class:`BatchPolicy`.

    ``predictor`` (required by ``slo`` mode, ignored otherwise) maps
    ``(batch_size, close_time)`` to the predicted completion time of a
    batch closed then — the frontend supplies drain-time prediction
    over its shard devices.
    """

    def __init__(
        self,
        policy: BatchPolicy,
        predictor: CompletionPredictor | None = None,
    ) -> None:
        if policy.mode == SLO and predictor is None:
            raise ValueError("slo mode needs a completion predictor")
        self.policy = policy
        self.predictor = predictor
        self.pending: list[Request] = []
        self.batches_closed = 0
        self.timeout_closes = 0
        """Batches closed by the wait-time/deadline trigger (partial
        batches)."""

    def __len__(self) -> int:
        return len(self.pending)

    def deadline(self) -> float | None:
        """Simulated time at which the queued batch must close.

        ``None`` when nothing is queued or the policy has no time
        trigger (``fixed`` mode).  ``greedy`` returns the oldest
        arrival itself (zero wait); ``slo`` returns the latest close
        time at which the most urgent member's predicted completion
        still meets its deadline, capped by ``max_wait_s`` and floored
        at the newest member's arrival (a batch cannot close before a
        member it contains arrived).
        """
        if not self.pending or self.policy.mode == FIXED:
            return None
        if self.policy.mode == GREEDY:
            return self.pending[0].arrival_s
        fallback = self.pending[0].arrival_s + self.policy.max_wait_s
        if self.policy.mode != SLO:
            return fallback
        return max(
            min(fallback, self._slo_close_by(fallback)),
            self.pending[-1].arrival_s,
        )

    def _slo_close_by(self, fallback: float) -> float:
        """Latest close time meeting the most urgent member's deadline."""
        deadlines = [
            r.deadline_s for r in self.pending if r.deadline_s is not None
        ]
        if not deadlines:
            return fallback
        target = min(deadlines) - self.policy.slo_margin_s
        n = len(self.pending)
        # Latest candidate close: the deadline minus the *unloaded*
        # service time.  predictor(n, t) is non-decreasing in t and
        # >= t + unloaded service, so no later close can work; and if
        # even this close is predicted to breach, the devices are
        # drain-limited — every close time predicts the same (or a
        # later) completion, so close immediately to minimise lateness.
        predicted = self.predictor(n, target)
        if predicted is None:
            return fallback
        close_by = target - (predicted - target)
        if close_by < target and self.predictor(n, close_by) > target:
            return float("-inf")  # infeasible: the floor clamps to "now"
        return close_by

    def expired(self, now: float, deadline: float | None = None) -> bool:
        """Whether the queued batch's deadline has passed at ``now``.

        ``greedy`` expires *strictly* after its arrival instant, so
        requests arriving at exactly the same simulated time join the
        batch before it closes; the timed modes expire inclusively
        (a timeout at exactly the next arrival's timestamp fires
        before that arrival is offered).  Pass ``deadline`` when a
        :meth:`deadline` value is already in hand — in ``slo`` mode
        each computation runs the completion predictor over the device
        chains, so the event loop computes it once per event.
        """
        if deadline is None:
            deadline = self.deadline()
        if deadline is None:
            return False
        if self.policy.mode == GREEDY:
            return deadline < now
        return deadline <= now

    def offer(self, request: Request) -> list[Request] | None:
        """Queue an arrival; returns a batch if this arrival closed one.

        A batch closes here when it reaches ``policy.max_batch_size``;
        the time/deadline triggers fire through :meth:`poll`.
        """
        self.pending.append(request)
        if len(self.pending) >= self.policy.max_batch_size:
            return self._close()
        return None

    def evict(self, request: Request) -> None:
        """Drop a queued request (priority admission sheds it in favour
        of a more urgent arrival)."""
        self.pending.remove(request)

    def poll(
        self, now: float, deadline: float | None = None
    ) -> list[Request] | None:
        """Close the queued batch if its deadline has expired at ``now``.

        This is the time trigger: it fires on *partial* batches — under
        light load most batches close this way.  Greedy closes are not
        counted as timeouts (zero wait is the policy, not a timer
        expiring).  ``deadline`` short-circuits recomputation as in
        :meth:`expired`.
        """
        if not self.expired(now, deadline):
            return None
        if self.policy.mode != GREEDY:
            self.timeout_closes += 1
        return self._close()

    def flush(self) -> list[Request] | None:
        """Close whatever is queued (end of stream)."""
        if not self.pending:
            return None
        return self._close()

    def _close(self) -> list[Request]:
        size = min(len(self.pending), self.policy.max_batch_size)
        batch, self.pending = self.pending[:size], self.pending[size:]
        self.batches_closed += 1
        return batch
