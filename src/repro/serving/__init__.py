"""repro.serving — online serving over the NDSearch simulators.

The offline experiments answer "how fast is one batch"; this package
answers the production question: what QPS and *tail latency* does an
NDSearch deployment sustain against live traffic?  It is a
discrete-event serving simulation layered over the repo's trace-driven
platform models:

* :mod:`repro.serving.arrivals` — request streams (Poisson, bursty
  MMPP, trace replay) with Zipfian query popularity.
* :mod:`repro.serving.batcher` — dynamic batching
  (max-batch-size / max-wait-time, greedy, fixed and SLO deadline-
  driven policies).
* :mod:`repro.serving.slo` — the calibrated per-size service model
  behind the ``slo`` policy's drain-time prediction.
* :mod:`repro.serving.autoscale` — epoch-based replica autoscaling
  from windowed utilization and queue-depth signals.
* :mod:`repro.serving.rebalance` — partitioned-pool rebalancing:
  IVF-cluster migrations between shard devices under load skew, with
  the data movement booked on the device timelines.
* :mod:`repro.serving.sharding` — replicated and IVF-partitioned
  device pools with shard-aware top-k merging and selective shard
  probing (IVF ``nprobe`` at the device-pool level).
* :mod:`repro.serving.cache` — an LRU result cache exploiting query
  skew.
* :mod:`repro.serving.admission` — bounded queues and load shedding.
* :mod:`repro.serving.metrics` — QPS, p50/p95/p99 latency, queue
  depth, hit rate, per-shard utilization, energy.
* :mod:`repro.serving.backends` — any platform registered in
  :mod:`repro.platform` (NDSearch, CPU/CPU-T/GPU/SmartSSD, DS-c/DS-cp)
  behind one interface, so serving comparisons are apples-to-apples.
* :mod:`repro.serving.device` — pipelined shard devices: consecutive
  batches overlap on a device's phase-timeline stages.
* :mod:`repro.serving.storage` — stateful flash under serving: each
  device couples to a live FTL + ECC, so reads accumulate disturb,
  GC refresh pauses inject tail latency and migrations charge
  program/erase (opt-in via ``ServingConfig.flash``).
* :mod:`repro.serving.frontend` — composable handlers over the
  discrete-event kernel (:mod:`repro.sim.events`) tying it together,
  including coalescing of identical in-flight queries.
* :mod:`repro.serving.twin` — the digital twin: incremental
  re-simulation over deterministic window snapshots
  (:mod:`repro.sim.snapshot`), answering what-if queries by replaying
  only the changed suffix, memoized in a content-addressed cache.

Typical use::

    from repro.serving import (
        BatchPolicy, PoissonArrivals, QueryStream, ServingConfig,
        ServingFrontend, build_router,
    )

    router = build_router(vectors, num_shards=4, config=config)
    stream = QueryStream(PoissonArrivals(200.0), pool_size=len(pool),
                         n_requests=2000)
    frontend = ServingFrontend(router, ServingConfig(BatchPolicy(32, 2e-3)))
    report = frontend.run(stream.generate(), pool)
    print(report.format())

Or from the shell::

    python -m repro.serving --rate 200 --shards 4 --policy batch

Everything runs on a simulated clock — service times come from the
SearSSD/baseline timing models — so runs are fast and deterministic.
"""

from repro.serving.admission import AdmissionController
from repro.serving.arrivals import (
    MMPPArrivals,
    PoissonArrivals,
    QueryStream,
    TraceReplayArrivals,
)
from repro.serving.autoscale import AutoscalePolicy, Autoscaler, ScaleEvent
from repro.serving.backends import (
    PlatformBackend,
    SearchBackend,
    make_backend,
)
from repro.serving.batcher import BatchPolicy, DynamicBatcher
from repro.serving.cache import LRUCache, ResultCache
from repro.serving.device import ShardDevice
from repro.serving.frontend import ServingConfig, ServingFrontend
from repro.serving.metrics import MetricsCollector, ServingReport
from repro.serving.rebalance import (
    Migration,
    RebalancePolicy,
    Rebalancer,
)
from repro.serving.request import Request
from repro.serving.sharding import ShardJob, ShardRouter, build_router
from repro.serving.slo import ServiceModel
from repro.serving.storage import FlashBackedStore, FlashConfig
from repro.serving.twin import ServingTwin, TwinCache

__all__ = [
    "AdmissionController",
    "AutoscalePolicy",
    "Autoscaler",
    "BatchPolicy",
    "DynamicBatcher",
    "FlashBackedStore",
    "FlashConfig",
    "LRUCache",
    "MMPPArrivals",
    "MetricsCollector",
    "Migration",
    "PlatformBackend",
    "PoissonArrivals",
    "QueryStream",
    "RebalancePolicy",
    "Rebalancer",
    "Request",
    "ResultCache",
    "ScaleEvent",
    "SearchBackend",
    "ServiceModel",
    "ServingConfig",
    "ServingFrontend",
    "ServingReport",
    "ServingTwin",
    "ShardDevice",
    "ShardJob",
    "ShardRouter",
    "TraceReplayArrivals",
    "TwinCache",
    "build_router",
    "make_backend",
]
