"""Demo CLI for the online serving subsystem.

Serve a synthetic workload end-to-end and print the serving report::

    python -m repro.serving --rate 200 --shards 4 --policy batch
    python -m repro.serving --rate 2000 --shards 8 --arrivals mmpp \\
        --mode partitioned --backend ndsearch

Observability (see :mod:`repro.obs`): ``--trace out.json`` records the
run's request/batch/stage spans as a Chrome trace-event file,
``--metrics-window-ms 5`` closes windowed metrics on 5 ms event-time
windows, and ``--report-json report.json`` dumps the full report.

Digital-twin mode (see :mod:`repro.serving.twin`): ``--emit-arrivals
trace.jsonl`` writes the generated arrival stream as JSONL, and
``--follow trace.jsonl`` replays it incrementally — checkpointing
every ``--window-ms`` — then answers ``--whatif`` queries ("replay the
last windows with nprobe=1 / +2 replicas / rebalancing on") by
restoring the newest unaffected checkpoint and re-simulating only the
changed suffix::

    repro-serve --emit-arrivals trace.jsonl --rate 2000 --requests 400
    repro-serve --follow trace.jsonl --mode partitioned --window-ms 20 \\
        --whatif nprobe=1 --whatif nprobe=2 --twin-selftest \\
        --twin-report twin.json

The run finishes with a parity check: the same query pool is searched
through the sharded pool and through one unsharded NDSearch system,
and their recall against exact ground truth is compared (replicated
sharding must match to 1e-6 — routing must never change results).
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro import platform as platform_registry
from repro.ann import BruteForceIndex, HNSWIndex, HNSWParams, recall_at_k
from repro.core import NDSearch, NDSearchConfig
from repro.data.synthetic import clustered_gaussian, split_queries
from repro.obs import SpanTracer
from repro.serving.arrivals import MMPPArrivals, PoissonArrivals, QueryStream
from repro.serving.autoscale import AutoscalePolicy
from repro.serving.batcher import POLICY_MODES, BatchPolicy
from repro.serving.frontend import ServingConfig, ServingFrontend
from repro.serving.rebalance import RebalancePolicy
from repro.serving.request import Request
from repro.serving.sharding import REPLICATED, SHARD_MODES, build_router
from repro.serving.storage import FlashConfig
from repro.serving.twin import ServingTwin


# ---- digital-twin helpers ------------------------------------------------

def _write_arrivals(path: str, requests: list[Request]) -> None:
    """Write an arrival stream as JSONL (the ``--follow`` input)."""
    with open(path, "w", encoding="utf-8") as handle:
        for request in requests:
            handle.write(
                json.dumps(
                    {
                        "request_id": request.request_id,
                        "query_id": request.query_id,
                        "arrival_s": request.arrival_s,
                        "k": request.k,
                        "priority": request.priority,
                        "deadline_s": request.deadline_s,
                    },
                    sort_keys=True,
                )
                + "\n"
            )


def _load_arrivals(path: str) -> list[Request]:
    """Load a JSONL arrival stream into fresh, unserved requests."""
    requests = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            requests.append(
                Request(
                    request_id=int(row["request_id"]),
                    query_id=int(row["query_id"]),
                    arrival_s=float(row["arrival_s"]),
                    k=int(row.get("k", 10)),
                    priority=int(row.get("priority", 0)),
                    deadline_s=(
                        float(row["deadline_s"])
                        if row.get("deadline_s") is not None
                        else None
                    ),
                )
            )
    requests.sort(key=lambda r: r.arrival_s)
    return requests


def _parse_whatif(spec: str) -> dict:
    """Parse one ``--whatif`` spec into :meth:`ServingTwin.whatif` kwargs.

    Comma-separated ``key=value`` pairs: ``nprobe=<int|broadcast>``,
    ``add_replicas=<int>``, ``rebalance=on``, ``last_windows=<int>``.
    """
    kwargs: dict = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key, value = key.strip(), value.strip()
        if not sep or not value:
            raise ValueError(f"--whatif {spec!r}: expected key=value pairs")
        if key == "nprobe":
            kwargs["nprobe"] = (
                None if value in ("none", "broadcast") else int(value)
            )
        elif key == "add_replicas":
            kwargs["add_replicas"] = int(value)
        elif key == "last_windows":
            kwargs["last_windows"] = int(value)
        elif key == "rebalance":
            if value in ("on", "true", "1"):
                kwargs["rebalance"] = RebalancePolicy()
            elif value not in ("off", "false", "0"):
                raise ValueError(
                    f"--whatif {spec!r}: rebalance must be on or off"
                )
        else:
            raise ValueError(f"--whatif {spec!r}: unknown key {key!r}")
    return kwargs


def _report_bytes(report) -> bytes:
    return json.dumps(report.to_dict(), sort_keys=True).encode()


def _twin_selftest(
    twin: ServingTwin,
    serving_config: ServingConfig,
    router_factory,
    pool,
    arrivals_path: str,
    whatifs: list[tuple[str, dict]],
) -> list[str]:
    """The determinism contract the CI twin step gates on.

    A no-delta what-if must be byte-identical to a from-scratch replay
    of the whole stream, and repeating every query (the null one
    included) must hit the content-addressed cache with the identical
    answer.  Returns the list of violations (empty = pass).
    """
    failures: list[str] = []
    null_answer = twin.whatif()
    scratch = ServingFrontend(router_factory(), serving_config).run(
        _load_arrivals(arrivals_path), pool
    )
    if _report_bytes(null_answer) != _report_bytes(scratch):
        failures.append(
            "no-delta what-if is not byte-identical to a from-scratch "
            "replay"
        )
    for spec, kwargs in [("<no delta>", {})] + whatifs:
        first = twin.whatif(**kwargs)
        hits_before = twin.cache.hits
        second = twin.whatif(**kwargs)
        if twin.cache.hits != hits_before + 1:
            failures.append(f"repeating --whatif {spec!r} missed the cache")
        if _report_bytes(first) != _report_bytes(second):
            failures.append(
                f"cached answer for --whatif {spec!r} differs from the "
                f"simulated one"
            )
    return failures


def _run_follow(args, parser, serving_config, router_factory, pool, tracer):
    """``--follow``: incremental ingest, windowed checkpoints, what-ifs."""
    window_s = args.window_ms * 1e-3
    if window_s <= 0.0:
        parser.error("--window-ms must be positive")
    arrivals = _load_arrivals(args.follow)
    if not arrivals:
        parser.error(f"--follow {args.follow}: no arrivals")
    if max(r.query_id for r in arrivals) >= pool.shape[0]:
        parser.error(
            f"--follow {args.follow}: query_id exceeds --pool "
            f"{pool.shape[0]}"
        )
    try:
        whatifs = [(spec, _parse_whatif(spec)) for spec in args.whatif]
    except ValueError as exc:
        parser.error(str(exc))
    twin = ServingTwin(
        router_factory,
        serving_config,
        pool,
        window_s=window_s,
        tracer=tracer,
        calibrate_k=max(r.k for r in arrivals),
    )
    # Feed window by window, as a live follower would; never advance
    # past the newest observed arrival (run() flushes the final
    # straggler batch via StreamEnd, and byte-parity with it requires
    # the clock not to overtake the stream).
    last_arrival = arrivals[-1].arrival_s
    fed = 0
    window = 1
    while window * window_s <= last_arrival:
        boundary = window * window_s
        cut = fed
        while cut < len(arrivals) and arrivals[cut].arrival_s <= boundary:
            cut += 1
        twin.feed(arrivals[fed:cut])
        fed = cut
        twin.advance(boundary)
        window += 1
    twin.feed(arrivals[fed:])
    report = twin.finish()
    if tracer is not None:
        tracer.write(args.trace)
        print(f"trace: {len(tracer)} events -> {args.trace}")
    print()
    print(report.format(title=f"twin: followed {args.follow}"))
    stats = report.twin
    print(
        f"\ntwin: {stats['windows_simulated']} windows of "
        f"{args.window_ms:g} ms, {stats['checkpoints']} checkpoints"
    )
    answers = []
    for spec, kwargs in whatifs:
        answer = twin.whatif(**kwargs)
        answers.append((spec, answer))
        print(
            f"  whatif {spec:<28} completed {answer.completed:>5}  "
            f"QPS {answer.qps:>10,.0f}  "
            f"p99 {answer.latency_p99_s * 1e3:8.3f} ms  "
            f"shed {answer.shed_rate:.1%}"
        )
    exit_code = 0
    if args.twin_selftest:
        failures = _twin_selftest(
            twin, serving_config, router_factory, pool, args.follow,
            whatifs,
        )
        if failures:
            print(f"\nFAIL: twin self-test ({len(failures)} violation(s)):",
                  file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            exit_code = 1
        else:
            print(
                f"\nOK: twin self-test passed — null what-if byte-identical "
                f"to from-scratch, {twin.cache.hits} cache hit(s) / "
                f"{twin.cache.misses} miss(es), {twin.restores} restore(s)"
            )
    if args.twin_report:
        payload = {
            "base": report.to_dict(),
            "twin": twin.stats(),
            "whatifs": [
                {"spec": spec, "report": answer.to_dict()}
                for spec, answer in answers
            ],
        }
        with open(args.twin_report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"twin report: {args.twin_report}")
    return exit_code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Online serving demo over the NDSearch simulators.",
    )
    parser.add_argument("--rate", type=float, default=200.0,
                        help="mean arrival rate in QPS (default 200)")
    parser.add_argument("--requests", type=int, default=1500,
                        help="stream length (default 1500)")
    parser.add_argument("--shards", type=int, default=4,
                        help="shard device count (default 4)")
    parser.add_argument("--policy", choices=POLICY_MODES, default="batch",
                        help="batching policy (default batch; 'slo' closes "
                             "on predicted deadline breach)")
    parser.add_argument("--batch-size", type=int, default=32,
                        help="max batch size (default 32)")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="max batching wait in ms (default 2)")
    parser.add_argument("--slo-ms", type=float, default=None,
                        help="completion deadline in ms attached to every "
                             "request (default: no deadlines)")
    parser.add_argument("--tight-slo-ms", type=float, default=None,
                        help="deadline for the high-priority class; "
                             "implies two priority classes (see --high-frac)")
    parser.add_argument("--high-frac", type=float, default=0.2,
                        help="fraction of requests in the high-priority "
                             "class when --tight-slo-ms is set (default 0.2)")
    parser.add_argument("--slo-margin-ms", type=float, default=0.0,
                        help="slo policy: close this much earlier than the "
                             "predicted breach (absorbs model error)")
    parser.add_argument("--priority-admission", action="store_true",
                        help="shed lowest-priority/latest-deadline work "
                             "first instead of arrival order")
    parser.add_argument("--autoscale", action="store_true",
                        help="autoscale the replicated pool between epochs "
                             "(replicated mode only)")
    parser.add_argument("--autoscale-max", type=int, default=8,
                        help="autoscaler replica ceiling (default 8)")
    parser.add_argument("--autoscale-interval-ms", type=float, default=50.0,
                        help="autoscaler epoch length in ms (default 50)")
    parser.add_argument("--mode", choices=SHARD_MODES, default=REPLICATED,
                        help="shard layout (default replicated)")
    parser.add_argument("--nprobe", type=int, default=None,
                        help="partitioned mode: probe only the nprobe "
                             "nearest clusters per query "
                             "(default: broadcast to all)")
    parser.add_argument("--clusters-per-shard", type=int, default=1,
                        help="partitioned mode: IVF clusters per shard "
                             "device (default 1; >1 gives the rebalancer "
                             "migration granularity)")
    parser.add_argument("--rebalance", action="store_true",
                        help="migrate hot IVF clusters to cold shard "
                             "devices between epochs (partitioned mode "
                             "only)")
    parser.add_argument("--rebalance-interval-ms", type=float, default=2.0,
                        help="rebalancer epoch length in ms (default 2)")
    parser.add_argument("--rebalance-skew", type=float, default=0.25,
                        help="hot-minus-cold windowed utilization gap "
                             "that triggers a migration (default 0.25)")
    parser.add_argument("--migration-gbps", type=float, default=1.0,
                        help="cluster data-movement bandwidth in GB/s "
                             "(default 1)")
    parser.add_argument("--flash", action="store_true",
                        help="serve through a live FTL + ECC under every "
                             "device: reads accumulate disturb, GC refresh "
                             "pauses shape the tail, migrations charge "
                             "program/erase")
    parser.add_argument("--flash-threshold", type=int, default=None,
                        help="read-disturb refresh threshold in page reads "
                             "per block (default: the FlashConfig default; "
                             "lower it to see refreshes at demo volumes)")
    parser.add_argument("--backend", default="ndsearch",
                        choices=platform_registry.available(),
                        help="platform behind the frontend (default ndsearch)")
    parser.add_argument("--blocking-devices", action="store_true",
                        help="disable pipelined shard stages "
                             "(one batch at a time per device)")
    parser.add_argument("--no-coalesce", action="store_true",
                        help="disable coalescing of identical "
                             "in-flight queries")
    parser.add_argument("--arrivals", choices=("poisson", "mmpp"),
                        default="poisson", help="arrival process")
    parser.add_argument("--zipf", type=float, default=1.0,
                        help="query popularity skew exponent (default 1.0)")
    parser.add_argument("--cache", type=int, default=512,
                        help="result-cache entries, 0 disables (default 512)")
    parser.add_argument("--admission", type=int, default=None,
                        help="max in-system requests (default unbounded)")
    parser.add_argument("--corpus", type=int, default=2000,
                        help="synthetic corpus size (default 2000)")
    parser.add_argument("--dim", type=int, default=32,
                        help="vector dimensionality (default 32)")
    parser.add_argument("--pool", type=int, default=256,
                        help="distinct queries in the pool (default 256)")
    parser.add_argument("--k", type=int, default=10,
                        help="results per query (default 10)")
    parser.add_argument("--seed", type=int, default=7, help="stream seed")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record request/batch/stage spans and write a "
                             "Chrome trace-event JSON file (load it in "
                             "Perfetto or chrome://tracing)")
    parser.add_argument("--metrics-window-ms", type=float, default=None,
                        help="close windowed metrics (queue depth, per-device "
                             "utilization, p99, shed rate) on this event-time "
                             "window and include the time series in the "
                             "report")
    parser.add_argument("--report-json", metavar="PATH", default=None,
                        help="write the full serving report as JSON")
    parser.add_argument("--emit-arrivals", metavar="PATH", default=None,
                        help="write the generated arrival stream as JSONL "
                             "(one request per line) and exit — the input "
                             "format --follow replays")
    parser.add_argument("--follow", metavar="PATH", default=None,
                        help="digital-twin mode: ingest a JSONL arrival "
                             "stream incrementally, checkpoint the full "
                             "simulation state every --window-ms, and "
                             "answer --whatif queries by re-simulating "
                             "only the changed suffix")
    parser.add_argument("--window-ms", type=float, default=50.0,
                        help="twin checkpoint window in ms (default 50)")
    parser.add_argument("--whatif", action="append", default=[],
                        metavar="SPEC",
                        help="what-if query against the twin: comma-"
                             "separated key=value pairs among nprobe=N|"
                             "broadcast, add_replicas=N, rebalance=on, "
                             "last_windows=N (repeatable)")
    parser.add_argument("--twin-report", metavar="PATH", default=None,
                        help="write the twin's base report, cache counters "
                             "and what-if answers as JSON")
    parser.add_argument("--twin-selftest", action="store_true",
                        help="assert the twin contract: a no-delta what-if "
                             "is byte-identical to a from-scratch replay "
                             "and repeated what-ifs hit the content-"
                             "addressed cache (exit 1 otherwise)")
    args = parser.parse_args(argv)
    if args.follow and args.emit_arrivals:
        parser.error("--follow and --emit-arrivals are mutually exclusive")
    if (args.whatif or args.twin_report or args.twin_selftest) \
            and not args.follow:
        parser.error("--whatif/--twin-report/--twin-selftest need --follow")
    if args.nprobe is not None and args.mode == REPLICATED:
        parser.error("--nprobe requires --mode partitioned")
    if args.autoscale and args.mode != REPLICATED:
        parser.error("--autoscale requires --mode replicated")
    if args.rebalance and args.mode == REPLICATED:
        parser.error("--rebalance requires --mode partitioned")
    if args.clusters_per_shard > 1 and args.mode == REPLICATED:
        parser.error("--clusters-per-shard requires --mode partitioned")
    if args.policy == "slo" and args.slo_ms is None and args.tight_slo_ms is None:
        parser.error("--policy slo needs --slo-ms and/or --tight-slo-ms")
    if args.flash_threshold is not None and not args.flash:
        parser.error("--flash-threshold requires --flash")

    # Priority classes: one best-effort/base class, plus a high class
    # when a tight SLO is requested.
    priorities: tuple[int, ...] = (0,)
    weights = None
    slo_s: float | dict[int, float] | None = (
        args.slo_ms * 1e-3 if args.slo_ms is not None else None
    )
    if args.tight_slo_ms is not None:
        if not 0.0 < args.high_frac < 1.0:
            parser.error("--high-frac must be in (0, 1)")
        priorities = (0, 1)
        weights = (1.0 - args.high_frac, args.high_frac)
        slo_s = {1: args.tight_slo_ms * 1e-3}
        if args.slo_ms is not None:
            slo_s[0] = args.slo_ms * 1e-3

    routing = ""
    if args.mode != REPLICATED:
        routing = (
            f", nprobe {args.nprobe}" if args.nprobe is not None
            else ", broadcast"
        )
    print(
        f"corpus {args.corpus} x {args.dim}, pool {args.pool} queries, "
        f"{args.shards} x {args.backend} shard(s) [{args.mode}{routing}]"
    )
    vectors = clustered_gaussian(args.corpus, args.dim, seed=args.seed)
    pool = split_queries(vectors, args.pool, seed=args.seed + 1)
    config = NDSearchConfig.scaled()

    arrivals = (
        PoissonArrivals(args.rate)
        if args.arrivals == "poisson"
        else MMPPArrivals(args.rate)
    )
    stream = QueryStream(
        arrivals,
        pool_size=args.pool,
        n_requests=args.requests,
        k=args.k,
        zipf_exponent=args.zipf,
        seed=args.seed,
        priorities=priorities,
        priority_weights=weights,
        slo_s=slo_s,
    )
    if args.emit_arrivals:
        requests = stream.generate()
        _write_arrivals(args.emit_arrivals, requests)
        print(f"arrivals: {len(requests)} requests -> {args.emit_arrivals}")
        return 0

    print("building shard pool ...")

    def router_factory():
        return build_router(
            vectors,
            num_shards=args.shards,
            config=config,
            mode=args.mode,
            platform=args.backend,
            seed=args.seed,
            clusters_per_shard=args.clusters_per_shard,
        )

    router = router_factory()
    policy = BatchPolicy(
        max_batch_size=args.batch_size,
        max_wait_s=args.max_wait_ms * 1e-3,
        mode=args.policy,
        slo_margin_s=args.slo_margin_ms * 1e-3,
    )
    autoscale = (
        AutoscalePolicy(
            max_replicas=args.autoscale_max,
            interval_s=args.autoscale_interval_ms * 1e-3,
        )
        if args.autoscale
        else None
    )
    rebalance = (
        RebalancePolicy(
            interval_s=args.rebalance_interval_ms * 1e-3,
            skew_threshold=args.rebalance_skew,
            migration_gbps=args.migration_gbps,
        )
        if args.rebalance
        else None
    )
    flash = None
    if args.flash:
        flash = (
            FlashConfig(read_disturb_threshold=args.flash_threshold)
            if args.flash_threshold is not None
            else FlashConfig()
        )
    tracer = SpanTracer() if args.trace else None
    serving_config = ServingConfig(
        policy=policy,
        cache_capacity=args.cache,
        admission_capacity=args.admission,
        pipelined=not args.blocking_devices,
        coalesce=not args.no_coalesce,
        nprobe=args.nprobe,
        priority_admission=args.priority_admission,
        autoscale=autoscale,
        rebalance=rebalance,
        flash=flash,
        metrics_window_s=(
            args.metrics_window_ms * 1e-3
            if args.metrics_window_ms is not None
            else None
        ),
    )
    if args.follow:
        return _run_follow(
            args, parser, serving_config, router_factory, pool, tracer
        )
    frontend = ServingFrontend(router, serving_config, tracer=tracer)
    print(
        f"serving {args.requests} requests at {args.rate:g} QPS "
        f"({args.arrivals}, zipf {args.zipf:g}) ..."
    )
    report = frontend.run(stream.generate(), pool)
    if tracer is not None:
        tracer.write(args.trace)
        print(f"trace: {len(tracer)} events -> {args.trace}")
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"report: {args.report_json}")
    if report.timeseries is not None:
        windows = report.timeseries["windows"]
        print(
            f"metrics: {len(windows)} windows of "
            f"{report.timeseries['window_s'] * 1e3:g} ms"
        )
    title = (
        f"serving: {args.backend} x{args.shards} {args.mode}, "
        f"policy={args.policy}"
    )
    print()
    print(report.format(title=title))
    print()
    print(
        f"QPS {report.qps:,.0f} | p50 {report.latency_p50_s * 1e3:.3f} ms | "
        f"p95 {report.latency_p95_s * 1e3:.3f} ms | "
        f"p99 {report.latency_p99_s * 1e3:.3f} ms | "
        f"cache hit rate {report.cache_hit_rate:.1%}"
    )
    if report.deadline_total:
        print(
            f"SLO: {report.deadline_total - report.deadline_misses}"
            f"/{report.deadline_total} deadlines met "
            f"(miss rate {report.deadline_miss_rate:.1%}, "
            f"goodput {report.goodput_qps:,.0f} QPS on time)"
        )
        for priority in sorted(report.priority_stats, reverse=True):
            stats = report.priority_stats[priority]
            print(
                f"  priority {priority}: attainment {stats['attainment']:.1%} "
                f"({stats['served']:.0f} served, {stats['shed']:.0f} shed)"
            )
    if args.autoscale:
        print(
            f"autoscaling: {len(report.scale_events)} scale events, "
            f"final {report.replicas_final} replicas"
        )
        for event in report.scale_events:
            print(
                f"  t={event['time_s'] * 1e3:8.2f} ms  "
                f"{event['replicas_before']} -> {event['replicas_after']} "
                f"({event['reason']}: util {event['utilization']:.0%}, "
                f"queue {event['queue_depth']:.1f})"
            )
    if args.rebalance:
        moved = sum(e["bytes"] for e in report.rebalance_events)
        print(
            f"rebalancing: {len(report.rebalance_events)} migrations, "
            f"{moved / 1e6:.2f} MB moved; final placement "
            f"{list(report.cluster_map_final)}"
        )
        for event in report.rebalance_events:
            print(
                f"  t={event['decided_s'] * 1e3:8.2f} ms  cluster "
                f"{event['cluster']}: shard {event['source']} -> "
                f"{event['dest']} ({event['vectors']} vectors, gap "
                f"{event['utilization_gap']:.0%}, lands "
                f"{event['complete_s'] * 1e3:.2f} ms)"
            )

    if args.flash and report.flash is not None:
        summary = report.flash
        print(
            f"flash: {summary['page_reads']} page reads, "
            f"{summary['refreshes']} refreshes, "
            f"{summary['total_erases']:.0f} erases, "
            f"WA {summary['write_amplification']:.2f} "
            f"({summary['nand_pages_written']} NAND / "
            f"{summary['host_pages_written']} host pages), "
            f"{summary['ecc_soft_decodes']} ECC soft decodes"
        )
        reads = summary["cluster_page_reads"]
        erases = summary["cluster_erases"]
        for cluster in sorted(reads, key=int):
            print(
                f"  cluster {cluster}: {reads[cluster]} page reads, "
                f"{erases.get(cluster, 0)} erases"
            )

    # ---- parity check: sharded vs. unsharded results --------------------
    print("\nparity check: sharded pool vs. unsharded NDSearch ...")
    sharded_ids, _, _ = router.search_all(pool, args.k)
    system = NDSearch(
        index=HNSWIndex(vectors, HNSWParams(M=8, ef_construction=48)),
        config=config,
    )
    unsharded_ids, _, _ = system.search_batch(pool, args.k)
    gt, _ = BruteForceIndex(vectors).search_batch(pool, args.k)
    recall_sharded = recall_at_k(sharded_ids, gt, args.k)
    recall_unsharded = recall_at_k(unsharded_ids, gt, args.k)
    diff = abs(recall_sharded - recall_unsharded)
    print(
        f"recall@{args.k}: sharded {recall_sharded:.4f}, "
        f"unsharded {recall_unsharded:.4f}, |diff| {diff:.2e}"
    )
    if args.mode == REPLICATED:
        if diff > 1e-6:
            print("FAIL: replicated sharding changed results", file=sys.stderr)
            return 1
        print("OK: replicated sharding matches unsharded recall to 1e-6")
    else:
        print("note: partitioned recall may differ (per-shard graphs)")
        # Recall-vs-nprobe: what selective probing trades away, per
        # step, against the broadcast (= nprobe = num_clusters) result.
        print("\nrecall vs nprobe (selective cluster probing):")
        for nprobe in range(1, router.num_clusters + 1):
            probe_ids, _, jobs = router.search_probed(pool, args.k, nprobe)
            probe_recall = recall_at_k(probe_ids, gt, args.k)
            probed = sum(int(job.rows.size) for job in jobs)
            print(
                f"  nprobe {nprobe}: recall@{args.k} {probe_recall:.4f} "
                f"({probed / pool.shape[0]:.2f} shards probed/query; "
                f"broadcast recall {recall_sharded:.4f}, "
                f"replicated baseline {recall_unsharded:.4f})"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
