"""Autoscaling: growing and shrinking the replica pool under load.

A static replica pool is sized for one operating point: provision for
the peak and the fleet idles off-peak; provision for the mean and
bursts shed.  The serving loop already records exactly the signals an
autoscaler needs — per-device busy time (the union of service
intervals each :class:`~repro.serving.device.ShardDevice` books) and
the queue depth observed at every arrival — so scaling decisions can
ride the same simulated clock as everything else.

:class:`Autoscaler` evaluates those signals over fixed *epochs* of
simulated time.  At each epoch boundary it compares the windowed mean
utilization of the active replicas and the windowed mean queue depth
against the policy thresholds and moves the active-replica count one
step at a time:

* **scale up** when utilization exceeds ``high_utilization`` *or* the
  queue is deeper than ``high_queue_depth`` (a queue can grow while
  devices look busy-but-not-saturated during a burst — either signal
  alone is too slow);
* **scale down** only when *both* utilization and queue depth sit
  below the low-water marks (never shed capacity into a backlog).

Scaling is replicated-mode only: replicas share one index, so a grown
pool serves identical results (:meth:`ShardRouter.add_replica`) and a
shrunk one leaves the routing rotation explicitly
(:meth:`ShardRouter.remove_replica`) while its device timeline drains.
Partitioned pools rebalance by *data movement* instead — cluster
migrations between shard devices (:mod:`repro.serving.rebalance`).

The frontend drives scaling from the event kernel: an
:class:`~repro.sim.events.EpochTick` fires at each epoch boundary and
calls :meth:`Autoscaler.decide` with the clock exactly at the boundary,
so the evaluation sees the device occupancy booked up to that simulated
instant.

Every decision that changes the pool is recorded as a
:class:`ScaleEvent` and lands in the :class:`ServingReport`, so sweeps
can correlate scale timing with tail latency and shed rate.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AutoscalePolicy:
    """Thresholds and bounds for epoch-based replica scaling."""

    min_replicas: int = 1
    max_replicas: int = 8
    interval_s: float = 0.05
    """Epoch length on the simulated clock: signals are windowed over,
    and the pool re-evaluated every, this long."""

    high_utilization: float = 0.80
    """Windowed mean utilization of active replicas above which the
    pool grows by one."""

    low_utilization: float = 0.30
    """Utilization below which the pool may shrink (queue must also be
    below ``low_queue_depth``)."""

    high_queue_depth: float = 16.0
    """Windowed mean queue depth above which the pool grows by one."""

    low_queue_depth: float = 2.0
    """Queue depth below which the pool may shrink."""

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if not 0.0 < self.high_utilization <= 1.0:
            raise ValueError("high_utilization must be in (0, 1]")
        if not 0.0 <= self.low_utilization < self.high_utilization:
            raise ValueError(
                "low_utilization must be in [0, high_utilization)"
            )
        if self.high_queue_depth < 0 or self.low_queue_depth < 0:
            raise ValueError("queue-depth thresholds must be >= 0")
        if self.low_queue_depth > self.high_queue_depth:
            raise ValueError(
                "low_queue_depth must not exceed high_queue_depth"
            )


@dataclass(frozen=True)
class ScaleEvent:
    """One replica-count change, with the signals that caused it."""

    time_s: float
    replicas_before: int
    replicas_after: int
    reason: str
    utilization: float
    queue_depth: float

    def to_dict(self) -> dict:
        """JSON-friendly form for reports and the benchmark sweep."""
        return {
            "time_s": self.time_s,
            "replicas_before": self.replicas_before,
            "replicas_after": self.replicas_after,
            "reason": self.reason,
            "utilization": self.utilization,
            "queue_depth": self.queue_depth,
        }


class Autoscaler:
    """Epoch-windowed scaling decisions over utilization + queue depth."""

    def __init__(self, policy: AutoscalePolicy) -> None:
        self.policy = policy
        self.events: list[ScaleEvent] = []
        self._epoch_end: float | None = None
        self._depth_sum = 0.0
        self._depth_count = 0
        self._busy_snapshot: list[float] = []
        self._busy_carry: list[float] = []
        """Per-device busy time committed beyond the evaluated epoch
        (bookings extend into the future); spent in later epochs so a
        long service interval is attributed to the epochs it actually
        spans instead of inflating the first one."""

    @property
    def epoch_end(self) -> float | None:
        """End of the armed epoch — where the event loop schedules the
        next :class:`~repro.sim.events.EpochTick` (``None`` until the
        first :meth:`decide` call arms the grid)."""
        return self._epoch_end

    def observe_depth(self, depth: int) -> None:
        """Record one arrival's queue depth into the current window."""
        self._depth_sum += depth
        self._depth_count += 1

    def decide(
        self, now: float, active: int, busy_s: list[float]
    ) -> int:
        """Re-evaluate the pool; returns the new active-replica count.

        ``busy_s`` is each device's cumulative busy time (active
        devices first); the window's utilization is the per-epoch delta
        averaged over the active replicas.  Call on every event — the
        method is a no-op until the current epoch ends, and steps
        through multiple elapsed epochs after a long arrival gap (each
        step re-windows, so one quiet gap sheds at most one replica per
        elapsed epoch).
        """
        if self._epoch_end is None:
            self._epoch_end = now + self.policy.interval_s
            self._busy_snapshot = list(busy_s)
            self._busy_carry = [0.0] * len(busy_s)
            return active
        while now >= self._epoch_end:
            active = self._evaluate(self._epoch_end, active, busy_s)
            self._epoch_end += self.policy.interval_s
        return active

    def _evaluate(self, at: float, active: int, busy_s: list[float]) -> int:
        while len(self._busy_snapshot) < len(busy_s):
            self._busy_snapshot.append(0.0)
            self._busy_carry.append(0.0)
        window = self.policy.interval_s
        # `active` can exceed len(busy_s) mid-catch-up (a scale-up this
        # call: the frontend grows the device list only after decide()
        # returns); replicas without a device yet are idle by
        # definition and contribute zero busy time.
        known = min(active, len(busy_s))
        busy = 0.0
        for i in range(len(busy_s)):
            raw = busy_s[i] - self._busy_snapshot[i] + self._busy_carry[i]
            # Busy time is booked at dispatch and can extend past the
            # epoch boundary; the clamp keeps a saturated device at
            # 1.0 for this epoch and the excess carries into the
            # epochs the committed work actually spans.  Inactive
            # replicas keep draining on the same arithmetic — their
            # occupancy just does not count toward the pool signal.
            spent = min(raw, window)
            self._busy_carry[i] = raw - spent
            self._busy_snapshot[i] = busy_s[i]
            if i < known:
                busy += spent
        utilization = busy / (active * window) if active else 0.0
        depth = (
            self._depth_sum / self._depth_count if self._depth_count else 0.0
        )
        self._depth_sum = 0.0
        self._depth_count = 0

        target, reason = active, None
        if active < self.policy.max_replicas and (
            utilization > self.policy.high_utilization
            or depth > self.policy.high_queue_depth
        ):
            target = active + 1
            reason = (
                "high utilization"
                if utilization > self.policy.high_utilization
                else "deep queue"
            )
        elif (
            active > self.policy.min_replicas
            and utilization < self.policy.low_utilization
            and depth < self.policy.low_queue_depth
        ):
            target, reason = active - 1, "idle capacity"
        if reason is not None:
            self.events.append(
                ScaleEvent(
                    time_s=at,
                    replicas_before=active,
                    replicas_after=target,
                    reason=reason,
                    utilization=utilization,
                    queue_depth=depth,
                )
            )
        return target
