"""The serving frontend: composable handlers over the event kernel.

This is the orchestrator-over-simulator layer: requests arrive on a
simulated clock, flow through admission control, the result cache, the
request coalescer and the dynamic batcher, and closed batches are
served by shard devices whose *stage occupancy* comes from the
trace-driven platform simulators (the phase timeline each
:class:`~repro.sim.stats.SimResult` carries).  Nothing waits on the
wall clock, so a minute of simulated heavy traffic runs in seconds and
every run is exactly reproducible.

Control flow runs on the discrete-event kernel
(:class:`~repro.sim.events.EventLoop`): each concern is an event
source/subscriber instead of an inlined branch of a master loop —

* **Arrivals** — the request stream is scheduled up front; the arrival
  handler runs coalescing, the cache, admission and the batcher offer.
* **Batch deadlines** — the batcher's close deadline is a
  :class:`~repro.sim.events.BatchDeadline` timer with lazy
  invalidation: any change to the queued batch bumps a generation
  counter, stale timers no-op on delivery.  Timed policies fire
  *before* same-instant arrivals; the greedy policy's zero-wait timer
  is scheduled with :data:`~repro.sim.events.AFTER_ARRIVALS` so
  same-instant arrivals join the batch first.
* **Completions** — every dispatch schedules
  :class:`~repro.sim.events.Completion` events at the batch's join
  times; the handler retires in-service counts and coalescer entries
  at their exact simulated moment.
* **Epochs** — the autoscaler (replicated pools) or the rebalancer
  (partitioned pools) evaluates on
  :class:`~repro.sim.events.EpochTick` boundaries anchored at the
  first arrival.
* **Data movement** — a cluster migration books its read/write on the
  source/destination device timelines and commits the routing flip
  when its :class:`~repro.sim.events.DataMovement` event fires.
* **Stream end** — a :class:`~repro.sim.events.StreamEnd` event after
  the last arrival flushes stragglers at the pending deadline's real
  time and stops the epoch clocks.
* **Observability** — strictly observe-only taps
  (:mod:`repro.obs`): an optional span tracer (constructor argument)
  records request/batch/stage/migration lifecycles for Chrome-trace
  export, ``ServingConfig.metrics_window_s`` closes metrics on
  event-time windows (``report.timeseries``), and the kernel's
  per-event-type dispatch counts always land in
  ``report.counters["loop_events_*"]``.  None of it feeds back into
  scheduling — the parity digests pin traced == untraced.

Event-loop invariants (encoded in the kernel's same-instant ranks):

* A batcher deadline expiring at time ``t`` closes its batch before an
  arrival at ``t`` is offered (timeout closes happen at their exact
  simulated time); under greedy, arrivals at exactly ``t`` join first.
* Shard devices are :class:`~repro.serving.device.ShardDevice`
  pipelines: a batch closed at time ``t`` enters the device's first
  stage no earlier than ``max(t, entry-stage free)`` and each stage
  queues FIFO per resource, so batch N+1's read/MAC work overlaps
  batch N's sort/output drain.  ``ServingConfig(pipelined=False)``
  restores the classic one-batch-at-a-time device.  Replicated mode
  picks the shard that can start earliest; partitioned mode fans out
  to IVF clusters and joins per query — a broadcast batch completes at
  the slowest cluster, and with ``ServingConfig(nprobe=n)`` each query
  goes only to its ``n`` nearest clusters
  (:meth:`~repro.serving.sharding.ShardRouter.search_probed`) and
  completes at the slowest of *its* probed clusters, so requests in
  one batch can have different completion times.
* Identical in-flight queries coalesce (:class:`Coalescer`): a request
  whose query is already queued (or already dispatched but not yet
  completed) piggybacks on the leader's batch and completes with it —
  one search serves all followers.  Coalescing runs *before* admission
  and the cache: followers are answered work, not queue load, so they
  are never shed, and while a search is in flight repeats complete
  with it rather than reading its future results out of the cache (the
  cache is written at dispatch time, so an in-flight entry holds
  results that do not causally exist yet).
* The result cache is consulted *before* admission: a hit is answered
  from host DRAM and never enters the system, so it neither consumes
  admission capacity nor can be shed.
* Admission counts the whole system — batcher queue plus dispatched
  but incomplete requests — so shedding reflects true backlog, not
  just the waiting room.  With ``priority_admission=True`` a rejected
  arrival that is more urgent than the least urgent *queued* request
  preempts it instead (the victim is shed in its place).
* Under the ``slo`` batch policy, the batcher's close deadline comes
  from drain-time prediction: a :class:`~repro.serving.slo.ServiceModel`
  calibrated on every dispatched batch estimates a candidate batch's
  stage chain, and the shard devices dry-run it against their FIFO
  state (:meth:`~repro.serving.device.ShardDevice.predict`).
* With ``autoscale=AutoscalePolicy(...)`` (replicated mode only) an
  :class:`~repro.serving.autoscale.Autoscaler` re-evaluates the active
  replica count at every epoch tick; grown replicas share the corpus
  index (:meth:`~repro.serving.sharding.ShardRouter.add_replica`),
  shrunk ones leave the routing rotation explicitly
  (:meth:`~repro.serving.sharding.ShardRouter.remove_replica`) while
  their device timelines drain.
* With ``rebalance=RebalancePolicy(...)`` (partitioned mode only) a
  :class:`~repro.serving.rebalance.Rebalancer` watches per-device load
  skew and migrates IVF clusters from hot to cold devices: the data
  movement is booked on both device timelines (it queues behind, and
  delays, query batches) and the cluster→device map flips atomically
  at the migration-complete event.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.obs.trace import NullTracer, Tracer
from repro.obs.windows import WindowedMetrics
from repro.serving.admission import AdmissionController, select_victim
from repro.serving.autoscale import AutoscalePolicy, Autoscaler
from repro.serving.batcher import GREEDY, SLO, BatchPolicy, DynamicBatcher
from repro.serving.cache import ResultCache
from repro.serving.device import ShardDevice
from repro.serving.metrics import MetricsCollector, ServingReport
from repro.serving.rebalance import Migration, RebalancePolicy, Rebalancer
from repro.serving.request import (
    CACHE_HIT,
    COALESCED,
    COMPLETED,
    SHED,
    Request,
)
from repro.serving.sharding import PARTITIONED, REPLICATED, ShardRouter
from repro.serving.slo import ServiceModel
from repro.serving.storage import FlashBackedStore, FlashConfig
from repro.sim.events import (
    AFTER_ARRIVALS,
    Arrival,
    BatchDeadline,
    Completion,
    DataMovement,
    EpochTick,
    EventLoop,
    FlashMaintenance,
    StreamEnd,
)
from repro.sim.snapshot import (
    SNAPSHOT_VERSION,
    Snapshot,
    capture_loop,
    clone_state,
    restore_loop,
    state_digest,
)


class Coalescer:
    """Deduplicates identical in-flight queries.

    Tracks two kinds of leaders: *queued* (still in the batcher; their
    followers resolve at dispatch) and *dispatched* (results priced but
    not yet back; followers resolve immediately against the pending
    entry).  Entries retire once their completion time passes — from
    then on the result cache answers repeats.
    """

    def __init__(self, observe) -> None:
        self._observe = observe
        """Metrics callback invoked once per resolved follower."""

        self._queued_leader: dict[int, Request] = {}
        self._followers: dict[int, list[Request]] = {}
        # query_id -> (completion_s, ids_row, dists_row, searched_k)
        self._inflight: dict[int, tuple[float, np.ndarray, np.ndarray, int]] = {}
        self._retire_heap: list[tuple[float, int]] = []

    def try_coalesce(self, request: Request, now: float) -> bool:
        """Piggyback ``request`` on an identical in-flight query, if any.

        A dispatched-but-incomplete search is preferred (it finishes
        soonest); otherwise the request attaches to a queued leader.
        The follower must not want more results than the leader's
        search produces.
        """
        entry = self._inflight.get(request.query_id)
        if entry is not None:
            completion, _, _, searched_k = entry
            if completion > now and request.k <= searched_k:
                self._resolve(request, entry)
                return True
        leader = self._queued_leader.get(request.query_id)
        if leader is not None and request.k <= leader.k:
            self._followers.setdefault(leader.request_id, []).append(request)
            return True
        return False

    def note_queued(self, request: Request) -> None:
        """``request`` entered the batcher; it can lead followers.

        The widest-k queued request leads: its search covers every
        narrower duplicate, so later arrivals coalesce instead of
        re-searching.
        """
        leader = self._queued_leader.get(request.query_id)
        if leader is None or request.k > leader.k:
            self._queued_leader[request.query_id] = request

    def on_dispatch(
        self,
        request: Request,
        ids_row: np.ndarray,
        dists_row: np.ndarray,
        searched_k: int,
        completion: float,
    ) -> None:
        """A batch member's results are priced: resolve its followers
        and open the dispatched-entry piggyback window."""
        if self._queued_leader.get(request.query_id) is request:
            del self._queued_leader[request.query_id]
        entry = (completion, ids_row, dists_row, searched_k)
        for follower in self._followers.pop(request.request_id, ()):
            self._resolve(follower, entry)
        self._inflight[request.query_id] = entry
        heapq.heappush(self._retire_heap, (completion, request.query_id))

    def retire(self, now: float) -> None:
        """Drop dispatched entries whose results have landed."""
        while self._retire_heap and self._retire_heap[0][0] <= now:
            completion, query_id = heapq.heappop(self._retire_heap)
            entry = self._inflight.get(query_id)
            if entry is not None and entry[0] <= completion:
                del self._inflight[query_id]

    def has_followers(self, request: Request) -> bool:
        """Whether ``request`` leads coalesced followers (and so must
        not be preempted — its followers would dangle unresolved)."""
        return bool(self._followers.get(request.request_id))

    def forget_queued(self, request: Request) -> None:
        """``request`` left the batcher without dispatching (preempted);
        stop offering it as a coalescing leader."""
        if self._queued_leader.get(request.query_id) is request:
            del self._queued_leader[request.query_id]

    def _resolve(self, request: Request, entry) -> None:
        completion, ids, dists, _ = entry
        request.completion_s = completion
        request.outcome = COALESCED
        request.result_ids = ids[: request.k].copy()
        request.result_dists = dists[: request.k].copy()
        self._observe(request)


@dataclass(frozen=True)
class ServingConfig:
    """Frontend knobs (the batch policy rides in ``policy``)."""

    policy: BatchPolicy = field(default_factory=BatchPolicy)
    cache_capacity: int = 1024
    cache_hit_latency_s: float = 20e-6
    """Host hash-map lookup + response serialisation for a cache hit."""

    admission_capacity: int | None = None
    """Max requests in the system (queued + in service); None = unbounded."""

    pipelined: bool = True
    """Overlap consecutive batches on a shard's pipeline stages; False
    restores the blocking one-batch-at-a-time device."""

    coalesce: bool = True
    """Piggyback identical in-flight queries on the leader's batch."""

    nprobe: int | None = None
    """Partitioned mode only: route each query to its ``nprobe``
    nearest clusters (IVF nprobe at the device-pool level) instead of
    broadcasting.  ``None`` keeps the broadcast fan-out;
    ``nprobe = num_clusters`` reproduces broadcast results exactly."""

    priority_admission: bool = False
    """Shed lowest-priority / latest-deadline work first: a rejected
    arrival preempts a strictly less urgent queued request instead of
    being shed itself (see :mod:`repro.serving.admission`)."""

    autoscale: AutoscalePolicy | None = None
    """Replicated mode only: grow/shrink the active replica pool every
    ``interval_s`` epoch from windowed utilization and queue depth
    (see :mod:`repro.serving.autoscale`).  ``None`` keeps the pool
    static."""

    rebalance: RebalancePolicy | None = None
    """Partitioned mode only: migrate IVF clusters from hot to cold
    shard devices every ``interval_s`` epoch when windowed utilization
    skew exceeds the policy threshold (see
    :mod:`repro.serving.rebalance`).  ``None`` keeps the placement
    static."""

    flash: FlashConfig | None = None
    """Serve through stateful NAND: every shard device gets a live
    :class:`~repro.serving.storage.FlashBackedStore` (FTL + ECC +
    timing).  Cluster reads accumulate read-disturb and schedule
    :class:`~repro.sim.events.FlashMaintenance` refreshes whose GC
    pauses are booked on the device FIFOs, ECC retry storms stretch
    completions, and rebalance migrations charge program/erase through
    the FTL.  ``None`` (the default) keeps the stateless analytic
    storage pricing — runs are byte-identical to the pinned parity
    digests."""

    metrics_window_s: float | None = None
    """Close metrics on simulated event-time windows of this width
    (:class:`~repro.obs.windows.WindowedMetrics`): the report gains a
    ``timeseries`` surface — per-window arrivals/completions/sheds,
    queue depth, batch sizes, latency percentiles and per-device
    utilization.  ``None`` (the default) keeps the scalar-only report.
    Observe-only: enabling windows never changes a run's behavior."""


class ServingFrontend:
    """Runs a request stream against a shard router, collecting metrics."""

    def __init__(
        self,
        router: ShardRouter,
        config: ServingConfig | None = None,
        tracer: Tracer | None = None,
    ):
        self.router = router
        self.config = config or ServingConfig()
        self.tracer: Tracer = tracer if tracer is not None else NullTracer()
        """Span sink for request/batch/stage/migration lifecycles.  The
        default :class:`~repro.obs.trace.NullTracer` records nothing;
        pass a :class:`~repro.obs.trace.SpanTracer` to export a Chrome
        trace.  Strictly observe-only either way — the parity suite
        pins that a traced run is byte-identical to an untraced one."""

        self.windows: WindowedMetrics | None = (
            WindowedMetrics(self.config.metrics_window_s)
            if self.config.metrics_window_s is not None
            else None
        )
        if self.config.nprobe is not None:
            if router.mode != PARTITIONED:
                raise ValueError("nprobe requires a partitioned router")
            if not 1 <= self.config.nprobe <= router.num_clusters:
                raise ValueError(
                    f"nprobe must be in [1, {router.num_clusters}], "
                    f"got {self.config.nprobe}"
                )
            if router.centroids is None:
                raise ValueError(
                    "nprobe requires a router built with routing centroids"
                )
        self.service_model = ServiceModel()
        self.batcher = DynamicBatcher(
            self.config.policy, predictor=self.predict_completion
        )
        self.cache = ResultCache(self.config.cache_capacity)
        self.admission = AdmissionController(self.config.admission_capacity)
        self.metrics = MetricsCollector(router.num_shards, windows=self.windows)
        self.devices = [
            self._make_device(i) for i in range(router.num_shards)
        ]
        # Stateful flash: one live store per device, frontend-owned
        # (the router's cached artifacts stay immutable under serving).
        self.stores: list[FlashBackedStore] | None = None
        if self.config.flash is not None:
            self.stores = [
                FlashBackedStore(self.config.flash, i)
                for i in range(len(self.devices))
            ]
            self._seed_flash_placement()
        self.autoscaler: Autoscaler | None = None
        self._active = router.num_shards
        if self.config.autoscale is not None:
            if router.mode != REPLICATED:
                raise ValueError(
                    "autoscaling requires a replicated router (partitioned "
                    "pools rebalance by data movement instead — see "
                    "ServingConfig.rebalance)"
                )
            if router.num_shards > self.config.autoscale.max_replicas:
                raise ValueError(
                    f"router has {router.num_shards} replicas but the "
                    f"autoscale policy caps the pool at "
                    f"{self.config.autoscale.max_replicas}; raise "
                    f"max_replicas or build a smaller pool"
                )
            self.autoscaler = Autoscaler(self.config.autoscale)
            self._active = max(
                router.num_shards, self.config.autoscale.min_replicas
            )
            self._grow_pool(self._active)
        self.rebalancer: Rebalancer | None = None
        if self.config.rebalance is not None:
            if router.mode != PARTITIONED:
                raise ValueError(
                    "rebalancing requires a partitioned router (replicated "
                    "pools autoscale instead — see ServingConfig.autoscale)"
                )
            self.rebalancer = Rebalancer(
                self.config.rebalance, router.num_shards, router.num_clusters
            )
        self._in_service_total = 0
        self.coalescer = Coalescer(self._observe_coalesced)
        # Per-run event-loop state (populated by stream_begin()).
        self._loop: EventLoop | None = None
        self._timer_gen = 0
        self._draining = False
        self._epoch_armed = False
        self._last_arrival_s = 0.0
        self._batch_seq = 0
        self._kernel_tid = 0
        self._arrival_queue: list[Request] = []
        self._arrival_next = 0
        self._arrival_pending = False
        """Whether an Arrival event is in the heap whose handler will
        chain the rest of ``_arrival_queue`` (see stream_extend)."""

    def _make_device(self, index: int) -> ShardDevice:
        """Build shard device ``index`` with its observability taps."""
        device = ShardDevice(pipelined=self.config.pipelined)
        device.tracer = self.tracer
        device.trace_pid = index + 1  # pid 0 is the frontend process
        if self.tracer.enabled:
            self.tracer.process(device.trace_pid, f"shard {index}")
        if self.windows is not None:
            device.busy_observer = (
                lambda start, end, name=f"shard{index}":
                    self.windows.add_interval(name, start, end)
            )
        return device

    def run(
        self, requests: list[Request], query_pool: np.ndarray
    ) -> ServingReport:
        """Serve a request stream drawn from ``query_pool``.

        ``query_pool`` is the (pool_size, dim) array the requests'
        ``query_id`` fields index into.  Requests are mutated in place
        (timestamps, outcomes, results) and summarised in the returned
        report.

        The stream becomes a schedule of typed events on a fresh
        :class:`~repro.sim.events.EventLoop`; every other concern
        (deadlines, completions, epochs, migrations) schedules its own
        events as the run unfolds, and the loop drains them in
        deterministic ``(time, rank, seq)`` order.

        ``run`` is the one-shot composition of the streaming primitives
        (:meth:`stream_begin` → :meth:`stream_extend` →
        :meth:`stream_finish`); the twin
        (:mod:`repro.serving.twin`) drives them incrementally instead,
        with :meth:`stream_step` and :meth:`snapshot` between windows.
        """
        calibrate_k = max(r.k for r in requests) if requests else None
        self.stream_begin(query_pool, calibrate_k=calibrate_k)
        self.stream_extend(requests)
        return self.stream_finish()

    # ---- streaming session ----------------------------------------------
    def stream_begin(
        self, query_pool: np.ndarray, calibrate_k: int | None = None
    ) -> None:
        """Open a streaming session: fresh event loop, subscriptions,
        tracer wiring and an empty arrival queue.

        ``calibrate_k`` primes the ``slo`` service model before the
        first arrival (pass the stream's widest ``k``); ``None`` skips
        calibration — a restored session inherits its snapshot's
        already-calibrated model.
        """
        self._pool = np.ascontiguousarray(query_pool, dtype=np.float32)
        if (
            self.config.policy.mode == SLO
            and not self.service_model.calibrated
            and calibrate_k is not None
        ):
            self._calibrate(self._pool, calibrate_k)
        loop = EventLoop()
        self._loop = loop
        self._timer_gen += 1
        self._draining = False
        self._epoch_armed = False
        if self.tracer.enabled:
            self.tracer.process(0, "serving.frontend")
            self._kernel_tid = self.tracer.thread(0, "kernel")
            loop.observer = self._trace_kernel_event
        loop.subscribe(Arrival, self._on_arrival)
        loop.subscribe(BatchDeadline, self._on_batch_deadline)
        loop.subscribe(Completion, self._on_completion)
        loop.subscribe(EpochTick, self._on_epoch_tick)
        loop.subscribe(DataMovement, self._on_data_movement)
        # Subscribed unconditionally (harmless: the events are only
        # ever scheduled when ServingConfig.flash is set).
        loop.subscribe(FlashMaintenance, self._on_flash_maintenance)
        loop.subscribe(StreamEnd, self._on_stream_end)
        self._arrival_queue = []
        self._arrival_next = 0
        self._arrival_pending = False
        self._last_arrival_s = 0.0

    def stream_extend(self, requests: list[Request]) -> None:
        """Append arrivals to the open session's stream.

        Chained arrival injection: only the head of the (sorted)
        stream sits in the heap; each arrival's handler injects its
        successor.  Arrivals are the only rank-40 events, so chaining
        preserves their relative order exactly while keeping the heap
        at O(in-flight timers) instead of O(total requests) — per-push
        sift cost no longer scales with stream length.  If the chain
        has dried (every queued arrival was delivered), extending
        re-primes it.

        Arrivals stream forward only: the new batch must not start
        before the last already-queued arrival, nor before the loop's
        current clock.
        """
        ordered = sorted(requests, key=lambda r: r.arrival_s)
        if not ordered:
            return
        loop = self._loop
        if (
            self._arrival_queue
            and ordered[0].arrival_s < self._arrival_queue[-1].arrival_s
        ):
            raise ValueError(
                f"arrival at {ordered[0].arrival_s!r} precedes the queued "
                f"stream's last arrival at "
                f"{self._arrival_queue[-1].arrival_s!r}"
            )
        if ordered[0].arrival_s < loop.now:
            raise ValueError(
                f"arrival at {ordered[0].arrival_s!r} is in the past: "
                f"the clock is already at {loop.now!r}"
            )
        self._arrival_queue.extend(ordered)
        self._last_arrival_s = self._arrival_queue[-1].arrival_s
        if not self._arrival_pending:
            head = self._arrival_queue[self._arrival_next]
            self._arrival_next += 1
            self._arrival_pending = True
            loop.schedule(Arrival(time=head.arrival_s, payload=head))

    def stream_step(self, until: float) -> int:
        """Drain events up to simulated time ``until`` (inclusive);
        returns the number processed.  Events beyond ``until`` stay
        pending — a window boundary, not an end."""
        return self._loop.run(until)

    def stream_finish(self) -> ServingReport:
        """Close the session: flush stragglers via ``StreamEnd``, drain
        the loop, and fold the final counters into the report."""
        loop = self._loop
        # max() covers a session stepped past its last arrival: the
        # clock may already stand beyond it, and events never travel
        # into the past.
        loop.schedule(StreamEnd(time=max(self._last_arrival_s, loop.now)))
        loop.run()
        # Kernel-level observability: per-event-type dispatch counts
        # fold into the report's counters (loop_events_*).
        self.metrics.set_event_counts(loop.counts)
        # Utilization comes from true device occupancy (overlapped
        # pipeline stages count once), not summed batch makespans.
        self.metrics.set_shard_busy([d.busy_s for d in self.devices])
        if self.autoscaler is not None:
            self.metrics.set_scaling(
                [event.to_dict() for event in self.autoscaler.events],
                self._active,
            )
        if self.rebalancer is not None:
            self.metrics.set_rebalance(
                [m.to_dict() for m in self.rebalancer.migrations],
                list(self.router.cluster_shard),
            )
        if self.stores is not None:
            self.metrics.set_flash(self._flash_summary())
        return self.metrics.report()

    @property
    def stream_requests(self) -> list[Request]:
        """The session's arrival stream in time order — including every
        already-delivered request (a restored session holds its own
        deep copies; digest those, not the originals)."""
        return list(self._arrival_queue)

    # ---- snapshot / restore ----------------------------------------------
    # Wiring vs. state: callables (handlers, observers, tracer taps,
    # the batcher's predictor) close over live objects and are excluded
    # from capture; restore re-creates them through stream_begin /
    # _make_device and re-binds the rest.  Immutable build artifacts
    # (the query pool, backend indexes, global-ID maps, centroids) are
    # shared by reference — they never change under serving, so copying
    # them would only burn memory without buying isolation.

    def _snapshot_shared(self) -> list:
        """Objects referenced, never copied, by snapshot state."""
        shared: list = [self._pool]
        shared.extend(self.router.backends)
        if self.router.global_ids is not None:
            shared.append(self.router.global_ids)
        if self.router.centroids is not None:
            shared.append(self.router.centroids)
        return shared

    def snapshot(self, kind: str = "window") -> Snapshot:
        """Freeze the open streaming session's full simulation state.

        Captures the event loop (clock, heap, seq/dispatch counters),
        every handler's state (batcher queue, coalescer tables, cache,
        admission ledger, service model, windowed metrics, collector),
        per-device stage FIFOs and booked work, the router's mutable
        placement (replica count / cluster→shard map), the opt-in
        flash stores, and the epoch controllers — one
        :func:`~repro.sim.snapshot.clone_state` pass, so objects shared
        across those structures (a request in the batcher *and* in a
        pending heap event) stay shared in the copy.  The result is
        immutable and restorable any number of times.
        """
        state = {
            "mode": self.router.mode,
            "loop": capture_loop(self._loop),
            "frontend": {
                "timer_gen": self._timer_gen,
                "draining": self._draining,
                "epoch_armed": self._epoch_armed,
                "last_arrival_s": self._last_arrival_s,
                "batch_seq": self._batch_seq,
                "in_service_total": self._in_service_total,
                "active": self._active,
                "arrival_queue": self._arrival_queue,
                "arrival_next": self._arrival_next,
                "arrival_pending": self._arrival_pending,
            },
            "batcher": {
                key: value
                for key, value in vars(self.batcher).items()
                if key != "predictor"
            },
            "coalescer": {
                key: value
                for key, value in vars(self.coalescer).items()
                if key != "_observe"
            },
            "cache": self.cache,
            "admission": self.admission,
            "service_model": self.service_model,
            "windows": self.windows,
            "metrics": {
                key: value
                for key, value in vars(self.metrics).items()
                if key != "windows"
            },
            "devices": [
                {
                    key: value
                    for key, value in vars(device).items()
                    if key not in (
                        "tracer", "busy_observer", "trace_pid",
                        "_predict_scratch",
                    )
                }
                for device in self.devices
            ],
            "router": {
                "num_backends": len(self.router.backends),
                "cluster_shard": (
                    [int(s) for s in self.router.cluster_shard]
                    if self.router.cluster_shard is not None
                    else None
                ),
            },
            "stores": self.stores,
            "autoscaler": self.autoscaler,
            "rebalancer": self.rebalancer,
        }
        state = clone_state(state, shared=self._snapshot_shared())
        # The batch span counter only advances when a tracer is
        # attached.  It is captured (a resumed traced session keeps its
        # span IDs unique) but excluded from the content address, so
        # attaching observability never changes a snapshot digest — or
        # a twin cache key derived from one.
        digest_view = dict(state)
        digest_view["frontend"] = {
            key: value
            for key, value in state["frontend"].items()
            if key != "batch_seq"
        }
        return Snapshot(
            version=SNAPSHOT_VERSION,
            kind=kind,
            time=self._loop.now,
            state=state,
            digest=state_digest(digest_view),
        )

    def restore(self, snapshot: Snapshot, query_pool: np.ndarray) -> None:
        """Load a :meth:`snapshot` into this frontend and leave the
        session open (continue with :meth:`stream_extend` /
        :meth:`stream_step` / :meth:`stream_finish`).

        The frontend must be built over an equivalent deployment: same
        router mode and cluster count, same flash and metrics-window
        opt-ins, and the same ``query_pool`` content.  Running the
        restored session forward is byte-identical to the run the
        snapshot was taken from — the twin's what-if forks then apply
        their deltas (config changes only affect *future* decisions)
        before replaying the suffix.  The snapshot itself is never
        mutated: restoring deep-copies again, so repeated restores
        from one checkpoint are independent.
        """
        if snapshot.version != SNAPSHOT_VERSION:
            raise ValueError(
                f"snapshot version {snapshot.version} != "
                f"supported {SNAPSHOT_VERSION}"
            )
        frozen = snapshot.state
        if frozen["mode"] != self.router.mode:
            raise ValueError(
                f"snapshot router mode {frozen['mode']!r} != "
                f"this router's {self.router.mode!r}"
            )
        if (frozen["stores"] is None) != (self.stores is None):
            raise ValueError(
                "flash configuration mismatch: snapshot and frontend "
                "must both (or neither) serve through stateful flash"
            )
        if (frozen["windows"] is None) != (self.windows is None):
            raise ValueError(
                "metrics-window configuration mismatch: snapshot and "
                "frontend must agree on ServingConfig.metrics_window_s"
            )
        # Fresh loop + subscriptions + tracer wiring, then overwrite
        # the loop's state with the captured clock/heap/counters.
        self.stream_begin(query_pool)
        state = clone_state(frozen, shared=self._snapshot_shared())
        restore_loop(self._loop, state["loop"])
        fe = state["frontend"]
        self._timer_gen = fe["timer_gen"]
        self._draining = fe["draining"]
        self._epoch_armed = fe["epoch_armed"]
        self._last_arrival_s = fe["last_arrival_s"]
        self._batch_seq = fe["batch_seq"]
        self._in_service_total = fe["in_service_total"]
        self._active = fe["active"]
        self._arrival_queue = fe["arrival_queue"]
        self._arrival_next = fe["arrival_next"]
        self._arrival_pending = fe["arrival_pending"]
        for key, value in state["batcher"].items():
            setattr(self.batcher, key, value)
        self.batcher.predictor = self.predict_completion
        for key, value in state["coalescer"].items():
            setattr(self.coalescer, key, value)
        self.cache = state["cache"]
        self.admission = state["admission"]
        self.service_model = state["service_model"]
        if state["windows"] is not None:
            self.windows = state["windows"]
        for key, value in state["metrics"].items():
            setattr(self.metrics, key, value)
        self.metrics.windows = self.windows
        # Devices: grow through _make_device so each gets its tracer /
        # busy-observer wiring, then overwrite the captured state.
        captured_devices = state["devices"]
        while len(self.devices) < len(captured_devices):
            self.devices.append(self._make_device(len(self.devices)))
        del self.devices[len(captured_devices):]
        for device, dev_state in zip(self.devices, captured_devices):
            for key, value in dev_state.items():
                setattr(device, key, value)
        self.metrics.ensure_shards(len(self.devices))
        router_state = state["router"]
        if self.router.mode == REPLICATED:
            while len(self.router.backends) < router_state["num_backends"]:
                self.router.add_replica()
            while len(self.router.backends) > router_state["num_backends"]:
                self.router.remove_replica()
        elif len(self.router.backends) != router_state["num_backends"]:
            raise ValueError(
                f"snapshot has {router_state['num_backends']} clusters; "
                f"this router has {len(self.router.backends)}"
            )
        if router_state["cluster_shard"] is not None:
            for cluster, shard in enumerate(router_state["cluster_shard"]):
                self.router.cluster_shard[cluster] = shard
        if state["stores"] is not None:
            self.stores = state["stores"]
        self.autoscaler = state["autoscaler"]
        self.rebalancer = state["rebalancer"]

    # ---- event handlers --------------------------------------------------
    def _on_arrival(self, event: Arrival) -> None:
        request: Request = event.payload
        now = event.time
        nxt = self._arrival_next
        if nxt < len(self._arrival_queue):
            self._arrival_next = nxt + 1
            successor = self._arrival_queue[nxt]
            self._loop.schedule(
                Arrival(time=successor.arrival_s, payload=successor)
            )
        else:
            # Chain dried: stream_extend must re-prime on new arrivals.
            self._arrival_pending = False
        if not self._epoch_armed:
            self._arm_epochs(now)
        depth = len(self.batcher) + self._in_service_count()
        self.metrics.observe_arrival(request, depth)
        if self.windows is not None:
            self.windows.inc("arrivals", now)
            self.windows.sample("queue_depth", now, float(depth))
        if self.tracer.enabled:
            self.tracer.async_begin(
                "request", "request", request.request_id, now,
                args={
                    "query_id": request.query_id,
                    "k": request.k,
                    "priority": request.priority,
                },
            )
            self.tracer.counter("queue", now, {"depth": depth})
        if self.autoscaler is not None:
            self.autoscaler.observe_depth(depth)
        # Coalescing precedes admission and the cache: a follower
        # adds no queue load (so it is never shed), and while its
        # query's search is in flight the causally-correct answer
        # is to complete *with* it, not to read its future results
        # out of the dispatch-time cache write.
        if self.config.coalesce and self.coalescer.try_coalesce(
            request, now
        ):
            return
        # The cache precedes admission: a hit is answered from host
        # DRAM and never enters the system, so it cannot be shed
        # (and must not preempt queued work to be answered).
        cached = self.cache.lookup(request.query_id, request.k)
        if cached is not None:
            request.result_ids, request.result_dists = cached
            request.completion_s = now + self.config.cache_hit_latency_s
            request.outcome = CACHE_HIT
            self.metrics.observe_cache_hit(request)
            if self.windows is not None:
                self.windows.inc("cache_hits", request.completion_s)
                self.windows.observe(
                    "latency_s", request.completion_s, request.latency_s
                )
            if self.tracer.enabled:
                self.tracer.async_end(
                    "request", "request", request.request_id,
                    request.completion_s, args={"outcome": CACHE_HIT},
                )
            return
        if not self.admission.admit(depth):
            if not self._try_preempt(request):
                request.outcome = SHED
                self.metrics.observe_shed(request)
                self._observe_shed_obs(request, now)
                return
        if self.config.coalesce:
            self.coalescer.note_queued(request)
        batch = self.batcher.offer(request)
        if batch is not None:
            self._dispatch(batch, close_time=now)
        # The queued batch changed: invalidate the standing deadline
        # timer and schedule a fresh one.  An urgent arrival can make
        # the slo deadline immediately due (or, with max_wait_s=0, its
        # own wait expires at arrival) — the new timer then fires at
        # this same instant, before the next arrival.
        self._refresh_deadline_timer()

    def _on_batch_deadline(self, event: BatchDeadline) -> None:
        if event.generation != self._timer_gen or self._draining:
            return  # stale timer: the batch it was armed for changed
        deadline = self.batcher.deadline()
        if deadline is None:
            return
        now = self._loop.now
        if self.batcher.policy.mode == GREEDY:
            # Same-instant arrivals have already been delivered (the
            # timer rides AFTER_ARRIVALS), so the batch is complete;
            # zero wait is the policy, not a timer expiring, so this
            # close does not count as a timeout.
            batch = self.batcher.flush()
            if batch is not None:
                self._dispatch(batch, close_time=deadline)
        elif not self.batcher.expired(now, deadline):
            # The deadline moved later than this timer (defensive —
            # reachable only if device state shifted under an armed
            # slo timer without a generation bump).
            self._refresh_deadline_timer()
            return
        else:
            batch = self.batcher.poll(now, deadline)
            if batch is not None:
                self._dispatch(
                    batch, close_time=deadline, timeout_closed=True
                )
        self._refresh_deadline_timer()

    def _on_completion(self, event: Completion) -> None:
        self._in_service_total -= event.payload
        # Results that have landed are no longer coalescing targets —
        # from now on the cache answers repeats of these queries.
        self.coalescer.retire(self._loop.now)

    def _on_epoch_tick(self, event: EpochTick) -> None:
        if self._draining:
            return  # the stream ended; let the epoch clock stop
        now = event.time
        if self.autoscaler is not None:
            self._apply_scaling(now)
            if self.windows is not None:
                self.windows.sample("replicas", now, float(self._active))
            if self.tracer.enabled:
                self.tracer.counter("replicas", now, {"active": self._active})
            self._loop.schedule(EpochTick(time=self.autoscaler.epoch_end))
        elif self.rebalancer is not None:
            proposals = self.rebalancer.decide(
                now, [d.busy_s for d in self.devices],
                self.router.cluster_shard,
            )
            for proposal in proposals:
                self._start_migration(proposal, now)
            self._loop.schedule(EpochTick(time=self.rebalancer.epoch_end))

    def _on_data_movement(self, event: DataMovement) -> None:
        migration: Migration = event.payload
        # The atomic commit point: DataMovement outranks every other
        # same-instant event (repro.sim.events), so even a batch whose
        # deadline expires at exactly complete_s books the cluster's
        # work on the destination device.
        self.router.reassign_cluster(migration.cluster, migration.dest)
        self.rebalancer.finish(migration)
        if self.stores is not None:
            # Flash accounting commits with the routing flip: the
            # destination hosts the cluster's pages (host programs),
            # the source frees its blocks (in-place erases).
            self.stores[migration.dest].program_cluster(
                migration.cluster, migration.bytes
            )
            self.stores[migration.source].release_cluster(migration.cluster)
        if self.tracer.enabled:
            self.tracer.async_end(
                "migration", "migration", migration.cluster, event.time
            )

    def _on_flash_maintenance(self, event: FlashMaintenance) -> None:
        """Perform due read-disturb refreshes and book the GC pause.

        The refresh (read + program each valid page, erase the old
        block) occupies the device's entry-stage FIFO exactly like a
        migration's data movement: queries dispatched behind it wait it
        out — this is where GC-pause tail latency comes from.
        """
        shard, triples = event.payload
        store = self.stores[shard]
        pause = store.perform_refreshes(triples)
        if pause <= 0.0:
            return
        self.devices[shard].book(
            event.time,
            pause,
            resource=self.service_model.entry_resource,
            label="flash refresh",
            category="maintenance",
        )
        if self.windows is not None:
            self.windows.inc("flash_refreshes", event.time, len(triples))

    def _on_stream_end(self, event: StreamEnd) -> None:
        # End of stream: let a pending deadline close at its real time,
        # then flush stragglers (fixed mode has no deadline).  Closing
        # here rather than at the timer keeps end-of-stream flushes out
        # of the timeout statistics, exactly like an operator draining
        # a frontend.
        self._draining = True
        deadline = self.batcher.deadline()
        flush_time = deadline if deadline is not None else self._last_arrival_s
        batch = self.batcher.flush()
        if batch is not None:
            self._dispatch(
                batch, close_time=max(flush_time, self._last_arrival_s)
            )
        self._timer_gen += 1  # no timers survive the flush

    # ---- observability taps ---------------------------------------------
    # Strictly observe-only: every hook reads values the run already
    # computed.  Nothing here may touch batcher, router, device or
    # admission state — that invariant is what lets the parity suite
    # pin traced runs to the same digests as untraced ones.
    def _observe_coalesced(self, request: Request) -> None:
        """Metrics + obs for a follower resolved by the coalescer."""
        self.metrics.observe_coalesced(request)
        if self.windows is not None:
            self.windows.inc("coalesced", request.completion_s)
            self.windows.observe(
                "latency_s", request.completion_s, request.latency_s
            )
            if request.slo_met is False:
                self.windows.inc("deadline_misses", request.completion_s)
        if self.tracer.enabled:
            self.tracer.async_end(
                "request", "request", request.request_id,
                request.completion_s, args={"outcome": COALESCED},
            )

    def _observe_shed_obs(
        self, request: Request, now: float, preempted: bool = False
    ) -> None:
        """Windows/tracer view of a shed (metrics already recorded)."""
        if self.windows is not None:
            self.windows.inc("shed", now)
            if request.slo_met is False:
                self.windows.inc("deadline_misses", now)
        if self.tracer.enabled:
            args = {"outcome": SHED}
            if preempted:
                args["preempted"] = True
            self.tracer.async_end(
                "request", "request", request.request_id, now, args=args
            )

    def _trace_kernel_event(self, event) -> None:
        """Kernel dispatch tap: control events become trace instants.

        Arrivals and completions are omitted — the request spans and
        batch spans already carry them — so the kernel lane shows the
        *control* stream: deadline timers, epoch ticks, migration
        commits, stream end.
        """
        if isinstance(event, BatchDeadline):
            args = {"generation": event.generation}
        elif isinstance(event, DataMovement):
            migration: Migration = event.payload
            args = {
                "cluster": migration.cluster,
                "source": migration.source,
                "dest": migration.dest,
            }
        elif isinstance(event, FlashMaintenance):
            shard, triples = event.payload
            args = {"device": shard, "blocks": len(triples)}
        elif isinstance(event, (EpochTick, StreamEnd)):
            args = None
        else:
            return
        self.tracer.instant(
            type(event).__name__, "kernel", event.time,
            tid=self._kernel_tid, args=args,
        )

    # ---- epoch controllers ----------------------------------------------
    def _arm_epochs(self, now: float) -> None:
        """Anchor the epoch grid at the first arrival and start the
        tick chain (autoscaler and rebalancer are mutually exclusive
        by mode validation)."""
        self._epoch_armed = True
        if self.autoscaler is not None:
            busy = [d.busy_s for d in self.devices]
            self.autoscaler.decide(now, self._active, busy)
            self._loop.schedule(EpochTick(time=self.autoscaler.epoch_end))
        elif self.rebalancer is not None:
            self.rebalancer.arm(now, [d.busy_s for d in self.devices])
            self._loop.schedule(EpochTick(time=self.rebalancer.epoch_end))

    def _apply_scaling(self, now: float) -> None:
        new_active = self.autoscaler.decide(
            now, self._active, [d.busy_s for d in self.devices]
        )
        # The router pool tracks the active count exactly: growth adds
        # shared-index replicas, shrink removes them from the rotation
        # (their devices stay, draining, for occupancy accounting).
        if new_active > len(self.devices):
            self._grow_pool(new_active)
        while self.router.num_shards < new_active:
            self.router.add_replica()
        while self.router.num_shards > new_active:
            self.router.remove_replica()
        self._active = new_active

    def _grow_pool(self, replicas: int) -> None:
        """Add shared-index replicas (devices + router + metrics)."""
        while self.router.num_shards < replicas:
            self.router.add_replica()
        while len(self.devices) < replicas:
            self.devices.append(self._make_device(len(self.devices)))
            if self.stores is not None:
                store = FlashBackedStore(
                    self.config.flash, len(self.stores)
                )
                # A grown replica holds a full copy of the corpus; its
                # placement write is the replica provisioning cost.
                store.program_cluster(0, self._replica_bytes())
                self.stores.append(store)
        self.metrics.ensure_shards(len(self.devices))

    def _start_migration(self, proposal, now: float) -> None:
        """Book a cluster migration's data movement and schedule its
        commit.

        The read occupies the source device, the write the destination
        device — both on the platform's entry-stage FIFO, so the
        movement queues behind (and delays) query batches instead of
        being free.  The cluster keeps routing to the source until the
        :class:`~repro.sim.events.DataMovement` event commits the flip.
        """
        policy = self.config.rebalance
        moved_bytes = self._cluster_bytes(proposal.cluster)
        duration = moved_bytes / (policy.migration_gbps * 1e9)
        stage = self.service_model.entry_resource
        _, read_done = self.devices[proposal.source].book(
            now, duration, resource=stage
        )
        write_duration = duration
        if self.stores is not None:
            # NAND programs are slower than the link: the destination
            # write cannot finish before its pages are programmed.
            dest_store = self.stores[proposal.dest]
            write_duration = max(
                duration,
                dest_store.program_time_s(dest_store.pages_for(moved_bytes)),
            )
        _, write_done = self.devices[proposal.dest].book(
            now, write_duration, resource=stage
        )
        migration = Migration(
            cluster=proposal.cluster,
            source=proposal.source,
            dest=proposal.dest,
            decided_s=now,
            complete_s=max(read_done, write_done),
            bytes=moved_bytes,
            vectors=int(self.router.global_ids[proposal.cluster].size),
            utilization_gap=proposal.utilization_gap,
        )
        self.rebalancer.begin(migration)
        if self.tracer.enabled:
            self.tracer.async_begin(
                "migration", "migration", migration.cluster,
                migration.decided_s,
                args={
                    "source": migration.source,
                    "dest": migration.dest,
                    "bytes": migration.bytes,
                    "vectors": migration.vectors,
                },
            )
        self._loop.schedule(
            DataMovement(time=migration.complete_s, payload=migration)
        )

    def _cluster_bytes(self, cluster: int) -> int:
        """Bytes a cluster migration must move (vectors + graph).

        The cluster backend's dataset profile already totals its
        vector and CSR-graph footprint; backends without one fall back
        to the raw vector bytes.
        """
        profile = getattr(self.router.backends[cluster], "profile", None)
        if profile is not None:
            return int(profile.footprint_bytes)
        members = self.router.global_ids[cluster]
        dim = (
            self.router.centroids.shape[1]
            if self.router.centroids is not None
            else self._pool.shape[1]
        )
        return int(members.size * dim * 4)

    # ---- stateful flash --------------------------------------------------
    def _replica_bytes(self) -> int:
        """Corpus footprint one replicated shard holds on flash."""
        profile = getattr(self.router.backends[0], "profile", None)
        if profile is not None:
            return int(profile.footprint_bytes)
        return self.config.flash.geometry.page_size

    def _seed_flash_placement(self) -> None:
        """Lay the initial corpus placement onto each device's flash.

        Partitioned pools place each cluster's footprint on its owning
        device; replicated pools give every replica the full corpus
        (one whole-corpus "cluster" keyed 0).  The initial programs
        seed the host side of the write-amplification ledger, so a run
        that never refreshes reports WA exactly 1.0.
        """
        if self.router.mode == PARTITIONED:
            for cluster, shard in enumerate(self.router.cluster_shard):
                profile = getattr(
                    self.router.backends[cluster], "profile", None
                )
                nbytes = (
                    int(profile.footprint_bytes)
                    if profile is not None
                    else self.config.flash.geometry.page_size
                )
                self.stores[int(shard)].program_cluster(cluster, nbytes)
        else:
            nbytes = self._replica_bytes()
            for store in self.stores:
                store.program_cluster(0, nbytes)

    def _flash_read(
        self, shard: int, cluster: int, result, rows: int, done: float
    ) -> float:
        """Route one served sub-batch through the shard's flash state.

        The batch's page reads (from the platform model's counters;
        host-side models report ``ssd_page_reads``, and a model with no
        page accounting falls back to one page per routed query) heat
        the cluster's blocks; ECC hard-decode failures book their
        soft-decode stall on the device and push the sub-batch's
        completion; blocks crossing the disturb threshold schedule a
        :class:`~repro.sim.events.FlashMaintenance` at the adjusted
        completion.  Returns the (possibly later) completion time.
        """
        store = self.stores[shard]
        pages = int(
            result.counters["page_reads"]
            or result.counters["ssd_page_reads"]
            or rows
        )
        before = store.ecc_soft_decodes
        delay = store.ecc_delay_s(cluster, pages)
        if delay > 0.0:
            _, done = self.devices[shard].book(
                done,
                delay,
                resource=self.service_model.entry_resource,
                label="ecc retry",
                category="flash",
            )
            if self.windows is not None:
                self.windows.inc(
                    "ecc_soft_decodes", done, store.ecc_soft_decodes - before
                )
        due = store.record_reads(cluster, pages)
        if due:
            self._loop.schedule(
                FlashMaintenance(
                    time=max(done, self._loop.now), payload=(shard, due)
                )
            )
        if self.windows is not None and pages:
            self.windows.inc("flash_page_reads", done, pages)
        return done

    def _flash_summary(self) -> dict:
        """Fleet-wide flash summary for ``ServingReport.flash``."""
        devices = [store.summary() for store in self.stores]
        cluster_reads: dict[str, int] = {}
        cluster_erases: dict[str, int] = {}
        for summary in devices:
            for cluster, n in summary["cluster_page_reads"].items():
                cluster_reads[cluster] = cluster_reads.get(cluster, 0) + n
            for cluster, n in summary["cluster_erases"].items():
                cluster_erases[cluster] = cluster_erases.get(cluster, 0) + n
        host = sum(s["host_pages_written"] for s in devices)
        nand = sum(s["nand_pages_written"] for s in devices)
        return {
            "page_reads": sum(s["page_reads"] for s in devices),
            "ecc_soft_decodes": sum(s["ecc_soft_decodes"] for s in devices),
            "refreshes": sum(s["refreshes"] for s in devices),
            "total_erases": sum(s["total_erases"] for s in devices),
            "host_pages_written": host,
            "nand_pages_written": nand,
            "write_amplification": nand / host if host else 0.0,
            "cluster_page_reads": dict(
                sorted(cluster_reads.items(), key=lambda kv: int(kv[0]))
            ),
            "cluster_erases": dict(
                sorted(cluster_erases.items(), key=lambda kv: int(kv[0]))
            ),
            "devices": devices,
        }

    # ---- batcher timers --------------------------------------------------
    def _refresh_deadline_timer(self) -> None:
        """Re-arm the batch deadline timer for the current queue.

        Bumps the generation (invalidating any standing timer) and, if
        a batch is queued under a timed policy, schedules its close.
        Greedy timers ride :data:`~repro.sim.events.AFTER_ARRIVALS` so
        requests arriving at exactly the leader's instant join the
        batch before it closes.
        """
        self._timer_gen += 1
        deadline = self.batcher.deadline()
        if deadline is None:
            return
        rank = (
            AFTER_ARRIVALS if self.batcher.policy.mode == GREEDY else None
        )
        self._loop.schedule(
            BatchDeadline(
                time=max(deadline, self._loop.now),
                generation=self._timer_gen,
            ),
            rank=rank,
        )

    # ---- shared internals ------------------------------------------------
    def _calibrate(self, pool: np.ndarray, k: int) -> None:
        """Prime the service model with offline probe batches.

        The ``slo`` policy's first closes would otherwise run on an
        uncalibrated predictor and fall back to ``max_wait_s`` — one
        probe at each extreme batch size anchors the affine fit before
        the first request arrives (the timing-model equivalent of a
        deployment's warm-up calibration).  Probes price timing only:
        nothing is booked on the devices and no metrics are recorded.
        """
        sizes = sorted({1, self.config.policy.max_batch_size})
        # Distinct backend objects, first-occurrence order (replicated
        # pools alias one backend across shards; probe each just once).
        backends: list = []
        for b in self.router.backends:
            if not any(b is have for have in backends):
                backends.append(b)
        for size in sizes:
            queries = pool[np.arange(size) % pool.shape[0]]
            for backend in backends:
                _, _, result = backend.search_batch(queries, k)
                self.service_model.observe(size, result.pipeline_stages())

    def _try_preempt(self, request: Request) -> bool:
        """Admit a rejected arrival by shedding a less urgent queued
        request; returns whether a victim was preempted."""
        if not self.config.priority_admission:
            return False
        candidates = self.batcher.pending
        if self.config.coalesce:
            # A leader with followers must dispatch; shedding it would
            # leave its coalesced followers unresolved.
            candidates = [
                r for r in candidates if not self.coalescer.has_followers(r)
            ]
        victim = select_victim(candidates, request)
        if victim is None:
            return False
        self.batcher.evict(victim)
        if self.config.coalesce:
            self.coalescer.forget_queued(victim)
        victim.outcome = SHED
        self.metrics.observe_shed(victim)
        self._observe_shed_obs(victim, self._loop.now, preempted=True)
        self.admission.preempt()
        return True

    def predict_completion(self, batch_size: int, at: float) -> float | None:
        """Drain-time prediction: when a batch of ``batch_size`` closed
        at ``at`` would complete, or ``None`` until the service model
        has observed a batch.

        The prediction mirrors the dispatch rule: replicated pools
        predict on the device ``_dispatch`` will pick (its
        earliest-entry / earliest-drain key — not the device with the
        soonest predicted *completion*, which dispatch does not
        consult); partitioned broadcast joins on the slowest device.
        Selective probing is approximated: each device's load is
        estimated at the *expected* per-device sub-batch size
        (``n * nprobe / num_shards`` — the exact per-cluster regrouping
        is only known after routing) and the join still spans the
        pool, since a typical batch's per-query probe sets union to
        nearly every device.
        """
        if self.config.nprobe is not None:
            batch_size = max(
                1,
                round(batch_size * self.config.nprobe / self.router.num_shards),
            )
        chain = self.service_model.estimate_chain(batch_size)
        if chain is None:
            return None
        if self.router.mode == REPLICATED:
            device = min(
                self.devices[: self._active],
                key=lambda d: (d.earliest_start(at), d.drain_at),
            )
            return device.predict(chain, at)[1]
        return max(device.predict(chain, at)[1] for device in self.devices)

    def _dispatch(
        self,
        batch: list[Request],
        close_time: float,
        timeout_closed: bool = False,
    ) -> None:
        pool = self._pool
        queries = pool[[r.query_id for r in batch]]
        # The batcher does not group by k; search at the batch's widest
        # k and trim per request below.
        k = max(r.k for r in batch)
        self.metrics.observe_batch(len(batch), timeout_closed=timeout_closed)
        n = len(batch)
        if self.windows is not None:
            self.windows.sample("batch_size", close_time, float(n))
        batch_span = None
        if self.tracer.enabled:
            batch_span = self._batch_seq
            self._batch_seq += 1
            self.tracer.async_begin(
                "batch", "batch", batch_span, close_time,
                args={"size": n, "timeout": timeout_closed},
            )

        if self.router.mode == REPLICATED:
            # Dispatch only to the active replicas (the autoscaler may
            # have shrunk the pool; drained replicas take no traffic).
            shard = min(
                range(self._active),
                key=lambda s: (
                    self.devices[s].earliest_start(close_time),
                    self.devices[s].drain_at,
                ),
            )
            ids, dists, result = self.router.search_on(shard, queries, k)
            start, completion = self.devices[shard].serve(result, close_time)
            if self.stores is not None:
                completion = self._flash_read(shard, 0, result, n, completion)
            self.service_model.observe(n, result.pipeline_stages())
            self.metrics.observe_shard_service(shard, result)
            self.metrics.observe_probes(shard, n)
            starts = np.full(n, start)
            completions = np.full(n, completion)
        else:
            # PARTITIONED: fan out per IVF cluster (all clusters for
            # broadcast, each query's nprobe nearest otherwise); every
            # cluster's sub-batch books on its owning device's
            # timeline, and a query joins on the slowest of *its*
            # clusters — under broadcast that is the whole pool, under
            # selective probing just the clusters it probed.
            ids, dists, jobs = self.router.search_probed(
                queries, k, self.config.nprobe
            )
            starts = np.full(n, close_time)
            completions = np.full(n, close_time)
            for job in jobs:
                shard_start, shard_done = self.devices[job.shard].serve(
                    job.result, close_time
                )
                if self.stores is not None:
                    shard_done = self._flash_read(
                        job.shard, job.cluster, job.result,
                        int(job.rows.size), shard_done,
                    )
                self.service_model.observe(
                    int(job.rows.size), job.result.pipeline_stages()
                )
                self.metrics.observe_shard_service(job.shard, job.result)
                self.metrics.observe_probes(job.shard, int(job.rows.size))
                if self.rebalancer is not None:
                    self.rebalancer.observe_cluster_queries(
                        job.cluster, int(job.rows.size)
                    )
                starts[job.rows] = np.maximum(starts[job.rows], shard_start)
                completions[job.rows] = np.maximum(
                    completions[job.rows], shard_done
                )

        if batch_span is not None:
            self.tracer.async_end(
                "batch", "batch", batch_span, float(completions.max())
            )
        # One completion event per distinct join time: replicated and
        # broadcast batches collapse to a single event, selective
        # probing adds one per fan-out join group.
        for value, count in zip(*np.unique(completions, return_counts=True)):
            self._loop.schedule(
                Completion(
                    time=max(float(value), self._loop.now), payload=int(count)
                )
            )
        self._in_service_total += len(batch)

        for i, request in enumerate(batch):
            completion = float(completions[i])
            request.batched_s = close_time
            request.start_s = float(starts[i])
            request.completion_s = completion
            request.outcome = COMPLETED
            # Copies, not views: a view would pin the whole (n, k)
            # batch array in memory for as long as any single row
            # lives, and a client mutating its result row in place
            # would write through into the shared buffer the coalescer
            # resolves followers from.
            request.result_ids = ids[i, : request.k].copy()
            request.result_dists = dists[i, : request.k].copy()
            self.cache.store(
                request.query_id, request.k, request.result_ids,
                request.result_dists,
            )
            self.metrics.observe_completion(request)
            if self.windows is not None:
                self.windows.inc("completions", completion)
                self.windows.observe(
                    "latency_s", completion, request.latency_s
                )
                if request.slo_met is False:
                    self.windows.inc("deadline_misses", completion)
            if self.tracer.enabled:
                self.tracer.async_end(
                    "request", "request", request.request_id, completion,
                    args={"outcome": COMPLETED, "batched_s": close_time},
                )
            if self.config.coalesce:
                self.coalescer.on_dispatch(
                    request, ids[i].copy(), dists[i].copy(), k, completion
                )

    def _in_service_count(self) -> int:
        return self._in_service_total
