"""The serving frontend: a discrete-event loop over simulated time.

This is the orchestrator-over-simulator layer: requests arrive on a
simulated clock, flow through admission control, the result cache, the
request coalescer and the dynamic batcher, and closed batches are
served by shard devices whose *stage occupancy* comes from the
trace-driven platform simulators (the phase timeline each
:class:`~repro.sim.stats.SimResult` carries).  Nothing waits on the
wall clock, so a minute of simulated heavy traffic runs in seconds and
every run is exactly reproducible.

Event-loop invariants:

* Arrivals are processed in time order; before each arrival, any
  batcher deadline that expired in the gap fires first (so timeout
  closes happen at their exact simulated time, not at the next
  arrival).
* Shard devices are :class:`~repro.serving.device.ShardDevice`
  pipelines: a batch closed at time ``t`` enters the device's first
  stage no earlier than ``max(t, entry-stage free)`` and each stage
  queues FIFO per resource, so batch N+1's read/MAC work overlaps
  batch N's sort/output drain.  ``ServingConfig(pipelined=False)``
  restores the classic one-batch-at-a-time device.  Replicated mode
  picks the shard that can start earliest; partitioned mode broadcasts
  and completes at the slowest shard (fan-out join).  With
  ``ServingConfig(nprobe=n)`` a partitioned batch instead fans out
  *selectively*: each query goes only to its ``n`` nearest shards
  (:meth:`~repro.serving.sharding.ShardRouter.search_probed`), the
  per-shard sub-batches are booked on their device pipelines
  independently, and a query completes at the slowest of *its* probed
  shards — so requests in one batch can have different completion
  times.
* Identical in-flight queries coalesce (:class:`Coalescer`): a request
  whose query is already queued (or already dispatched but not yet
  completed) piggybacks on the leader's batch and completes with it —
  one search serves all followers.  Coalescing runs *before* admission
  and the cache: followers are answered work, not queue load, so they
  are never shed, and while a search is in flight repeats complete
  with it rather than reading its future results out of the cache (the
  cache is written at dispatch time, so an in-flight entry holds
  results that do not causally exist yet).
* The result cache is consulted *before* admission: a hit is answered
  from host DRAM and never enters the system, so it neither consumes
  admission capacity nor can be shed.
* Admission counts the whole system — batcher queue plus dispatched
  but incomplete requests — so shedding reflects true backlog, not
  just the waiting room.  With ``priority_admission=True`` a rejected
  arrival that is more urgent than the least urgent *queued* request
  preempts it instead (the victim is shed in its place).
* Under the ``slo`` batch policy, the batcher's close deadline comes
  from drain-time prediction: a :class:`~repro.serving.slo.ServiceModel`
  calibrated on every dispatched batch estimates a candidate batch's
  stage chain, and the shard devices dry-run it against their FIFO
  state (:meth:`~repro.serving.device.ShardDevice.predict`).
* With ``autoscale=AutoscalePolicy(...)`` (replicated mode only) an
  :class:`~repro.serving.autoscale.Autoscaler` re-evaluates the active
  replica count every epoch from windowed utilization and queue depth;
  grown replicas share the corpus index, shrunk ones drain.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.serving.admission import AdmissionController, select_victim
from repro.serving.autoscale import AutoscalePolicy, Autoscaler
from repro.serving.batcher import GREEDY, SLO, BatchPolicy, DynamicBatcher
from repro.serving.cache import ResultCache
from repro.serving.device import ShardDevice
from repro.serving.metrics import MetricsCollector, ServingReport
from repro.serving.request import (
    CACHE_HIT,
    COALESCED,
    COMPLETED,
    SHED,
    Request,
)
from repro.serving.sharding import PARTITIONED, REPLICATED, ShardRouter
from repro.serving.slo import ServiceModel


class Coalescer:
    """Deduplicates identical in-flight queries.

    Tracks two kinds of leaders: *queued* (still in the batcher; their
    followers resolve at dispatch) and *dispatched* (results priced but
    not yet back; followers resolve immediately against the pending
    entry).  Entries retire once their completion time passes — from
    then on the result cache answers repeats.
    """

    def __init__(self, observe) -> None:
        self._observe = observe
        """Metrics callback invoked once per resolved follower."""

        self._queued_leader: dict[int, Request] = {}
        self._followers: dict[int, list[Request]] = {}
        # query_id -> (completion_s, ids_row, dists_row, searched_k)
        self._inflight: dict[int, tuple[float, np.ndarray, np.ndarray, int]] = {}
        self._retire_heap: list[tuple[float, int]] = []

    def try_coalesce(self, request: Request, now: float) -> bool:
        """Piggyback ``request`` on an identical in-flight query, if any.

        A dispatched-but-incomplete search is preferred (it finishes
        soonest); otherwise the request attaches to a queued leader.
        The follower must not want more results than the leader's
        search produces.
        """
        entry = self._inflight.get(request.query_id)
        if entry is not None:
            completion, _, _, searched_k = entry
            if completion > now and request.k <= searched_k:
                self._resolve(request, entry)
                return True
        leader = self._queued_leader.get(request.query_id)
        if leader is not None and request.k <= leader.k:
            self._followers.setdefault(leader.request_id, []).append(request)
            return True
        return False

    def note_queued(self, request: Request) -> None:
        """``request`` entered the batcher; it can lead followers.

        The widest-k queued request leads: its search covers every
        narrower duplicate, so later arrivals coalesce instead of
        re-searching.
        """
        leader = self._queued_leader.get(request.query_id)
        if leader is None or request.k > leader.k:
            self._queued_leader[request.query_id] = request

    def on_dispatch(
        self,
        request: Request,
        ids_row: np.ndarray,
        dists_row: np.ndarray,
        searched_k: int,
        completion: float,
    ) -> None:
        """A batch member's results are priced: resolve its followers
        and open the dispatched-entry piggyback window."""
        if self._queued_leader.get(request.query_id) is request:
            del self._queued_leader[request.query_id]
        entry = (completion, ids_row, dists_row, searched_k)
        for follower in self._followers.pop(request.request_id, ()):
            self._resolve(follower, entry)
        self._inflight[request.query_id] = entry
        heapq.heappush(self._retire_heap, (completion, request.query_id))

    def retire(self, now: float) -> None:
        """Drop dispatched entries whose results have landed."""
        while self._retire_heap and self._retire_heap[0][0] <= now:
            completion, query_id = heapq.heappop(self._retire_heap)
            entry = self._inflight.get(query_id)
            if entry is not None and entry[0] <= completion:
                del self._inflight[query_id]

    def has_followers(self, request: Request) -> bool:
        """Whether ``request`` leads coalesced followers (and so must
        not be preempted — its followers would dangle unresolved)."""
        return bool(self._followers.get(request.request_id))

    def forget_queued(self, request: Request) -> None:
        """``request`` left the batcher without dispatching (preempted);
        stop offering it as a coalescing leader."""
        if self._queued_leader.get(request.query_id) is request:
            del self._queued_leader[request.query_id]

    def _resolve(self, request: Request, entry) -> None:
        completion, ids, dists, _ = entry
        request.completion_s = completion
        request.outcome = COALESCED
        request.result_ids = ids[: request.k].copy()
        request.result_dists = dists[: request.k].copy()
        self._observe(request)


@dataclass(frozen=True)
class ServingConfig:
    """Frontend knobs (the batch policy rides in ``policy``)."""

    policy: BatchPolicy = field(default_factory=BatchPolicy)
    cache_capacity: int = 1024
    cache_hit_latency_s: float = 20e-6
    """Host hash-map lookup + response serialisation for a cache hit."""

    admission_capacity: int | None = None
    """Max requests in the system (queued + in service); None = unbounded."""

    pipelined: bool = True
    """Overlap consecutive batches on a shard's pipeline stages; False
    restores the blocking one-batch-at-a-time device."""

    coalesce: bool = True
    """Piggyback identical in-flight queries on the leader's batch."""

    nprobe: int | None = None
    """Partitioned mode only: route each query to its ``nprobe``
    nearest shards (IVF nprobe at the device-pool level) instead of
    broadcasting.  ``None`` keeps the broadcast fan-out;
    ``nprobe = num_shards`` reproduces broadcast results exactly."""

    priority_admission: bool = False
    """Shed lowest-priority / latest-deadline work first: a rejected
    arrival preempts a strictly less urgent queued request instead of
    being shed itself (see :mod:`repro.serving.admission`)."""

    autoscale: AutoscalePolicy | None = None
    """Replicated mode only: grow/shrink the active replica pool every
    ``interval_s`` epoch from windowed utilization and queue depth
    (see :mod:`repro.serving.autoscale`).  ``None`` keeps the pool
    static."""


class ServingFrontend:
    """Runs a request stream against a shard router, collecting metrics."""

    def __init__(self, router: ShardRouter, config: ServingConfig | None = None):
        self.router = router
        self.config = config or ServingConfig()
        if self.config.nprobe is not None:
            if router.mode != PARTITIONED:
                raise ValueError("nprobe requires a partitioned router")
            if not 1 <= self.config.nprobe <= router.num_shards:
                raise ValueError(
                    f"nprobe must be in [1, {router.num_shards}], "
                    f"got {self.config.nprobe}"
                )
            if router.centroids is None:
                raise ValueError(
                    "nprobe requires a router built with routing centroids"
                )
        self.service_model = ServiceModel()
        self.batcher = DynamicBatcher(
            self.config.policy, predictor=self.predict_completion
        )
        self.cache = ResultCache(self.config.cache_capacity)
        self.admission = AdmissionController(self.config.admission_capacity)
        self.metrics = MetricsCollector(router.num_shards)
        self.devices = [
            ShardDevice(pipelined=self.config.pipelined)
            for _ in range(router.num_shards)
        ]
        self.autoscaler: Autoscaler | None = None
        self._active = router.num_shards
        if self.config.autoscale is not None:
            if router.mode != REPLICATED:
                raise ValueError(
                    "autoscaling requires a replicated router (partitioned "
                    "pools would need data movement to rebalance)"
                )
            if router.num_shards > self.config.autoscale.max_replicas:
                raise ValueError(
                    f"router has {router.num_shards} replicas but the "
                    f"autoscale policy caps the pool at "
                    f"{self.config.autoscale.max_replicas}; raise "
                    f"max_replicas or build a smaller pool"
                )
            self.autoscaler = Autoscaler(self.config.autoscale)
            self._active = max(
                router.num_shards, self.config.autoscale.min_replicas
            )
            self._grow_pool(self._active)
        self._in_service: list[tuple[float, int]] = []  # (completion_s, count) heap
        self._in_service_total = 0
        self.coalescer = Coalescer(self.metrics.observe_coalesced)

    def run(
        self, requests: list[Request], query_pool: np.ndarray
    ) -> ServingReport:
        """Serve a request stream drawn from ``query_pool``.

        ``query_pool`` is the (pool_size, dim) array the requests'
        ``query_id`` fields index into.  Requests are mutated in place
        (timestamps, outcomes, results) and summarised in the returned
        report.
        """
        pool = np.ascontiguousarray(query_pool, dtype=np.float32)
        if (
            self.config.policy.mode == SLO
            and not self.service_model.calibrated
            and requests
        ):
            self._calibrate(pool, max(r.k for r in requests))
        last_time = 0.0
        for request in sorted(requests, key=lambda r: r.arrival_s):
            now = request.arrival_s
            last_time = max(last_time, now)
            self._fire_due_deadlines(pool, now)
            self._retire_in_service(now)
            if self.autoscaler is not None:
                self._apply_scaling(now)
            depth = len(self.batcher) + self._in_service_count()
            self.metrics.observe_arrival(request, depth)
            if self.autoscaler is not None:
                self.autoscaler.observe_depth(depth)
            # Coalescing precedes admission and the cache: a follower
            # adds no queue load (so it is never shed), and while its
            # query's search is in flight the causally-correct answer
            # is to complete *with* it, not to read its future results
            # out of the dispatch-time cache write.
            if self.config.coalesce and self.coalescer.try_coalesce(
                request, now
            ):
                continue
            # The cache precedes admission: a hit is answered from host
            # DRAM and never enters the system, so it cannot be shed
            # (and must not preempt queued work to be answered).
            cached = self.cache.lookup(request.query_id, request.k)
            if cached is not None:
                request.result_ids, request.result_dists = cached
                request.completion_s = now + self.config.cache_hit_latency_s
                request.outcome = CACHE_HIT
                self.metrics.observe_cache_hit(request)
                continue
            if not self.admission.admit(depth):
                if not self._try_preempt(request):
                    request.outcome = SHED
                    self.metrics.observe_shed(request)
                    continue
            if self.config.coalesce:
                self.coalescer.note_queued(request)
            batch = self.batcher.offer(request)
            if batch is not None:
                self._dispatch(batch, pool, close_time=now)
            # An urgent arrival can make the queued batch's slo
            # deadline immediately due (or, with max_wait_s=0, its own
            # wait expires at arrival): fire at its exact time.
            self._fire_due_deadlines(pool, now)
        # End of stream: let a pending deadline fire at its real time,
        # then flush stragglers (fixed mode has no deadline).
        deadline = self.batcher.deadline()
        flush_time = deadline if deadline is not None else last_time
        batch = self.batcher.flush()
        if batch is not None:
            self._dispatch(batch, pool, close_time=max(flush_time, last_time))
        # Utilization comes from true device occupancy (overlapped
        # pipeline stages count once), not summed batch makespans.
        self.metrics.set_shard_busy([d.busy_s for d in self.devices])
        if self.autoscaler is not None:
            self.metrics.set_scaling(
                [event.to_dict() for event in self.autoscaler.events],
                self._active,
            )
        return self.metrics.report()

    # ---- event-loop internals -------------------------------------------
    def _calibrate(self, pool: np.ndarray, k: int) -> None:
        """Prime the service model with offline probe batches.

        The ``slo`` policy's first closes would otherwise run on an
        uncalibrated predictor and fall back to ``max_wait_s`` — one
        probe at each extreme batch size anchors the affine fit before
        the first request arrives (the timing-model equivalent of a
        deployment's warm-up calibration).  Probes price timing only:
        nothing is booked on the devices and no metrics are recorded.
        """
        sizes = sorted({1, self.config.policy.max_batch_size})
        backends = list({id(b): b for b in self.router.backends}.values())
        for size in sizes:
            queries = pool[np.arange(size) % pool.shape[0]]
            for backend in backends:
                _, _, result = backend.search_batch(queries, k)
                self.service_model.observe(size, result.pipeline_stages())

    def _fire_due_deadlines(self, pool: np.ndarray, now: float) -> None:
        while True:
            # Computed once per iteration: in slo mode every deadline()
            # call runs the completion predictor over the device chains.
            deadline = self.batcher.deadline()
            if deadline is None or not self.batcher.expired(now, deadline):
                return
            batch = self.batcher.poll(now, deadline)
            if batch is None:
                return
            self._dispatch(
                batch, pool, close_time=deadline,
                timeout_closed=self.batcher.policy.mode != GREEDY,
            )

    def _try_preempt(self, request: Request) -> bool:
        """Admit a rejected arrival by shedding a less urgent queued
        request; returns whether a victim was preempted."""
        if not self.config.priority_admission:
            return False
        candidates = self.batcher.pending
        if self.config.coalesce:
            # A leader with followers must dispatch; shedding it would
            # leave its coalesced followers unresolved.
            candidates = [
                r for r in candidates if not self.coalescer.has_followers(r)
            ]
        victim = select_victim(candidates, request)
        if victim is None:
            return False
        self.batcher.evict(victim)
        if self.config.coalesce:
            self.coalescer.forget_queued(victim)
        victim.outcome = SHED
        self.metrics.observe_shed(victim)
        self.admission.preempt()
        return True

    def _apply_scaling(self, now: float) -> None:
        new_active = self.autoscaler.decide(
            now, self._active, [d.busy_s for d in self.devices]
        )
        if new_active > len(self.devices):
            self._grow_pool(new_active)
        self._active = new_active

    def _grow_pool(self, replicas: int) -> None:
        """Add shared-index replicas (devices + router + metrics)."""
        while self.router.num_shards < replicas:
            self.router.add_replica()
        while len(self.devices) < replicas:
            self.devices.append(ShardDevice(pipelined=self.config.pipelined))
        self.metrics.ensure_shards(len(self.devices))

    def predict_completion(self, batch_size: int, at: float) -> float | None:
        """Drain-time prediction: when a batch of ``batch_size`` closed
        at ``at`` would complete, or ``None`` until the service model
        has observed a batch.

        The prediction mirrors the dispatch rule: replicated pools
        predict on the device ``_dispatch`` will pick (its
        earliest-entry / earliest-drain key — not the device with the
        soonest predicted *completion*, which dispatch does not
        consult); partitioned broadcast joins on the slowest shard.
        Selective probing is approximated: each shard's chain is
        estimated at the *expected* sub-batch size
        (``n * nprobe / num_shards`` — the exact per-shard regrouping
        is only known after routing) and the join still spans the
        pool, since a typical batch's per-query probe sets union to
        nearly every shard.
        """
        if self.config.nprobe is not None:
            batch_size = max(
                1,
                round(batch_size * self.config.nprobe / self.router.num_shards),
            )
        chain = self.service_model.estimate_chain(batch_size)
        if chain is None:
            return None
        if self.router.mode == REPLICATED:
            device = min(
                self.devices[: self._active],
                key=lambda d: (d.earliest_start(at), d.drain_at),
            )
            return device.predict(chain, at)[1]
        return max(device.predict(chain, at)[1] for device in self.devices)

    def _dispatch(
        self,
        batch: list[Request],
        pool: np.ndarray,
        close_time: float,
        timeout_closed: bool = False,
    ) -> None:
        queries = pool[[r.query_id for r in batch]]
        # The batcher does not group by k; search at the batch's widest
        # k and trim per request below.
        k = max(r.k for r in batch)
        self.metrics.observe_batch(len(batch), timeout_closed=timeout_closed)
        n = len(batch)

        if self.router.mode == REPLICATED:
            # Dispatch only to the active replicas (the autoscaler may
            # have shrunk the pool; drained replicas take no traffic).
            shard = min(
                range(self._active),
                key=lambda s: (
                    self.devices[s].earliest_start(close_time),
                    self.devices[s].drain_at,
                ),
            )
            ids, dists, result = self.router.search_on(shard, queries, k)
            start, completion = self.devices[shard].serve(result, close_time)
            self.service_model.observe(n, result.pipeline_stages())
            self.metrics.observe_shard_service(shard, result)
            self.metrics.observe_probes(shard, n)
            starts = np.full(n, start)
            completions = np.full(n, completion)
        elif self.config.nprobe is None:
            # PARTITIONED broadcast: join on the slowest shard.
            ids, dists, results = self.router.search_all(queries, k)
            start = completion = close_time
            for shard, result in enumerate(results):
                shard_start, shard_done = self.devices[shard].serve(
                    result, close_time
                )
                completion = max(completion, shard_done)
                start = max(start, shard_start)
                self.service_model.observe(n, result.pipeline_stages())
                self.metrics.observe_shard_service(shard, result)
                self.metrics.observe_probes(shard, n)
            starts = np.full(n, start)
            completions = np.full(n, completion)
        else:
            # PARTITIONED selective: each shard serves a sub-batch of
            # the queries that probed it, on its own device timeline;
            # a query joins on the slowest of *its* probed shards, not
            # on the whole pool.
            ids, dists, jobs = self.router.search_probed(
                queries, k, self.config.nprobe
            )
            starts = np.full(n, close_time)
            completions = np.full(n, close_time)
            for job in jobs:
                shard_start, shard_done = self.devices[job.shard].serve(
                    job.result, close_time
                )
                self.service_model.observe(
                    int(job.rows.size), job.result.pipeline_stages()
                )
                self.metrics.observe_shard_service(job.shard, job.result)
                self.metrics.observe_probes(job.shard, int(job.rows.size))
                starts[job.rows] = np.maximum(starts[job.rows], shard_start)
                completions[job.rows] = np.maximum(
                    completions[job.rows], shard_done
                )

        # One heap entry per distinct completion time: replicated and
        # broadcast batches collapse to a single entry, selective
        # probing adds one per fan-out join group.
        values, counts = np.unique(completions, return_counts=True)
        for value, count in zip(values, counts):
            heapq.heappush(self._in_service, (float(value), int(count)))
        self._in_service_total += len(batch)

        for i, request in enumerate(batch):
            completion = float(completions[i])
            request.batched_s = close_time
            request.start_s = float(starts[i])
            request.completion_s = completion
            request.outcome = COMPLETED
            # Copies, not views: a view would pin the whole (n, k)
            # batch array in memory for as long as any single row
            # lives, and a client mutating its result row in place
            # would write through into the shared buffer the coalescer
            # resolves followers from.
            request.result_ids = ids[i, : request.k].copy()
            request.result_dists = dists[i, : request.k].copy()
            self.cache.store(
                request.query_id, request.k, request.result_ids,
                request.result_dists,
            )
            self.metrics.observe_completion(request)
            if self.config.coalesce:
                self.coalescer.on_dispatch(
                    request, ids[i].copy(), dists[i].copy(), k, completion
                )

    def _retire_in_service(self, now: float) -> None:
        while self._in_service and self._in_service[0][0] <= now:
            _, count = heapq.heappop(self._in_service)
            self._in_service_total -= count
        # Results that have landed are no longer coalescing targets —
        # from now on the cache answers repeats of these queries.
        self.coalescer.retire(now)

    def _in_service_count(self) -> int:
        return self._in_service_total
