"""The serving frontend: a discrete-event loop over simulated time.

This is the orchestrator-over-simulator layer: requests arrive on a
simulated clock, flow through admission control, the result cache, the
request coalescer and the dynamic batcher, and closed batches are
served by shard devices whose *stage occupancy* comes from the
trace-driven platform simulators (the phase timeline each
:class:`~repro.sim.stats.SimResult` carries).  Nothing waits on the
wall clock, so a minute of simulated heavy traffic runs in seconds and
every run is exactly reproducible.

Event-loop invariants:

* Arrivals are processed in time order; before each arrival, any
  batcher deadline that expired in the gap fires first (so timeout
  closes happen at their exact simulated time, not at the next
  arrival).
* Shard devices are :class:`~repro.serving.device.ShardDevice`
  pipelines: a batch closed at time ``t`` enters the device's first
  stage no earlier than ``max(t, entry-stage free)`` and each stage
  queues FIFO per resource, so batch N+1's read/MAC work overlaps
  batch N's sort/output drain.  ``ServingConfig(pipelined=False)``
  restores the classic one-batch-at-a-time device.  Replicated mode
  picks the shard that can start earliest; partitioned mode broadcasts
  and completes at the slowest shard (fan-out join).  With
  ``ServingConfig(nprobe=n)`` a partitioned batch instead fans out
  *selectively*: each query goes only to its ``n`` nearest shards
  (:meth:`~repro.serving.sharding.ShardRouter.search_probed`), the
  per-shard sub-batches are booked on their device pipelines
  independently, and a query completes at the slowest of *its* probed
  shards — so requests in one batch can have different completion
  times.
* Identical in-flight queries coalesce (:class:`Coalescer`): a request
  whose query is already queued (or already dispatched but not yet
  completed) piggybacks on the leader's batch and completes with it —
  one search serves all followers.  Coalescing runs *before* admission
  and the cache: followers are answered work, not queue load, so they
  are never shed, and while a search is in flight repeats complete
  with it rather than reading its future results out of the cache (the
  cache is written at dispatch time, so an in-flight entry holds
  results that do not causally exist yet).
* Admission counts the whole system — batcher queue plus dispatched
  but incomplete requests — so shedding reflects true backlog, not
  just the waiting room.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.serving.admission import AdmissionController
from repro.serving.batcher import BatchPolicy, DynamicBatcher
from repro.serving.cache import ResultCache
from repro.serving.device import ShardDevice
from repro.serving.metrics import MetricsCollector, ServingReport
from repro.serving.request import (
    CACHE_HIT,
    COALESCED,
    COMPLETED,
    SHED,
    Request,
)
from repro.serving.sharding import PARTITIONED, REPLICATED, ShardRouter


class Coalescer:
    """Deduplicates identical in-flight queries.

    Tracks two kinds of leaders: *queued* (still in the batcher; their
    followers resolve at dispatch) and *dispatched* (results priced but
    not yet back; followers resolve immediately against the pending
    entry).  Entries retire once their completion time passes — from
    then on the result cache answers repeats.
    """

    def __init__(self, observe) -> None:
        self._observe = observe
        """Metrics callback invoked once per resolved follower."""

        self._queued_leader: dict[int, Request] = {}
        self._followers: dict[int, list[Request]] = {}
        # query_id -> (completion_s, ids_row, dists_row, searched_k)
        self._inflight: dict[int, tuple[float, np.ndarray, np.ndarray, int]] = {}
        self._retire_heap: list[tuple[float, int]] = []

    def try_coalesce(self, request: Request, now: float) -> bool:
        """Piggyback ``request`` on an identical in-flight query, if any.

        A dispatched-but-incomplete search is preferred (it finishes
        soonest); otherwise the request attaches to a queued leader.
        The follower must not want more results than the leader's
        search produces.
        """
        entry = self._inflight.get(request.query_id)
        if entry is not None:
            completion, _, _, searched_k = entry
            if completion > now and request.k <= searched_k:
                self._resolve(request, entry)
                return True
        leader = self._queued_leader.get(request.query_id)
        if leader is not None and request.k <= leader.k:
            self._followers.setdefault(leader.request_id, []).append(request)
            return True
        return False

    def note_queued(self, request: Request) -> None:
        """``request`` entered the batcher; it can lead followers.

        The widest-k queued request leads: its search covers every
        narrower duplicate, so later arrivals coalesce instead of
        re-searching.
        """
        leader = self._queued_leader.get(request.query_id)
        if leader is None or request.k > leader.k:
            self._queued_leader[request.query_id] = request

    def on_dispatch(
        self,
        request: Request,
        ids_row: np.ndarray,
        dists_row: np.ndarray,
        searched_k: int,
        completion: float,
    ) -> None:
        """A batch member's results are priced: resolve its followers
        and open the dispatched-entry piggyback window."""
        if self._queued_leader.get(request.query_id) is request:
            del self._queued_leader[request.query_id]
        entry = (completion, ids_row, dists_row, searched_k)
        for follower in self._followers.pop(request.request_id, ()):
            self._resolve(follower, entry)
        self._inflight[request.query_id] = entry
        heapq.heappush(self._retire_heap, (completion, request.query_id))

    def retire(self, now: float) -> None:
        """Drop dispatched entries whose results have landed."""
        while self._retire_heap and self._retire_heap[0][0] <= now:
            completion, query_id = heapq.heappop(self._retire_heap)
            entry = self._inflight.get(query_id)
            if entry is not None and entry[0] <= completion:
                del self._inflight[query_id]

    def _resolve(self, request: Request, entry) -> None:
        completion, ids, dists, _ = entry
        request.completion_s = completion
        request.outcome = COALESCED
        request.result_ids = ids[: request.k].copy()
        request.result_dists = dists[: request.k].copy()
        self._observe(request)


@dataclass(frozen=True)
class ServingConfig:
    """Frontend knobs (the batch policy rides in ``policy``)."""

    policy: BatchPolicy = field(default_factory=BatchPolicy)
    cache_capacity: int = 1024
    cache_hit_latency_s: float = 20e-6
    """Host hash-map lookup + response serialisation for a cache hit."""

    admission_capacity: int | None = None
    """Max requests in the system (queued + in service); None = unbounded."""

    pipelined: bool = True
    """Overlap consecutive batches on a shard's pipeline stages; False
    restores the blocking one-batch-at-a-time device."""

    coalesce: bool = True
    """Piggyback identical in-flight queries on the leader's batch."""

    nprobe: int | None = None
    """Partitioned mode only: route each query to its ``nprobe``
    nearest shards (IVF nprobe at the device-pool level) instead of
    broadcasting.  ``None`` keeps the broadcast fan-out;
    ``nprobe = num_shards`` reproduces broadcast results exactly."""


class ServingFrontend:
    """Runs a request stream against a shard router, collecting metrics."""

    def __init__(self, router: ShardRouter, config: ServingConfig | None = None):
        self.router = router
        self.config = config or ServingConfig()
        if self.config.nprobe is not None:
            if router.mode != PARTITIONED:
                raise ValueError("nprobe requires a partitioned router")
            if not 1 <= self.config.nprobe <= router.num_shards:
                raise ValueError(
                    f"nprobe must be in [1, {router.num_shards}], "
                    f"got {self.config.nprobe}"
                )
            if router.centroids is None:
                raise ValueError(
                    "nprobe requires a router built with routing centroids"
                )
        self.batcher = DynamicBatcher(self.config.policy)
        self.cache = ResultCache(self.config.cache_capacity)
        self.admission = AdmissionController(self.config.admission_capacity)
        self.metrics = MetricsCollector(router.num_shards)
        self.devices = [
            ShardDevice(pipelined=self.config.pipelined)
            for _ in range(router.num_shards)
        ]
        self._in_service: list[tuple[float, int]] = []  # (completion_s, count) heap
        self._in_service_total = 0
        self.coalescer = Coalescer(self.metrics.observe_coalesced)

    def run(
        self, requests: list[Request], query_pool: np.ndarray
    ) -> ServingReport:
        """Serve a request stream drawn from ``query_pool``.

        ``query_pool`` is the (pool_size, dim) array the requests'
        ``query_id`` fields index into.  Requests are mutated in place
        (timestamps, outcomes, results) and summarised in the returned
        report.
        """
        pool = np.ascontiguousarray(query_pool, dtype=np.float32)
        last_time = 0.0
        for request in sorted(requests, key=lambda r: r.arrival_s):
            now = request.arrival_s
            last_time = max(last_time, now)
            self._fire_due_deadlines(pool, now)
            self._retire_in_service(now)
            depth = len(self.batcher) + self._in_service_count()
            self.metrics.observe_arrival(request, depth)
            # Coalescing precedes admission and the cache: a follower
            # adds no queue load (so it is never shed), and while its
            # query's search is in flight the causally-correct answer
            # is to complete *with* it, not to read its future results
            # out of the dispatch-time cache write.
            if self.config.coalesce and self.coalescer.try_coalesce(
                request, now
            ):
                continue
            if not self.admission.admit(depth):
                request.outcome = SHED
                self.metrics.observe_shed(request)
                continue
            cached = self.cache.lookup(request.query_id, request.k)
            if cached is not None:
                request.result_ids, request.result_dists = cached
                request.completion_s = now + self.config.cache_hit_latency_s
                request.outcome = CACHE_HIT
                self.metrics.observe_cache_hit(request)
                continue
            if self.config.coalesce:
                self.coalescer.note_queued(request)
            batch = self.batcher.offer(request)
            if batch is not None:
                self._dispatch(batch, pool, close_time=now)
        # End of stream: let a pending deadline fire at its real time,
        # then flush stragglers (fixed mode has no deadline).
        deadline = self.batcher.deadline()
        flush_time = deadline if deadline is not None else last_time
        batch = self.batcher.flush()
        if batch is not None:
            self._dispatch(batch, pool, close_time=flush_time)
        # Utilization comes from true device occupancy (overlapped
        # pipeline stages count once), not summed batch makespans.
        self.metrics.set_shard_busy([d.busy_s for d in self.devices])
        return self.metrics.report()

    # ---- event-loop internals -------------------------------------------
    def _fire_due_deadlines(self, pool: np.ndarray, now: float) -> None:
        while True:
            deadline = self.batcher.deadline()
            if deadline is None or deadline > now:
                return
            batch = self.batcher.poll(deadline)
            if batch is None:
                return
            self._dispatch(batch, pool, close_time=deadline, timeout_closed=True)

    def _dispatch(
        self,
        batch: list[Request],
        pool: np.ndarray,
        close_time: float,
        timeout_closed: bool = False,
    ) -> None:
        queries = pool[[r.query_id for r in batch]]
        # The batcher does not group by k; search at the batch's widest
        # k and trim per request below.
        k = max(r.k for r in batch)
        self.metrics.observe_batch(len(batch), timeout_closed=timeout_closed)
        n = len(batch)

        if self.router.mode == REPLICATED:
            shard = min(
                range(self.router.num_shards),
                key=lambda s: (
                    self.devices[s].earliest_start(close_time),
                    self.devices[s].drain_at,
                ),
            )
            ids, dists, result = self.router.search_on(shard, queries, k)
            start, completion = self.devices[shard].serve(result, close_time)
            self.metrics.observe_shard_service(shard, result)
            self.metrics.observe_probes(shard, n)
            starts = np.full(n, start)
            completions = np.full(n, completion)
        elif self.config.nprobe is None:
            # PARTITIONED broadcast: join on the slowest shard.
            ids, dists, results = self.router.search_all(queries, k)
            start = completion = close_time
            for shard, result in enumerate(results):
                shard_start, shard_done = self.devices[shard].serve(
                    result, close_time
                )
                completion = max(completion, shard_done)
                start = max(start, shard_start)
                self.metrics.observe_shard_service(shard, result)
                self.metrics.observe_probes(shard, n)
            starts = np.full(n, start)
            completions = np.full(n, completion)
        else:
            # PARTITIONED selective: each shard serves a sub-batch of
            # the queries that probed it, on its own device timeline;
            # a query joins on the slowest of *its* probed shards, not
            # on the whole pool.
            ids, dists, jobs = self.router.search_probed(
                queries, k, self.config.nprobe
            )
            starts = np.full(n, close_time)
            completions = np.full(n, close_time)
            for job in jobs:
                shard_start, shard_done = self.devices[job.shard].serve(
                    job.result, close_time
                )
                self.metrics.observe_shard_service(job.shard, job.result)
                self.metrics.observe_probes(job.shard, int(job.rows.size))
                starts[job.rows] = np.maximum(starts[job.rows], shard_start)
                completions[job.rows] = np.maximum(
                    completions[job.rows], shard_done
                )

        # One heap entry per distinct completion time: replicated and
        # broadcast batches collapse to a single entry, selective
        # probing adds one per fan-out join group.
        values, counts = np.unique(completions, return_counts=True)
        for value, count in zip(values, counts):
            heapq.heappush(self._in_service, (float(value), int(count)))
        self._in_service_total += len(batch)

        for i, request in enumerate(batch):
            completion = float(completions[i])
            request.batched_s = close_time
            request.start_s = float(starts[i])
            request.completion_s = completion
            request.outcome = COMPLETED
            request.result_ids = ids[i, : request.k]
            request.result_dists = dists[i, : request.k]
            self.cache.store(
                request.query_id, request.k, request.result_ids,
                request.result_dists,
            )
            self.metrics.observe_completion(request)
            if self.config.coalesce:
                self.coalescer.on_dispatch(
                    request, ids[i], dists[i], k, completion
                )

    def _retire_in_service(self, now: float) -> None:
        while self._in_service and self._in_service[0][0] <= now:
            _, count = heapq.heappop(self._in_service)
            self._in_service_total -= count
        # Results that have landed are no longer coalescing targets —
        # from now on the cache answers repeats of these queries.
        self.coalescer.retire(now)

    def _in_service_count(self) -> int:
        return self._in_service_total
