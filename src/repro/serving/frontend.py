"""The serving frontend: a discrete-event loop over simulated time.

This is the orchestrator-over-simulator layer: requests arrive on a
simulated clock, flow through admission control, the result cache and
the dynamic batcher, and closed batches are served by shard devices
whose *service times* come from the trace-driven platform simulators
(:class:`~repro.sim.stats.SimResult.sim_time_s`).  Nothing waits on
the wall clock, so a minute of simulated heavy traffic runs in
seconds and every run is exactly reproducible.

Event-loop invariants:

* Arrivals are processed in time order; before each arrival, any
  batcher deadline that expired in the gap fires first (so timeout
  closes happen at their exact simulated time, not at the next
  arrival).
* A shard device serves one batch at a time: a batch closed at time
  ``t`` starts at ``max(t, device_free_at)`` and completes after its
  simulated service time.  Replicated mode picks the earliest-free
  device; partitioned mode broadcasts and completes at the slowest
  shard (fan-out join).
* Admission counts the whole system — batcher queue plus dispatched
  but incomplete requests — so shedding reflects true backlog, not
  just the waiting room.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.serving.admission import AdmissionController
from repro.serving.batcher import BatchPolicy, DynamicBatcher
from repro.serving.cache import ResultCache
from repro.serving.metrics import MetricsCollector, ServingReport
from repro.serving.request import CACHE_HIT, COMPLETED, SHED, Request
from repro.serving.sharding import PARTITIONED, REPLICATED, ShardRouter


@dataclass(frozen=True)
class ServingConfig:
    """Frontend knobs (the batch policy rides in ``policy``)."""

    policy: BatchPolicy = field(default_factory=BatchPolicy)
    cache_capacity: int = 1024
    cache_hit_latency_s: float = 20e-6
    """Host hash-map lookup + response serialisation for a cache hit."""

    admission_capacity: int | None = None
    """Max requests in the system (queued + in service); None = unbounded."""


class ServingFrontend:
    """Runs a request stream against a shard router, collecting metrics."""

    def __init__(self, router: ShardRouter, config: ServingConfig | None = None):
        self.router = router
        self.config = config or ServingConfig()
        self.batcher = DynamicBatcher(self.config.policy)
        self.cache = ResultCache(self.config.cache_capacity)
        self.admission = AdmissionController(self.config.admission_capacity)
        self.metrics = MetricsCollector(router.num_shards)
        self._free_at = [0.0] * router.num_shards
        self._in_service: list[tuple[float, int]] = []  # (completion_s, count) heap

    def run(
        self, requests: list[Request], query_pool: np.ndarray
    ) -> ServingReport:
        """Serve a request stream drawn from ``query_pool``.

        ``query_pool`` is the (pool_size, dim) array the requests'
        ``query_id`` fields index into.  Requests are mutated in place
        (timestamps, outcomes, results) and summarised in the returned
        report.
        """
        pool = np.ascontiguousarray(query_pool, dtype=np.float32)
        last_time = 0.0
        for request in sorted(requests, key=lambda r: r.arrival_s):
            now = request.arrival_s
            last_time = max(last_time, now)
            self._fire_due_deadlines(pool, now)
            self._retire_in_service(now)
            depth = len(self.batcher) + self._in_service_count()
            self.metrics.observe_arrival(request, depth)
            if not self.admission.admit(depth):
                request.outcome = SHED
                self.metrics.observe_shed(request)
                continue
            cached = self.cache.lookup(request.query_id, request.k)
            if cached is not None:
                request.result_ids, request.result_dists = cached
                request.completion_s = now + self.config.cache_hit_latency_s
                request.outcome = CACHE_HIT
                self.metrics.observe_cache_hit(request)
                continue
            batch = self.batcher.offer(request)
            if batch is not None:
                self._dispatch(batch, pool, close_time=now)
        # End of stream: let a pending deadline fire at its real time,
        # then flush stragglers (fixed mode has no deadline).
        deadline = self.batcher.deadline()
        flush_time = deadline if deadline is not None else last_time
        batch = self.batcher.flush()
        if batch is not None:
            self._dispatch(batch, pool, close_time=flush_time)
        return self.metrics.report()

    # ---- event-loop internals -------------------------------------------
    def _fire_due_deadlines(self, pool: np.ndarray, now: float) -> None:
        while True:
            deadline = self.batcher.deadline()
            if deadline is None or deadline > now:
                return
            batch = self.batcher.poll(deadline)
            if batch is None:
                return
            self._dispatch(batch, pool, close_time=deadline, timeout_closed=True)

    def _dispatch(
        self,
        batch: list[Request],
        pool: np.ndarray,
        close_time: float,
        timeout_closed: bool = False,
    ) -> None:
        queries = pool[[r.query_id for r in batch]]
        # The batcher does not group by k; search at the batch's widest
        # k and trim per request below.
        k = max(r.k for r in batch)
        self.metrics.observe_batch(len(batch), timeout_closed=timeout_closed)

        if self.router.mode == REPLICATED:
            shard = int(np.argmin(self._free_at))
            ids, dists, result = self.router.search_on(shard, queries, k)
            start = max(close_time, self._free_at[shard])
            completion = start + result.sim_time_s
            self._free_at[shard] = completion
            self.metrics.observe_shard_service(shard, result)
        else:  # PARTITIONED: broadcast, join on the slowest shard
            ids, dists, results = self.router.search_all(queries, k)
            start = close_time
            completion = close_time
            for shard, result in enumerate(results):
                shard_start = max(close_time, self._free_at[shard])
                shard_done = shard_start + result.sim_time_s
                self._free_at[shard] = shard_done
                completion = max(completion, shard_done)
                start = max(start, shard_start)
                self.metrics.observe_shard_service(shard, result)

        heapq.heappush(self._in_service, (completion, len(batch)))
        for i, request in enumerate(batch):
            request.batched_s = close_time
            request.start_s = start
            request.completion_s = completion
            request.outcome = COMPLETED
            request.result_ids = ids[i, : request.k]
            request.result_dists = dists[i, : request.k]
            self.cache.store(
                request.query_id, request.k, request.result_ids,
                request.result_dists,
            )
            self.metrics.observe_completion(request)

    def _retire_in_service(self, now: float) -> None:
        while self._in_service and self._in_service[0][0] <= now:
            heapq.heappop(self._in_service)

    def _in_service_count(self) -> int:
        return sum(count for _, count in self._in_service)
