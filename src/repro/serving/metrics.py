"""Serving telemetry: QPS, latency percentiles, utilization, energy.

The offline experiments report batch makespans; an online system is
judged on different axes — sustained throughput, *tail* latency
(p95/p99, where queueing and burstiness live), queue depth, cache
effectiveness, shed rate and per-shard utilization.  The collector
accumulates per-request and per-batch observations during a frontend
run and condenses them into a :class:`ServingReport`.

Energy reuses the per-batch :class:`~repro.sim.stats.SimResult` energy
attached by :class:`~repro.sim.energy.EnergyModel`, so serving runs
report the same QPS/W currency as the paper's Fig. 20.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reporting import format_table
from repro.serving.request import Request
from repro.sim.stats import Counters, SimResult


@dataclass
class ServingReport:
    """Summary of one serving run (all times in seconds)."""

    offered: int
    completed: int
    cache_hits: int
    coalesced: int
    shed: int
    horizon_s: float
    qps: float
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    latency_mean_s: float
    mean_batch_size: float
    timeout_close_fraction: float
    cache_hit_rate: float
    shed_rate: float
    mean_queue_depth: float
    max_queue_depth: int
    shard_utilization: tuple[float, ...]
    energy_j: float
    counters: Counters = field(default_factory=Counters)
    shard_probe_counts: tuple[int, ...] = ()
    """Queries routed to each shard (selective probing: a query counts
    only on the shards it probed; broadcast counts it on every shard)."""

    mean_probes_per_query: float = 0.0
    """Average shards probed per dispatched query (replicated = 1,
    partitioned broadcast = num_shards, selective = nprobe)."""

    deadline_total: int = 0
    """Requests that carried a deadline (served or shed)."""

    deadline_misses: int = 0
    """Deadline-carrying requests that completed late or were shed."""

    deadline_miss_rate: float = 0.0
    """``deadline_misses / deadline_total`` (0 when no deadlines)."""

    goodput_qps: float = 0.0
    """Deadline-carrying requests answered *on time* per second — the
    SLO currency of throughput (late answers do not count)."""

    priority_stats: dict[int, dict[str, float]] = field(default_factory=dict)
    """Per priority class: ``offered`` / ``served`` / ``shed`` counts,
    ``met`` deadlines, and ``attainment`` (met / served-with-deadline;
    1.0 when the class carries no deadlines)."""

    scale_events: tuple[dict, ...] = ()
    """Autoscaler decisions (``ScaleEvent.to_dict()`` records), empty
    for static pools."""

    replicas_final: int = 0
    """Active replicas when the run ended (static pools: shard count)."""

    rebalance_events: tuple[dict, ...] = ()
    """Cluster migrations (``Migration.to_dict()`` records), empty for
    static placements."""

    cluster_map_final: tuple[int, ...] = ()
    """Cluster → shard-device placement when the run ended
    (partitioned pools with rebalancing; empty otherwise)."""

    timeseries: dict | None = None
    """Windowed metrics time series
    (:meth:`~repro.obs.windows.WindowedMetrics.series` output) when the
    run closed metrics on event-time windows
    (``ServingConfig.metrics_window_s``); ``None`` otherwise.  Each
    window row carries arrivals/completions/shed/cache-hit counters,
    queue-depth and batch-size gauges, within-window latency
    percentiles (p50/p95/p99) and per-device utilization."""

    flash: dict | None = None
    """Stateful-flash summary when the run served through
    ``ServingConfig.flash``: aggregate page reads, ECC soft decodes,
    refreshes (GC pauses), erase counts, write amplification and the
    per-device :meth:`~repro.serving.storage.FlashBackedStore.summary`
    records; ``None`` with flash off."""

    twin: dict | None = None
    """Digital-twin bookkeeping when the run was driven by a
    :class:`~repro.serving.twin.ServingTwin` (window width, windows
    simulated, checkpoints, what-if cache hits/misses, restores);
    ``None`` for plain runs.  Attached post-hoc by the twin — what-if
    fork reports never carry it, so a null what-if stays byte-identical
    to a from-scratch run."""

    @property
    def served(self) -> int:
        """Requests answered (searched, coalesced or from cache)."""
        return self.completed + self.cache_hits + self.coalesced

    @property
    def qps_per_watt(self) -> float:
        if self.energy_j <= 0 or self.horizon_s <= 0:
            return 0.0
        return self.qps / (self.energy_j / self.horizon_s)

    def to_dict(self) -> dict:
        """A JSON-safe dict of the full report surface.

        Round-trippable: ``ServingReport.from_dict(json.loads(
        json.dumps(report.to_dict())))`` reconstructs an equal report.
        This is the one serialization path shared by the sweep JSON,
        the CLI's ``--report-json`` and the perf-trajectory tooling —
        ad-hoc dict assembly drifts, this does not.

        Derived conveniences (``served``, ``qps_per_watt``) are
        included for consumers and ignored by :meth:`from_dict`.
        """

        def _num(value):
            # numpy scalars -> native (json.dumps chokes on np.int64).
            return value.item() if hasattr(value, "item") else value

        return {
            "offered": self.offered,
            "completed": self.completed,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "shed": self.shed,
            "served": self.served,
            "horizon_s": self.horizon_s,
            "qps": self.qps,
            "latency_p50_s": self.latency_p50_s,
            "latency_p95_s": self.latency_p95_s,
            "latency_p99_s": self.latency_p99_s,
            "latency_mean_s": self.latency_mean_s,
            "mean_batch_size": self.mean_batch_size,
            "timeout_close_fraction": self.timeout_close_fraction,
            "cache_hit_rate": self.cache_hit_rate,
            "shed_rate": self.shed_rate,
            "mean_queue_depth": self.mean_queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "shard_utilization": [float(u) for u in self.shard_utilization],
            "energy_j": self.energy_j,
            "qps_per_watt": self.qps_per_watt,
            "counters": {
                str(key): _num(value)
                for key, value in sorted(self.counters.items())
            },
            "shard_probe_counts": [int(c) for c in self.shard_probe_counts],
            "mean_probes_per_query": self.mean_probes_per_query,
            "deadline_total": self.deadline_total,
            "deadline_misses": self.deadline_misses,
            "deadline_miss_rate": self.deadline_miss_rate,
            "goodput_qps": self.goodput_qps,
            "priority_stats": {
                str(priority): {k: float(v) for k, v in stats.items()}
                for priority, stats in sorted(self.priority_stats.items())
            },
            "scale_events": [dict(e) for e in self.scale_events],
            "replicas_final": self.replicas_final,
            "rebalance_events": [dict(e) for e in self.rebalance_events],
            "cluster_map_final": [int(s) for s in self.cluster_map_final],
            "timeseries": self.timeseries,
            "flash": self.flash,
            "twin": self.twin,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServingReport":
        """Rebuild a report from :meth:`to_dict` output (or its JSON)."""
        d = dict(data)
        for derived in ("served", "qps_per_watt"):
            d.pop(derived, None)
        d["shard_utilization"] = tuple(
            float(u) for u in d["shard_utilization"]
        )
        d["counters"] = Counters(
            {str(k): v for k, v in d["counters"].items()}
        )
        d["shard_probe_counts"] = tuple(
            int(c) for c in d["shard_probe_counts"]
        )
        d["priority_stats"] = {
            int(priority): {k: float(v) for k, v in stats.items()}
            for priority, stats in d["priority_stats"].items()
        }
        d["scale_events"] = tuple(dict(e) for e in d["scale_events"])
        d["rebalance_events"] = tuple(dict(e) for e in d["rebalance_events"])
        d["cluster_map_final"] = tuple(
            int(s) for s in d["cluster_map_final"]
        )
        d.setdefault("flash", None)  # reports predating stateful flash
        d.setdefault("twin", None)  # reports predating the digital twin
        return cls(**d)

    def format(self, title: str = "serving summary") -> str:
        """An aligned two-column report table."""
        rows = [
            ["offered", self.offered],
            ["served", self.served],
            ["  searched", self.completed],
            ["  cache hits", self.cache_hits],
            ["  coalesced", self.coalesced],
            ["shed", self.shed],
            ["QPS", f"{self.qps:,.0f}"],
            ["p50 latency", f"{self.latency_p50_s * 1e3:.3f} ms"],
            ["p95 latency", f"{self.latency_p95_s * 1e3:.3f} ms"],
            ["p99 latency", f"{self.latency_p99_s * 1e3:.3f} ms"],
            ["mean latency", f"{self.latency_mean_s * 1e3:.3f} ms"],
            ["mean batch size", f"{self.mean_batch_size:.1f}"],
            ["timeout closes", f"{self.timeout_close_fraction:.0%}"],
            ["cache hit rate", f"{self.cache_hit_rate:.1%}"],
            ["shed rate", f"{self.shed_rate:.1%}"],
            ["mean queue depth", f"{self.mean_queue_depth:.1f}"],
            ["max queue depth", self.max_queue_depth],
            [
                "shard utilization",
                " ".join(f"{u:.0%}" for u in self.shard_utilization),
            ],
            [
                "shard probes",
                " ".join(str(c) for c in self.shard_probe_counts),
            ],
            ["probed shards/query", f"{self.mean_probes_per_query:.2f}"],
            ["energy", f"{self.energy_j:.3g} J"],
        ]
        if self.deadline_total:
            rows.extend(
                [
                    ["deadline misses",
                     f"{self.deadline_misses}/{self.deadline_total} "
                     f"({self.deadline_miss_rate:.1%})"],
                    ["goodput", f"{self.goodput_qps:,.0f} QPS on time"],
                ]
            )
            for priority in sorted(self.priority_stats, reverse=True):
                stats = self.priority_stats[priority]
                rows.append(
                    [
                        f"  priority {priority}",
                        f"attainment {stats['attainment']:.1%} "
                        f"(served {stats['served']:.0f}, "
                        f"shed {stats['shed']:.0f})",
                    ]
                )
        if self.scale_events:
            peak = max(e["replicas_after"] for e in self.scale_events)
            rows.append(
                [
                    "autoscaling",
                    f"{len(self.scale_events)} events, peak {peak}, "
                    f"final {self.replicas_final} replicas",
                ]
            )
        if self.rebalance_events:
            moved = sum(e["bytes"] for e in self.rebalance_events)
            rows.append(
                [
                    "rebalancing",
                    f"{len(self.rebalance_events)} migrations, "
                    f"{moved / 1e6:.2f} MB moved",
                ]
            )
        if self.flash is not None:
            rows.append(
                [
                    "flash",
                    f"{self.flash['refreshes']} refreshes, "
                    f"{self.flash['total_erases']} erases, "
                    f"WA {self.flash['write_amplification']:.2f}, "
                    f"{self.flash['ecc_soft_decodes']} ECC soft decodes",
                ]
            )
        if self.twin is not None:
            rows.append(
                [
                    "twin",
                    f"{self.twin['windows_simulated']} windows, "
                    f"{self.twin['checkpoints']} checkpoints, "
                    f"cache {self.twin['cache_hits']}/"
                    f"{self.twin['cache_hits'] + self.twin['cache_misses']} "
                    f"hit, {self.twin['restores']} restores",
                ]
            )
        return format_table(["metric", "value"], rows, title=title)


class MetricsCollector:
    """Accumulates observations during a frontend run."""

    def __init__(self, num_shards: int, windows=None) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self.windows = windows
        """Optional :class:`~repro.obs.windows.WindowedMetrics` whose
        series lands in ``ServingReport.timeseries`` (the frontend
        feeds it; the collector only reduces it at report time)."""
        self.latencies_s: list[float] = []
        self.cache_hits = 0
        self.coalesced = 0
        self.completed = 0
        self.shed = 0
        self.batch_sizes: list[int] = []
        self.queue_depths: list[int] = []
        self.shard_busy_s = [0.0] * num_shards
        self.shard_batches = [0] * num_shards
        self.shard_query_probes = [0] * num_shards
        self.energy_j = 0.0
        self.counters = Counters()
        self.first_arrival_s: float | None = None
        self.last_completion_s = 0.0
        self.timeout_closes = 0
        self.deadline_total = 0
        self.deadline_misses = 0
        self.deadline_met = 0
        # priority -> [offered, served, shed, with_deadline, met,
        #              shed_with_deadline]
        self.priority_counts: dict[int, list[int]] = {}
        self.scale_events: list[dict] = []
        self.replicas_final = num_shards
        self.rebalance_events: list[dict] = []
        self.cluster_map_final: tuple[int, ...] = ()
        self.flash: dict | None = None

    # ---- observations ---------------------------------------------------
    def observe_arrival(self, request: Request, queue_depth: int) -> None:
        if self.first_arrival_s is None:
            self.first_arrival_s = request.arrival_s
        self.queue_depths.append(queue_depth)
        self._priority(request.priority)[0] += 1

    def _priority(self, priority: int) -> list[int]:
        return self.priority_counts.setdefault(priority, [0, 0, 0, 0, 0, 0])

    def observe_completion(self, request: Request) -> None:
        self.completed += 1
        self._observe_done(request)

    def observe_cache_hit(self, request: Request) -> None:
        self.cache_hits += 1
        self._observe_done(request)

    def observe_coalesced(self, request: Request) -> None:
        """A follower that piggybacked on an identical in-flight query."""
        self.coalesced += 1
        self._observe_done(request)

    def observe_shed(self, request: Request) -> None:
        self.shed += 1
        counts = self._priority(request.priority)
        counts[2] += 1
        if request.slo_met is not None:
            # Request.slo_met: an unanswered deadline is a missed one.
            self.deadline_total += 1
            self.deadline_misses += 1
            counts[3] += 1
            counts[5] += 1

    def observe_batch(self, size: int, timeout_closed: bool = False) -> None:
        """One logical batch closed by the batcher."""
        self.batch_sizes.append(size)
        if timeout_closed:
            self.timeout_closes += 1

    def observe_shard_service(self, shard: int, result: SimResult) -> None:
        """One shard device serving (its slice of) a batch.

        A replicated-mode batch lands on one shard; a partitioned-mode
        batch fans out and produces one observation per shard.  Busy
        time is *not* accumulated here: with pipelined devices,
        consecutive batches overlap, so summing per-batch makespans
        would double-count — the frontend reports true device
        occupancy via :meth:`set_shard_busy` instead.
        """
        self.shard_batches[shard] += 1
        self.energy_j += result.energy_j
        self.counters.update(result.counters)

    def observe_probes(self, shard: int, n_queries: int) -> None:
        """``n_queries`` of a dispatched batch were routed to ``shard``.

        The per-query currency of routing work: a replicated batch
        books its whole batch on one shard, a partitioned broadcast on
        every shard, selective probing only on the ``nprobe`` shards
        each query chose — so ``sum(shard_query_probes)`` divided by
        the dispatched query count is the effective probes-per-query.
        """
        self.shard_query_probes[shard] += n_queries

    def ensure_shards(self, num_shards: int) -> None:
        """Grow the per-shard series (autoscaler added replicas)."""
        while self.num_shards < num_shards:
            self.shard_busy_s.append(0.0)
            self.shard_batches.append(0)
            self.shard_query_probes.append(0)
            self.num_shards += 1

    def set_shard_busy(self, busy_s: list[float]) -> None:
        """Authoritative per-shard occupancy (union of service intervals)."""
        self.ensure_shards(len(busy_s))
        if len(busy_s) != self.num_shards:
            raise ValueError(
                f"expected {self.num_shards} busy values, got {len(busy_s)}"
            )
        self.shard_busy_s = list(busy_s)

    def set_scaling(self, events: list[dict], replicas_final: int) -> None:
        """Record the autoscaler's decisions for the report."""
        self.scale_events = list(events)
        self.replicas_final = replicas_final

    def set_rebalance(
        self, events: list[dict], cluster_map: list[int]
    ) -> None:
        """Record the rebalancer's migrations and the final placement."""
        self.rebalance_events = list(events)
        self.cluster_map_final = tuple(int(s) for s in cluster_map)

    def set_flash(self, summary: dict) -> None:
        """Record the flash substrate's end-of-run summary."""
        self.flash = summary

    def set_event_counts(self, counts: dict[str, int]) -> None:
        """Fold the kernel's per-type dispatch counts into the counters.

        Keys land as ``loop_events_<EventType>`` plus a
        ``loop_events_total`` sum — the event-mix telemetry the run
        profiler divides wall-clock by.  Additive, like every counter:
        a collector reused across runs accumulates.
        """
        total = 0
        for name in sorted(counts):
            n = int(counts[name])
            self.counters[f"loop_events_{name}"] += n
            total += n
        self.counters["loop_events_total"] += total

    def _observe_done(self, request: Request) -> None:
        self.latencies_s.append(request.latency_s)
        self.last_completion_s = max(self.last_completion_s, request.completion_s)
        counts = self._priority(request.priority)
        counts[1] += 1
        met = request.slo_met
        if met is not None:
            self.deadline_total += 1
            counts[3] += 1
            if met:
                self.deadline_met += 1
                counts[4] += 1
            else:
                self.deadline_misses += 1

    # ---- reduction ------------------------------------------------------
    def report(self) -> ServingReport:
        lat = np.asarray(self.latencies_s, dtype=np.float64)
        served = self.completed + self.cache_hits + self.coalesced
        offered = served + self.shed
        start = self.first_arrival_s or 0.0
        horizon = max(self.last_completion_s - start, 0.0)
        p50 = p95 = p99 = mean = 0.0
        if lat.size:
            p50, p95, p99 = (
                float(np.percentile(lat, q)) for q in (50.0, 95.0, 99.0)
            )
            mean = float(lat.mean())
        n_batches = len(self.batch_sizes)
        dispatched = sum(self.batch_sizes)
        total_probes = sum(self.shard_query_probes)
        priority_stats = {}
        for priority, counts in self.priority_counts.items():
            (
                p_offered, p_served, p_shed, p_deadline, p_met,
                p_shed_deadline,
            ) = counts
            served_with_deadline = p_deadline - p_shed_deadline
            priority_stats[priority] = {
                "offered": float(p_offered),
                "served": float(p_served),
                "shed": float(p_shed),
                "with_deadline": float(p_deadline),
                "met": float(p_met),
                # Attainment over *admitted* (served) requests with a
                # deadline; shed requests are reported separately.  A
                # class whose deadline-carrying requests were ALL shed
                # attains nothing (not a vacuous 100%); only a class
                # with no deadlines at all trivially attains.
                "attainment": (
                    p_met / served_with_deadline
                    if served_with_deadline > 0
                    else (1.0 if p_deadline == 0 else 0.0)
                ),
            }
        return ServingReport(
            offered=offered,
            completed=self.completed,
            cache_hits=self.cache_hits,
            coalesced=self.coalesced,
            shed=self.shed,
            horizon_s=horizon,
            qps=served / horizon if horizon > 0 else 0.0,
            latency_p50_s=p50,
            latency_p95_s=p95,
            latency_p99_s=p99,
            latency_mean_s=mean,
            mean_batch_size=(
                float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0
            ),
            timeout_close_fraction=(
                self.timeout_closes / n_batches if n_batches else 0.0
            ),
            cache_hit_rate=self.cache_hits / served if served else 0.0,
            shed_rate=self.shed / offered if offered else 0.0,
            mean_queue_depth=(
                float(np.mean(self.queue_depths)) if self.queue_depths else 0.0
            ),
            max_queue_depth=max(self.queue_depths, default=0),
            shard_utilization=tuple(
                busy / horizon if horizon > 0 else 0.0
                for busy in self.shard_busy_s
            ),
            energy_j=self.energy_j,
            counters=self.counters,
            shard_probe_counts=tuple(self.shard_query_probes),
            mean_probes_per_query=(
                total_probes / dispatched if dispatched else 0.0
            ),
            deadline_total=self.deadline_total,
            deadline_misses=self.deadline_misses,
            deadline_miss_rate=(
                self.deadline_misses / self.deadline_total
                if self.deadline_total
                else 0.0
            ),
            goodput_qps=self.deadline_met / horizon if horizon > 0 else 0.0,
            priority_stats=priority_stats,
            scale_events=tuple(self.scale_events),
            replicas_final=self.replicas_final,
            rebalance_events=tuple(self.rebalance_events),
            cluster_map_final=self.cluster_map_final,
            timeseries=(
                self.windows.series() if self.windows is not None else None
            ),
            flash=self.flash,
        )
