"""Arrival processes: when requests reach the frontend.

Three generators cover the standard serving evaluation regimes:

* :class:`PoissonArrivals` — memoryless open-loop traffic at a fixed
  mean rate; the default for steady-state tail-latency measurement.
* :class:`MMPPArrivals` — a two-state Markov-modulated Poisson process
  (bursty traffic): the rate alternates between a high and a low phase
  with exponentially distributed dwell times, keeping the long-run
  mean at ``rate_qps``.  Burstiness is what separates p99 from p50 in
  production; Poisson-only evaluations understate queueing.
* :class:`TraceReplayArrivals` — replay recorded inter-arrival gaps
  (e.g. from a production log or a :mod:`repro.workloads` trace file),
  cycling and rescaling to the requested length.

All processes are deterministic given their seed, so serving
experiments are exactly reproducible.  :class:`QueryStream` combines an
arrival process with a Zipfian popularity sampler over a finite query
pool to produce the full request sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serving.request import Request
from repro.workloads.traces import ZipfianSampler


@dataclass(frozen=True)
class PoissonArrivals:
    """Open-loop Poisson traffic at ``rate_qps`` requests/second."""

    rate_qps: float

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ValueError("rate_qps must be positive")

    def interarrival_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.exponential(1.0 / self.rate_qps, size=n)


@dataclass(frozen=True)
class MMPPArrivals:
    """Two-state Markov-modulated Poisson process (bursty traffic).

    The instantaneous rate is ``rate_qps * (1 + burstiness)`` in the
    high phase and ``rate_qps * (1 - burstiness)`` in the low phase;
    phases dwell for an exponential time with mean ``mean_dwell_s``.
    Equal expected dwell in both phases keeps the long-run mean rate at
    ``rate_qps``, so MMPP and Poisson runs are load-comparable.
    """

    rate_qps: float
    burstiness: float = 0.8
    mean_dwell_s: float = 0.05

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ValueError("rate_qps must be positive")
        if not 0.0 <= self.burstiness < 1.0:
            raise ValueError("burstiness must be in [0, 1)")
        if self.mean_dwell_s <= 0:
            raise ValueError("mean_dwell_s must be positive")

    def interarrival_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        rates = (
            self.rate_qps * (1.0 + self.burstiness),
            self.rate_qps * (1.0 - self.burstiness),
        )
        gaps = np.empty(n, dtype=np.float64)
        state = int(rng.integers(0, 2))
        phase_left = rng.exponential(self.mean_dwell_s)
        for i in range(n):
            gap = rng.exponential(1.0 / rates[state])
            # Cross as many phase boundaries as the gap spans; the
            # residual gap re-draws at the new phase's rate so long
            # gaps do not smuggle high-phase density into low phases.
            while gap > phase_left:
                gap -= phase_left
                gap *= rates[state]
                state = 1 - state
                gap /= rates[state]
                phase_left = rng.exponential(self.mean_dwell_s)
            phase_left -= gap
            gaps[i] = gap
        return gaps


@dataclass(frozen=True)
class TraceReplayArrivals:
    """Replay a recorded sequence of inter-arrival gaps.

    ``gaps_s`` is cycled when more arrivals are requested than the
    trace holds, and linearly rescaled so its mean rate matches
    ``rate_qps`` when that is given (pass ``None`` to replay verbatim).
    """

    gaps_s: tuple[float, ...]
    rate_qps: float | None = None

    def __post_init__(self) -> None:
        if not self.gaps_s:
            raise ValueError("need at least one inter-arrival gap")
        if any(g < 0 for g in self.gaps_s):
            raise ValueError("inter-arrival gaps must be non-negative")
        if self.rate_qps is not None and self.rate_qps <= 0:
            raise ValueError("rate_qps must be positive")

    @classmethod
    def from_times(
        cls, arrival_times_s: np.ndarray, rate_qps: float | None = None
    ) -> "TraceReplayArrivals":
        times = np.sort(np.asarray(arrival_times_s, dtype=np.float64))
        gaps = np.diff(times, prepend=0.0)
        return cls(gaps_s=tuple(float(g) for g in gaps), rate_qps=rate_qps)

    def interarrival_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        base = np.asarray(self.gaps_s, dtype=np.float64)
        reps = -(-n // base.size)
        gaps = np.tile(base, reps)[:n]
        if self.rate_qps is not None:
            mean = gaps.mean()
            if mean > 0:
                gaps = gaps * (1.0 / (self.rate_qps * mean))
        return gaps


@dataclass
class QueryStream:
    """A reproducible request stream: arrivals x query popularity.

    ``pool_size`` distinct queries exist; each request draws its
    ``query_id`` from a :class:`~repro.workloads.traces.ZipfianSampler`
    (``zipf_exponent=0`` gives uniform popularity, i.e. no cacheable
    skew).

    SLO workloads mix priority classes: each request draws its
    ``priority`` from ``priorities`` (weighted by ``priority_weights``,
    uniform when omitted) and gets an absolute deadline
    ``arrival + slo_s`` — pass a ``{priority: offset}`` mapping to give
    classes different budgets (a class absent from the mapping stays
    best-effort), or a scalar to apply one SLO to every request.
    ``slo_s=None`` (the default) generates deadline-free streams.
    """

    arrivals: PoissonArrivals | MMPPArrivals | TraceReplayArrivals
    pool_size: int
    n_requests: int
    k: int = 10
    zipf_exponent: float = 1.0
    seed: int = 0
    priorities: tuple[int, ...] = (0,)
    priority_weights: tuple[float, ...] | None = None
    slo_s: float | dict[int, float] | None = None

    def __post_init__(self) -> None:
        if not self.priorities:
            raise ValueError("need at least one priority class")
        if self.priority_weights is not None:
            if len(self.priority_weights) != len(self.priorities):
                raise ValueError(
                    "priority_weights must match priorities in length"
                )
            if any(w < 0 for w in self.priority_weights) or not any(
                self.priority_weights
            ):
                raise ValueError(
                    "priority_weights must be non-negative and not all zero"
                )
        offsets = (
            self.slo_s.values()
            if isinstance(self.slo_s, dict)
            else [] if self.slo_s is None else [self.slo_s]
        )
        if any(offset <= 0 for offset in offsets):
            raise ValueError("SLO offsets must be positive")

    def _deadline(self, priority: int, arrival: float) -> float | None:
        if self.slo_s is None:
            return None
        if isinstance(self.slo_s, dict):
            offset = self.slo_s.get(priority)
            return None if offset is None else arrival + offset
        return arrival + self.slo_s

    def generate(self) -> list[Request]:
        """Materialise the stream (sorted by arrival time)."""
        if self.n_requests < 0:
            raise ValueError("n_requests must be >= 0")
        rng = np.random.default_rng(self.seed)
        gaps = self.arrivals.interarrival_times(self.n_requests, rng)
        times = np.cumsum(gaps)
        sampler = ZipfianSampler(
            pool_size=self.pool_size,
            exponent=self.zipf_exponent,
            seed=self.seed + 1,
        )
        query_ids = sampler.sample(self.n_requests)
        weights = self.priority_weights
        if weights is not None:
            total = sum(weights)
            weights = [w / total for w in weights]
        priorities = rng.choice(
            np.asarray(self.priorities, dtype=np.int64),
            size=self.n_requests,
            p=weights,
        )
        return [
            Request(
                request_id=i,
                query_id=int(query_ids[i]),
                arrival_s=float(times[i]),
                k=self.k,
                priority=int(priorities[i]),
                deadline_s=self._deadline(int(priorities[i]), float(times[i])),
            )
            for i in range(self.n_requests)
        ]
