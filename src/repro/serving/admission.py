"""Admission control: bounded queues and priority-aware load shedding.

An open-loop arrival stream offered above system capacity grows the
queue without bound — latency diverges and every request eventually
misses its SLO.  The standard defence is to bound the number of
requests in the system and *shed* (reject fast) beyond it: shed
requests cost almost nothing and the requests that are admitted keep a
bounded, predictable tail latency.

:class:`AdmissionController` implements that policy over the
frontend's in-system count (batcher queue + dispatched-but-incomplete
requests).  ``capacity=None`` disables shedding, which is the right
setting for closed-loop or underloaded experiments.

Plain admission sheds in *arrival order*: whoever arrives while the
system is full is rejected, regardless of who is queued.  With
priority-aware admission (``ServingConfig(priority_admission=True)``)
an arrival that is more urgent than the least urgent *queued* request
preempts it instead: the victim is shed, the arrival takes its place.
Urgency orders by priority class first (higher wins), then by deadline
(earlier wins; no deadline sorts last) — so under overload the system
sheds lowest-priority / latest-deadline work first rather than
whatever happened to arrive during the burst.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.serving.request import Request


def urgency_key(request: Request) -> tuple[int, float]:
    """Sort key: larger = more urgent.

    Priority class dominates; within a class an earlier deadline is
    more urgent and a missing deadline (best-effort) is least urgent.
    """
    deadline = (
        request.deadline_s if request.deadline_s is not None else math.inf
    )
    return (request.priority, -deadline)


def select_victim(
    pending: Iterable[Request], incoming: Request
) -> Request | None:
    """The queued request ``incoming`` should preempt, if any.

    Returns the least urgent queued request *strictly* less urgent
    than ``incoming`` (ties keep the incumbent — preemption must buy
    urgency, not churn), or ``None`` when the arrival should be shed.
    """
    victim = min(pending, key=urgency_key, default=None)
    if victim is None or urgency_key(incoming) <= urgency_key(victim):
        return None
    return victim


class AdmissionController:
    """Bounded-in-flight admission with shed and preemption accounting."""

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.capacity = capacity
        self.admitted = 0
        self.shed = 0
        self.preemptions = 0
        """Arrivals admitted by shedding a less urgent queued request."""

    def admit(self, in_system: int) -> bool:
        """Decide one arrival given the current in-system request count."""
        if in_system < 0:
            raise ValueError("in_system must be >= 0")
        if self.capacity is not None and in_system >= self.capacity:
            self.shed += 1
            return False
        self.admitted += 1
        return True

    def preempt(self) -> None:
        """Reclassify the last rejection as a preemption.

        The arrival :meth:`admit` just counted as shed was admitted
        after all, in place of a queued victim — the in-system count is
        unchanged (one out, one in), and the victim stays in
        ``admitted`` (it *was* admitted; it is shed now).
        """
        if self.shed == 0:
            raise ValueError("no rejection to reclassify")
        self.shed -= 1
        self.admitted += 1
        self.preemptions += 1

    @property
    def offered(self) -> int:
        return self.admitted + self.shed

    @property
    def shed_rate(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered
