"""Admission control: bounded queues and load shedding.

An open-loop arrival stream offered above system capacity grows the
queue without bound — latency diverges and every request eventually
misses its SLO.  The standard defence is to bound the number of
requests in the system and *shed* (reject fast) beyond it: shed
requests cost almost nothing and the requests that are admitted keep a
bounded, predictable tail latency.

:class:`AdmissionController` implements that policy over the
frontend's in-system count (batcher queue + dispatched-but-incomplete
requests).  ``capacity=None`` disables shedding, which is the right
setting for closed-loop or underloaded experiments.
"""

from __future__ import annotations


class AdmissionController:
    """Bounded-in-flight admission with shed accounting."""

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.capacity = capacity
        self.admitted = 0
        self.shed = 0

    def admit(self, in_system: int) -> bool:
        """Decide one arrival given the current in-system request count."""
        if in_system < 0:
            raise ValueError("in_system must be >= 0")
        if self.capacity is not None and in_system >= self.capacity:
            self.shed += 1
            return False
        self.admitted += 1
        return True

    @property
    def offered(self) -> int:
        return self.admitted + self.shed

    @property
    def shed_rate(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered
