"""Shard device timelines: blocking or pipelined batch service.

The original frontend kept one ``free_at`` scalar per shard — a device
served one batch at a time, start to finish.  But the platform models
now report *phase timelines* (:class:`~repro.sim.stats.PhaseSegment`),
and the stages of consecutive batches occupy different hardware: while
batch N sits in the FPGA sorter and its results stream out over PCIe,
the NAND array and MAC groups are idle — exactly when batch N+1's
read/MAC work could run (the paper's Fig. 19 sub-batching argument,
applied online).

:class:`ShardDevice` models that: each pipeline resource named by a
batch's :meth:`~repro.sim.stats.SimResult.pipeline_stages` is a FIFO
queue — a :class:`~repro.sim.engine.Resource` from the simulation
core, the same serial-server primitive the platform models book their
trace work on.  A batch walks its stage chain in order; each stage
starts no earlier than (a) the previous stage of the *same* batch
finishing and (b) the resource draining the previous batch's stage.
With ``pipelined=False`` the device collapses to a single serial
resource (one batch at a time), which is the blocking baseline the
benchmarks compare against.

Devices also serve *non-query* work: :meth:`book` occupies a named
stage FIFO for a fixed duration, which is how partitioned-mode
rebalancing charges a cluster migration's data movement to the source
and destination devices — the migration read/write contends with query
batches on the same entry-stage FIFO instead of being free.
"""

from __future__ import annotations

from typing import Callable

from repro.obs.trace import NullTracer, Tracer
from repro.sim.engine import Resource
from repro.sim.stats import SimResult

#: Stage name non-query work books on when a device has never served a
#: batch (no entry stage is known yet).
MIGRATION_STAGE = "migration"


class ShardDevice:
    """Occupancy state of one shard device across a serving run."""

    def __init__(self, pipelined: bool = True) -> None:
        self.pipelined = pipelined
        self.tracer: Tracer = NullTracer()
        """Span sink for stage occupancy (observe-only; the default
        no-op tracer records nothing and perturbs nothing)."""

        self.trace_pid: int = 0
        """Trace process id this device's lanes render under."""

        self.busy_observer: Callable[[float, float], None] | None = None
        """Called with each *clipped* busy increment (the disjoint
        intervals whose union is ``busy_s``) — the windowed-metrics tap
        for per-device utilization time series."""

        self._stages: dict[str, Resource] = {}
        self._serial = Resource("device")
        """The whole-device timeline used in blocking mode."""

        self._entry_resource: str | None = None
        self._predict_scratch: dict[str, float] = {}
        """Persistent scratch for :meth:`predict`'s simulated per-stage
        frees — cleared (not rebuilt) per call, so the slo policy's
        every-queue-event dry-runs allocate nothing in steady state."""

        self._drain_at = 0.0
        self._occupied_until = 0.0
        self.busy_s = 0.0
        """Union of this device's service intervals: time with at least
        one batch (or migration) in flight.  Overlapped pipeline stages
        count once, so ``busy_s / horizon`` is a true utilization."""

        self.batches_served = 0

    @property
    def drain_at(self) -> float:
        """When the device is fully empty (last stage of last batch)."""
        return self._drain_at

    @property
    def stage_busy(self) -> dict[str, float]:
        """Busy seconds per pipeline stage resource (blocking devices
        report a single ``"device"`` entry)."""
        if not self.pipelined:
            return {self._serial.name: self._serial.busy_time}
        return {name: r.busy_time for name, r in self._stages.items()}

    def _stage(self, name: str) -> Resource:
        stage = self._stages.get(name)
        if stage is None:
            stage = Resource(name)
            self._stages[name] = stage
        return stage

    def earliest_start(
        self, at: float, entry_resource: str | None = None
    ) -> float:
        """Earliest time a batch arriving at ``at`` could begin service.

        Pipelined devices admit a new batch as soon as its *entry*
        stage frees up; blocking devices only when fully drained.
        ``entry_resource`` names the first stage of the candidate
        batch's chain when the caller knows it; otherwise the most
        recently served chain's entry stage is assumed (stage chains
        are homogeneous across batches on one platform, but a
        heterogeneous history — e.g. a spill changing the front stage —
        must read the *current* chain's FIFO, not the first-ever one).
        """
        if not self.pipelined:
            return max(at, self._drain_at)
        if entry_resource is None:
            entry_resource = self._entry_resource
        if entry_resource is None:
            return at
        stage = self._stages.get(entry_resource)
        return at if stage is None else stage.peek(at)

    def serve(self, result: SimResult, at: float) -> tuple[float, float]:
        """Book one batch onto the device; returns ``(start, completion)``.

        ``start`` is when the first stage begins executing, ``completion``
        when the last stage ends.  An unloaded device reproduces the
        batch's ``sim_time_s`` exactly in either mode.
        """
        if not self.pipelined:
            start, completion = self._serial.acquire(at, result.sim_time_s)
            if self.tracer.enabled:
                tid = self.tracer.thread(self.trace_pid, self._serial.name)
                self.tracer.complete(
                    "batch", "stage", start, completion,
                    pid=self.trace_pid, tid=tid,
                )
            self._drain_at = completion
            self._book_busy(start, completion)
            self.batches_served += 1
            return start, completion

        chain = result.pipeline_stages()
        # pipeline_stages() is never empty (opaque results collapse to
        # one "device" stage).  The entry resource tracks the *latest*
        # chain: earliest_start must read the FIFO a new batch would
        # actually queue on, not the first-ever batch's front stage.
        self._entry_resource = chain[0][0]
        start, t = self._acquire_chain(chain, at)
        self._drain_at = max(self._drain_at, t)
        self._book_busy(start, t)
        self.batches_served += 1
        return start, t

    def book(
        self,
        at: float,
        duration: float,
        resource: str | None = None,
        label: str = "data movement",
        category: str = "movement",
    ) -> tuple[float, float]:
        """Occupy one stage FIFO with non-query work (data movement,
        flash maintenance).

        A cluster migration's read (source device) or write
        (destination device) queues behind — and delays — query batches
        on the named stage; blocking devices serialize it with whole
        batches.  ``resource`` defaults to the device's current entry
        stage (falling back to :data:`MIGRATION_STAGE` on a device that
        has never served).  ``label``/``category`` name the booked span
        in the trace, so migrations and GC refreshes render as distinct
        lanes.  Returns the booked ``(start, end)``.
        """
        if duration < 0:
            raise ValueError(f"negative booking duration {duration!r}")
        if not self.pipelined:
            name = self._serial.name
            start, end = self._serial.acquire(at, duration)
        else:
            name = resource or self._entry_resource or MIGRATION_STAGE
            start, end = self._stage(name).acquire(at, duration)
        if self.tracer.enabled:
            tid = self.tracer.thread(self.trace_pid, name)
            self.tracer.complete(
                label, category, start, end,
                pid=self.trace_pid, tid=tid,
            )
        self._drain_at = max(self._drain_at, end)
        self._book_busy(start, end)
        return start, end

    def predict(
        self, chain: list[tuple[str, float]], at: float
    ) -> tuple[float, float]:
        """Dry-run a ``(resource, duration)`` chain against the current
        FIFO state without booking it; returns ``(start, completion)``.

        This is the drain-time prediction behind the ``slo`` batch
        policy: given a :class:`~repro.serving.slo.ServiceModel`
        estimate of a candidate batch's stage chain, it answers "when
        would this batch complete if closed at ``at``" from the same
        state :meth:`serve` will book it into.  Works on a
        never-dispatched device too: with no FIFO backlog the chain
        starts at ``at`` and the prediction is its unloaded makespan.
        """
        if not chain:
            raise ValueError("need a non-empty stage chain")
        if not self.pipelined:
            start = max(at, self._drain_at)
            return start, start + sum(d for _, d in chain)
        # Simulated per-stage frees live in a persistent scratch dict
        # seeded lazily from each touched stage's real FIFO — only the
        # chain's own resources are consulted, and nothing is rebuilt
        # per call.
        free = self._predict_scratch
        free.clear()
        stages = self._stages
        t = at
        start: float | None = None
        for resource, duration in chain:
            stage_free = free.get(resource)
            if stage_free is None:
                stage = stages.get(resource)
                stage_free = 0.0 if stage is None else stage.next_free
            stage_start = max(t, stage_free)
            stage_end = stage_start + duration
            free[resource] = stage_end
            if start is None:
                start = stage_start
            t = stage_end
        return start, t

    def _acquire_chain(
        self, chain: list[tuple[str, float]], at: float
    ) -> tuple[float, float]:
        """Queue a stage chain through the per-resource FIFOs; returns
        ``(start, completion)``."""
        t = at
        start: float | None = None
        trace = self.tracer.enabled
        for resource, duration in chain:
            stage_start, stage_end = self._stage(resource).acquire(t, duration)
            if trace:
                tid = self.tracer.thread(self.trace_pid, resource)
                self.tracer.complete(
                    resource, "stage", stage_start, stage_end,
                    pid=self.trace_pid, tid=tid,
                )
            if start is None:
                start = stage_start
            t = stage_end
        return start, t

    def _book_busy(self, start: float, completion: float) -> None:
        """Accumulate the union of service intervals.

        Batches are served in dispatch order, so interval starts are
        monotone and the union reduces to clipping each interval at
        the previous high-water mark.
        """
        if completion > self._occupied_until:
            clipped_start = max(start, self._occupied_until)
            self.busy_s += completion - clipped_start
            self._occupied_until = completion
            if self.busy_observer is not None:
                self.busy_observer(clipped_start, completion)
