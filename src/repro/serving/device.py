"""Shard device timelines: blocking or pipelined batch service.

The original frontend kept one ``free_at`` scalar per shard — a device
served one batch at a time, start to finish.  But the platform models
now report *phase timelines* (:class:`~repro.sim.stats.PhaseSegment`),
and the stages of consecutive batches occupy different hardware: while
batch N sits in the FPGA sorter and its results stream out over PCIe,
the NAND array and MAC groups are idle — exactly when batch N+1's
read/MAC work could run (the paper's Fig. 19 sub-batching argument,
applied online).

:class:`ShardDevice` models that: each pipeline resource named by a
batch's :meth:`~repro.sim.stats.SimResult.pipeline_stages` is a FIFO
queue.  A batch walks its stage chain in order; each stage starts no
earlier than (a) the previous stage of the *same* batch finishing and
(b) the resource draining the previous batch's stage.  With
``pipelined=False`` the device collapses to the one-batch-at-a-time
scalar, which is the blocking baseline the benchmarks compare against.
"""

from __future__ import annotations

from repro.sim.stats import SimResult


class ShardDevice:
    """Occupancy state of one shard device across a serving run."""

    def __init__(self, pipelined: bool = True) -> None:
        self.pipelined = pipelined
        self._stage_free: dict[str, float] = {}
        self._entry_resource: str | None = None
        self._drain_at = 0.0
        self._occupied_until = 0.0
        self.busy_s = 0.0
        """Union of this device's service intervals: time with at least
        one batch in flight.  Overlapped pipeline stages count once, so
        ``busy_s / horizon`` is a true utilization."""

        self.batches_served = 0

    @property
    def drain_at(self) -> float:
        """When the device is fully empty (last stage of last batch)."""
        return self._drain_at

    def earliest_start(
        self, at: float, entry_resource: str | None = None
    ) -> float:
        """Earliest time a batch arriving at ``at`` could begin service.

        Pipelined devices admit a new batch as soon as its *entry*
        stage frees up; blocking devices only when fully drained.
        ``entry_resource`` names the first stage of the candidate
        batch's chain when the caller knows it; otherwise the most
        recently served chain's entry stage is assumed (stage chains
        are homogeneous across batches on one platform, but a
        heterogeneous history — e.g. a spill changing the front stage —
        must read the *current* chain's FIFO, not the first-ever one).
        """
        if not self.pipelined:
            return max(at, self._drain_at)
        if entry_resource is None:
            entry_resource = self._entry_resource
        if entry_resource is None:
            return at
        return max(at, self._stage_free.get(entry_resource, 0.0))

    def serve(self, result: SimResult, at: float) -> tuple[float, float]:
        """Book one batch onto the device; returns ``(start, completion)``.

        ``start`` is when the first stage begins executing, ``completion``
        when the last stage ends.  An unloaded device reproduces the
        batch's ``sim_time_s`` exactly in either mode.
        """
        if not self.pipelined:
            start = max(at, self._drain_at)
            completion = start + result.sim_time_s
            self._drain_at = completion
            self._book_busy(start, completion)
            self.batches_served += 1
            return start, completion

        chain = result.pipeline_stages()
        # pipeline_stages() is never empty (opaque results collapse to
        # one "device" stage).  The entry resource tracks the *latest*
        # chain: earliest_start must read the FIFO a new batch would
        # actually queue on, not the first-ever batch's front stage.
        self._entry_resource = chain[0][0]
        start, t = self._walk_chain(chain, at, self._stage_free)
        self._drain_at = max(self._drain_at, t)
        self._book_busy(start, t)
        self.batches_served += 1
        return start, t

    def predict(
        self, chain: list[tuple[str, float]], at: float
    ) -> tuple[float, float]:
        """Dry-run a ``(resource, duration)`` chain against the current
        FIFO state without booking it; returns ``(start, completion)``.

        This is the drain-time prediction behind the ``slo`` batch
        policy: given a :class:`~repro.serving.slo.ServiceModel`
        estimate of a candidate batch's stage chain, it answers "when
        would this batch complete if closed at ``at``" from the same
        state :meth:`serve` will book it into.
        """
        if not chain:
            raise ValueError("need a non-empty stage chain")
        if not self.pipelined:
            start = max(at, self._drain_at)
            return start, start + sum(d for _, d in chain)
        return self._walk_chain(chain, at, dict(self._stage_free))

    def _walk_chain(
        self,
        chain: list[tuple[str, float]],
        at: float,
        stage_free: dict[str, float],
    ) -> tuple[float, float]:
        """Queue a stage chain through per-resource FIFOs (mutates
        ``stage_free``); returns ``(start, completion)``."""
        t = at
        start: float | None = None
        for resource, duration in chain:
            stage_start = max(t, stage_free.get(resource, 0.0))
            stage_end = stage_start + duration
            stage_free[resource] = stage_end
            if start is None:
                start = stage_start
            t = stage_end
        return start, t

    def _book_busy(self, start: float, completion: float) -> None:
        """Accumulate the union of service intervals.

        Batches are served in dispatch order, so interval starts are
        monotone and the union reduces to clipping each interval at
        the previous high-water mark.
        """
        if completion > self._occupied_until:
            self.busy_s += completion - max(start, self._occupied_until)
            self._occupied_until = completion
