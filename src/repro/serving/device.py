"""Shard device timelines: blocking or pipelined batch service.

The original frontend kept one ``free_at`` scalar per shard — a device
served one batch at a time, start to finish.  But the platform models
now report *phase timelines* (:class:`~repro.sim.stats.PhaseSegment`),
and the stages of consecutive batches occupy different hardware: while
batch N sits in the FPGA sorter and its results stream out over PCIe,
the NAND array and MAC groups are idle — exactly when batch N+1's
read/MAC work could run (the paper's Fig. 19 sub-batching argument,
applied online).

:class:`ShardDevice` models that: each pipeline resource named by a
batch's :meth:`~repro.sim.stats.SimResult.pipeline_stages` is a FIFO
queue.  A batch walks its stage chain in order; each stage starts no
earlier than (a) the previous stage of the *same* batch finishing and
(b) the resource draining the previous batch's stage.  With
``pipelined=False`` the device collapses to the one-batch-at-a-time
scalar, which is the blocking baseline the benchmarks compare against.
"""

from __future__ import annotations

from repro.sim.stats import SimResult


class ShardDevice:
    """Occupancy state of one shard device across a serving run."""

    def __init__(self, pipelined: bool = True) -> None:
        self.pipelined = pipelined
        self._stage_free: dict[str, float] = {}
        self._entry_resource: str | None = None
        self._drain_at = 0.0
        self._occupied_until = 0.0
        self.busy_s = 0.0
        """Union of this device's service intervals: time with at least
        one batch in flight.  Overlapped pipeline stages count once, so
        ``busy_s / horizon`` is a true utilization."""

        self.batches_served = 0

    @property
    def drain_at(self) -> float:
        """When the device is fully empty (last stage of last batch)."""
        return self._drain_at

    def earliest_start(self, at: float) -> float:
        """Earliest time a batch arriving at ``at`` could begin service.

        Pipelined devices admit a new batch as soon as their *entry*
        stage frees up; blocking devices only when fully drained.
        """
        if not self.pipelined:
            return max(at, self._drain_at)
        if self._entry_resource is None:
            return at
        return max(at, self._stage_free.get(self._entry_resource, 0.0))

    def serve(self, result: SimResult, at: float) -> tuple[float, float]:
        """Book one batch onto the device; returns ``(start, completion)``.

        ``start`` is when the first stage begins executing, ``completion``
        when the last stage ends.  An unloaded device reproduces the
        batch's ``sim_time_s`` exactly in either mode.
        """
        if not self.pipelined:
            start = max(at, self._drain_at)
            completion = start + result.sim_time_s
            self._drain_at = completion
            self._book_busy(start, completion)
            self.batches_served += 1
            return start, completion

        t = at
        start: float | None = None
        # pipeline_stages() is never empty (opaque results collapse to
        # one "device" stage), so `start` is always set in the loop.
        for resource, duration in result.pipeline_stages():
            if self._entry_resource is None:
                self._entry_resource = resource
            stage_start = max(t, self._stage_free.get(resource, 0.0))
            stage_end = stage_start + duration
            self._stage_free[resource] = stage_end
            if start is None:
                start = stage_start
            t = stage_end
        self._drain_at = max(self._drain_at, t)
        self._book_busy(start, t)
        self.batches_served += 1
        return start, t

    def _book_busy(self, start: float, completion: float) -> None:
        """Accumulate the union of service intervals.

        Batches are served in dispatch order, so interval starts are
        monotone and the union reduces to clipping each interval at
        the previous high-water mark.
        """
        if completion > self._occupied_until:
            self.busy_s += completion - max(start, self._occupied_until)
            self._occupied_until = completion
