"""Partitioned-pool rebalancing: migrating IVF clusters between devices.

A partitioned pool splits the corpus across shard devices by k-means
cluster.  Under skewed traffic (Zipfian query popularity + selective
probing) the devices that own the popular clusters saturate while the
rest idle — the replicated autoscaler cannot help, because partitioned
capacity is *placement*, not replica count.  Production ANN serving
systems (SPANN-style partition servers, IVF sharding tiers) treat this
as a data-movement problem: migrate hot partitions to cold servers
while serving continues.

:class:`Rebalancer` implements that over the serving stack's event
kernel.  Every :class:`~repro.sim.events.EpochTick` it compares the
per-device *windowed* utilization (busy-time deltas booked by the
:class:`~repro.serving.device.ShardDevice` timelines, migrations
included) and, when the hottest/coldest gap exceeds the policy
threshold, proposes moving one cluster from the hottest device to the
coldest.  The cluster is chosen to best close the gap: among the hot
device's clusters, the one whose windowed query share, if moved, most
reduces ``|hot - cold|`` (moving a cluster shifts the gap by twice its
load).  The frontend then

1. books the migration's read on the source device and its write on
   the destination device (:meth:`ShardDevice.book` — data movement
   queues behind, and delays, query batches on the entry-stage FIFO),
2. schedules a :class:`~repro.sim.events.DataMovement` event at the
   later of the two bookings, and
3. flips the router's ``cluster_shard`` entry when that event fires —
   the atomic commit point: batches dispatched before it still route
   to the source, everything after routes to the destination.

Results never change — the cluster's index and centroid are immutable;
migration moves *timing* (which device pays for the cluster's work),
which is exactly what the simulation prices.  Every migration is
recorded as a :class:`Migration` and lands in the
:class:`~repro.serving.metrics.ServingReport`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RebalancePolicy:
    """Thresholds and costs for epoch-based cluster migration."""

    interval_s: float = 5e-3
    """Epoch length on the simulated clock: load is windowed over, and
    placement re-evaluated every, this long."""

    skew_threshold: float = 0.25
    """Hottest-minus-coldest windowed device utilization above which a
    migration is proposed."""

    min_window_queries: int = 8
    """Minimum cluster-routed queries in the window before the signal
    is trusted (an idle window has no skew worth acting on)."""

    migration_gbps: float = 1.0
    """Data-movement bandwidth: a cluster of ``b`` bytes occupies the
    source (read) and destination (write) entry stages for
    ``b / (migration_gbps * 1e9)`` seconds each."""

    max_concurrent: int = 1
    """In-flight migration cap: proposals beyond it wait for the next
    epoch (data movement competes with serving for device time)."""

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.skew_threshold <= 0:
            raise ValueError("skew_threshold must be positive")
        if self.min_window_queries < 0:
            raise ValueError("min_window_queries must be >= 0")
        if self.migration_gbps <= 0:
            raise ValueError("migration_gbps must be positive")
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")


@dataclass(frozen=True)
class Migration:
    """One cluster migration, decision to commit."""

    cluster: int
    source: int
    dest: int
    decided_s: float
    complete_s: float
    bytes: int
    vectors: int
    utilization_gap: float
    """Hot-minus-cold windowed utilization that triggered the move."""

    def to_dict(self) -> dict:
        """JSON-friendly form for reports and the benchmark sweep."""
        return {
            "cluster": self.cluster,
            "source": self.source,
            "dest": self.dest,
            "decided_s": self.decided_s,
            "complete_s": self.complete_s,
            "bytes": self.bytes,
            "vectors": self.vectors,
            "utilization_gap": self.utilization_gap,
        }


@dataclass(frozen=True)
class MigrationProposal:
    """What :meth:`Rebalancer.decide` asks the frontend to execute."""

    cluster: int
    source: int
    dest: int
    utilization_gap: float


class Rebalancer:
    """Epoch-windowed migration decisions over device-load skew."""

    def __init__(
        self, policy: RebalancePolicy, num_shards: int, num_clusters: int
    ) -> None:
        if num_shards < 2:
            raise ValueError("rebalancing needs at least two shard devices")
        self.policy = policy
        self.num_shards = num_shards
        self.num_clusters = num_clusters
        self.migrations: list[Migration] = []
        """Every migration decided this run, in decision order."""

        self._inflight: dict[int, Migration] = {}
        self._busy_snapshot: list[float] | None = None
        self._busy_carry: list[float] = [0.0] * num_shards
        """Per-device busy time committed beyond the evaluated epoch
        (bookings — batches and migrations alike — land their whole
        duration at dispatch time); spent in later epochs so a device
        still draining its backlog reads as busy, not idle.  Without
        the carry a device that booked heavily late in one window
        would look like the coldest in the next and attract the very
        migration it cannot absorb."""

        self._cluster_window = np.zeros(num_clusters, dtype=np.int64)
        self._epoch_end: float | None = None

    @property
    def epoch_end(self) -> float | None:
        """End of the armed epoch (the next tick's timestamp)."""
        return self._epoch_end

    @property
    def inflight(self) -> int:
        """Migrations currently moving data."""
        return len(self._inflight)

    def arm(self, now: float, busy_s: list[float]) -> None:
        """Anchor the epoch grid at the first arrival."""
        self._busy_snapshot = list(busy_s)
        self._epoch_end = now + self.policy.interval_s

    def observe_cluster_queries(self, cluster: int, n: int) -> None:
        """``n`` queries of a dispatched batch were routed to ``cluster``
        this window (the per-cluster load signal)."""
        self._cluster_window[cluster] += n

    def begin(self, migration: Migration) -> None:
        """The frontend booked ``migration``'s data movement."""
        self._inflight[migration.cluster] = migration
        self.migrations.append(migration)

    def finish(self, migration: Migration) -> None:
        """``migration``'s :class:`~repro.sim.events.DataMovement`
        event fired; its cluster is movable again."""
        self._inflight.pop(migration.cluster, None)

    def decide(
        self, now: float, busy_s: list[float], cluster_shard: np.ndarray
    ) -> list[MigrationProposal]:
        """Evaluate the epoch ending at ``now``; returns proposals.

        Resets the load window either way and advances the epoch grid,
        so the caller always reschedules the next tick at
        :attr:`epoch_end`.
        """
        if self._busy_snapshot is None:
            raise RuntimeError("arm() the rebalancer at the first arrival")
        window = self.policy.interval_s
        util = []
        for i in range(self.num_shards):
            raw = busy_s[i] - self._busy_snapshot[i] + self._busy_carry[i]
            # Bookings extend past the epoch boundary; clamp this
            # window at saturation and carry the excess into the
            # epochs the committed work actually spans (same
            # attribution as the autoscaler's utilization signal).
            spent = min(raw, window)
            self._busy_carry[i] = raw - spent
            util.append(spent / window)
        self._busy_snapshot = list(busy_s)
        counts = self._cluster_window.copy()
        self._cluster_window[:] = 0
        self._epoch_end = now + window

        if int(counts.sum()) < self.policy.min_window_queries:
            return []
        if len(self._inflight) >= self.policy.max_concurrent:
            return []
        source = max(range(self.num_shards), key=lambda s: (util[s], -s))
        dest = min(range(self.num_shards), key=lambda s: (util[s], s))
        gap = util[source] - util[dest]
        if gap <= self.policy.skew_threshold:
            return []
        owned = [
            c for c in range(self.num_clusters)
            if int(cluster_shard[c]) == source
        ]
        if len(owned) < 2:
            # Moving a device's only cluster just relocates the
            # hotspot; there is nothing to split.
            return []
        movable = [
            c for c in owned
            if c not in self._inflight and int(counts[c]) > 0
        ]
        source_queries = sum(int(counts[c]) for c in owned)
        if not movable or source_queries == 0:
            return []
        # Moving cluster c shifts its load share off the source and
        # onto the dest: the gap changes by 2 * load(c).  Pick the
        # movable cluster that lands the gap closest to zero (ties:
        # lowest cluster id, deterministically).
        def residual_gap(c: int) -> float:
            load = util[source] * int(counts[c]) / source_queries
            return abs(gap - 2.0 * load)

        best = min(movable, key=lambda c: (residual_gap(c), c))
        return [
            MigrationProposal(
                cluster=best, source=source, dest=dest, utilization_gap=gap
            )
        ]
