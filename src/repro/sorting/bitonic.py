"""Bitonic sorting network (Batcher), executed as the hardware would.

A bitonic sorter over n = 2^k elements is a fixed network of
``k(k+1)/2`` compare-exchange stages with ``n/2`` comparators each.
We execute the exact network (vectorised per stage), which makes the
comparator/stage counts — the quantities the FPGA timing model charges
for — directly observable and testable, and we verify the output
against ``sorted()`` in the unit and property tests.
"""

from __future__ import annotations

import numpy as np


def _next_pow2(n: int) -> int:
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def bitonic_stage_count(n: int) -> int:
    """Compare-exchange stages for n (padded to a power of two)."""
    n = _next_pow2(n)
    if n <= 1:
        return 0
    k = n.bit_length() - 1
    return k * (k + 1) // 2


def bitonic_comparator_count(n: int) -> int:
    """Total comparator activations to sort n elements."""
    n = _next_pow2(n)
    return bitonic_stage_count(n) * (n // 2)


def bitonic_sort(
    keys: np.ndarray, values: np.ndarray | None = None, descending: bool = False
) -> tuple[np.ndarray, np.ndarray | None]:
    """Sort by executing the bitonic network stage by stage.

    ``keys`` is padded to a power of two with +/- infinity sentinels;
    ``values`` (optional payload, e.g. vertex IDs) moves with its key.
    Returns (sorted_keys, sorted_values) with padding removed.
    """
    keys = np.asarray(keys, dtype=np.float64)
    if keys.ndim != 1:
        raise ValueError("bitonic_sort expects a 1-D key array")
    n = keys.size
    if n == 0:
        return keys.copy(), None if values is None else np.asarray(values).copy()
    size = _next_pow2(n)
    pad_key = -np.inf if descending else np.inf
    k = np.full(size, pad_key, dtype=np.float64)
    k[:n] = keys
    if values is not None:
        values = np.asarray(values)
        if values.shape[0] != n:
            raise ValueError("values must align with keys")
        v = np.concatenate([values, np.zeros(size - n, dtype=values.dtype)])
    else:
        v = None

    # The classic iterative network: block size doubles each phase,
    # comparator stride halves within the phase.
    block = 2
    while block <= size:
        stride = block // 2
        while stride >= 1:
            idx = np.arange(size)
            partner = idx ^ stride
            upper = partner > idx
            i, j = idx[upper], partner[upper]
            ascending_block = (i & block) == 0
            if descending:
                ascending_block = ~ascending_block
            swap = np.where(ascending_block, k[i] > k[j], k[i] < k[j])
            si, sj = i[swap], j[swap]
            k[si], k[sj] = k[sj].copy(), k[si].copy()
            if v is not None:
                v[si], v[sj] = v[sj].copy(), v[si].copy()
            stride //= 2
        block *= 2

    out_keys = k[:n] if not descending else k[:n]
    out_values = None if v is None else v[:n]
    return out_keys, out_values


def bitonic_top_k(
    distances: np.ndarray, ids: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Top-k selection via a full bitonic sort (ascending distances)."""
    if k < 0:
        raise ValueError("k must be non-negative")
    sorted_d, sorted_ids = bitonic_sort(distances, ids)
    k = min(k, sorted_d.size)
    return sorted_d[:k], sorted_ids[:k]
