"""FPGA deployment model for the bitonic sorting kernel.

Follows the NASCENT-style implementation the paper adopts: a pipelined
bitonic network on the SmartSSD's FPGA, fed over the private PCIe 3.0
x4 link with each query's result list (query index, candidate indices,
scalar distances — the "filtered" payload that is as little as 1/32 of
what a no-NDP design ships over PCIe).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.flash.timing import FlashTiming
from repro.sim.stats import Counters
from repro.sorting.bitonic import bitonic_comparator_count, bitonic_top_k


@dataclass
class FPGASorter:
    """Functional + timing model of the FPGA bitonic sorter."""

    timing: FlashTiming = field(default_factory=FlashTiming)
    power_w: float = 7.5
    counters: Counters = field(default_factory=Counters)

    RESULT_ENTRY_BYTES: int = 8
    """One result-list entry: 4 B candidate index + 4 B distance."""

    HEADER_BYTES: int = 8
    """Per-query header: query index + list length."""

    def sort_result_lists(
        self,
        distances: list[np.ndarray],
        ids: list[np.ndarray],
        k: int,
    ) -> tuple[list[np.ndarray], list[np.ndarray], float]:
        """Sort each query's result list, returning top-k and latency.

        The latency covers the private-PCIe transfer of the result
        lists into the FPGA plus the pipelined network time; the sort
        itself is executed for real via :func:`bitonic_top_k`.
        """
        if len(distances) != len(ids):
            raise ValueError("distances/ids list length mismatch")
        total_elements = 0
        out_d: list[np.ndarray] = []
        out_i: list[np.ndarray] = []
        for d, i in zip(distances, ids):
            top_d, top_i = bitonic_top_k(np.asarray(d), np.asarray(i), k)
            out_d.append(top_d)
            out_i.append(top_i.astype(np.int64))
            total_elements += len(d)
            self.counters["comparator_ops"] += bitonic_comparator_count(len(d))
        self.counters["sorted_elements"] += total_elements
        transfer_bytes = (
            total_elements * self.RESULT_ENTRY_BYTES
            + len(distances) * self.HEADER_BYTES
        )
        self.counters["private_pcie_bytes"] += transfer_bytes
        latency = self.timing.private_transfer_s(transfer_bytes)
        latency += self.timing.fpga_sort_s(total_elements)
        return out_d, out_i, latency

    def sort_latency_s(self, batch_size: int, list_length: int) -> float:
        """Timing-only estimate used by the trace-driven simulator."""
        total = batch_size * list_length
        transfer_bytes = (
            total * self.RESULT_ENTRY_BYTES + batch_size * self.HEADER_BYTES
        )
        return self.timing.private_transfer_s(transfer_bytes) + self.timing.fpga_sort_s(
            total
        )
