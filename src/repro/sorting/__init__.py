"""Bitonic sorting kernel and its FPGA deployment model.

The paper offloads the third ANNS kernel — bitonic sorting of each
query's result list — to the SmartSSD's FPGA (as in NASCENT [66]),
freeing SearSSD's power and area budget for the in-flash logic.
"""

from repro.sorting.bitonic import (
    bitonic_comparator_count,
    bitonic_sort,
    bitonic_stage_count,
    bitonic_top_k,
)
from repro.sorting.fpga import FPGASorter

__all__ = [
    "bitonic_sort",
    "bitonic_top_k",
    "bitonic_stage_count",
    "bitonic_comparator_count",
    "FPGASorter",
]
