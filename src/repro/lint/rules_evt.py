"""Event-kernel invariant rules (EVT001–EVT002).

The discrete-event kernel's determinism contract rests on its events
being immutable value objects ordered by ``(time, RANK, seq)``:

* a mutable event could change under a handler that runs later at the
  same instant, making handler order observable;
* two event types sharing a ``RANK`` fall back to schedule order for
  their same-instant interleaving, which silently couples unrelated
  sources (the exact class of bug the documented rank table exists to
  prevent).

These rules apply wherever ``Event`` subclasses are *defined* — the
kernel module itself, and any module (tests included) that derives a
new event type.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .context import FileContext
from .findings import Finding
from .registry import Rule, register

#: Event types exported by the kernel (``repro.sim.events``).  A class
#: is event-like if its base chain — within the file — reaches one of
#: these names or a local class named ``Event``.
KERNEL_EVENT_NAMES = frozenset(
    {
        "Event",
        "Arrival",
        "BatchDeadline",
        "Completion",
        "DataMovement",
        "EpochTick",
        "FlashMaintenance",
        "StreamEnd",
    }
)


def _base_names(cls: ast.ClassDef) -> list[str]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def event_classes(ctx: FileContext) -> list[ast.ClassDef]:
    """Event subclasses defined in this file (transitive, in-file).

    Seeds from :data:`KERNEL_EVENT_NAMES` (covers both the kernel
    module and importers) and iterates to a fixpoint so a subclass of a
    local subclass is still recognised.
    """
    classes = [n for n in ast.walk(ctx.tree) if isinstance(n, ast.ClassDef)]
    event_names = set(KERNEL_EVENT_NAMES)
    found: dict[str, ast.ClassDef] = {}
    changed = True
    while changed:
        changed = False
        for cls in classes:
            if cls.name in found:
                continue
            # A local class literally named ``Event`` is the root
            # definition (it owns the default RANK); everything else
            # qualifies through its base chain.
            if cls.name == "Event" or any(
                b in event_names for b in _base_names(cls)
            ):
                found[cls.name] = cls
                event_names.add(cls.name)
                changed = True
    # The root ``Event`` definition itself participates (it owns the
    # default RANK), but only where it is actually defined.
    return sorted(found.values(), key=lambda c: c.lineno)


def _dataclass_decorator(cls: ast.ClassDef) -> ast.expr | None:
    """The ``@dataclass`` / ``@dataclass(...)`` decorator, if any."""
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = (
            target.id
            if isinstance(target, ast.Name)
            else target.attr
            if isinstance(target, ast.Attribute)
            else None
        )
        if name == "dataclass":
            return dec
    return None


def _rank_value(cls: ast.ClassDef) -> tuple[ast.stmt, int | None] | None:
    """The ``RANK = <literal>`` statement in the class body, if any."""
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if stmt.target.id == "RANK" and stmt.value is not None:
                value = stmt.value
                if isinstance(value, ast.Constant) and isinstance(value.value, int):
                    return stmt, value.value
                return stmt, None
        elif isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                if isinstance(t, ast.Name) and t.id == "RANK":
                    value = stmt.value
                    if isinstance(value, ast.Constant) and isinstance(
                        value.value, int
                    ):
                        return stmt, value.value
                    return stmt, None
    return None


@register
class EventShape(Rule):
    """Every Event subclass is a frozen, slotted dataclass with its own
    module-unique ``RANK``."""

    ID = "EVT001"
    TITLE = "Event subclass must be @dataclass(frozen=True, slots=True) with a unique RANK"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        ranks: dict[int, str] = {}
        for cls in event_classes(ctx):
            dec = _dataclass_decorator(cls)
            if dec is None:
                yield self.finding(
                    ctx,
                    cls,
                    f"event class {cls.name} is not a dataclass; events must "
                    "be @dataclass(frozen=True, slots=True) value objects.",
                )
            else:
                keywords = (
                    {
                        kw.arg: kw.value
                        for kw in dec.keywords
                        if kw.arg is not None
                    }
                    if isinstance(dec, ast.Call)
                    else {}
                )
                for flag in ("frozen", "slots"):
                    value = keywords.get(flag)
                    if not (
                        isinstance(value, ast.Constant) and value.value is True
                    ):
                        yield self.finding(
                            ctx,
                            dec,
                            f"event class {cls.name} must be declared "
                            f"@dataclass(frozen=True, slots=True); "
                            f"{flag}=True is missing.",
                        )
            rank = _rank_value(cls)
            if rank is None:
                yield self.finding(
                    ctx,
                    cls,
                    f"event class {cls.name} does not define RANK; every "
                    "event type pins its own same-instant rank (see the "
                    "rank table in repro.sim.events).",
                )
                continue
            stmt, value = rank
            if value is None:
                yield self.finding(
                    ctx,
                    stmt,
                    f"event class {cls.name}'s RANK must be an integer "
                    "literal so same-instant order is auditable.",
                )
            elif value in ranks:
                yield self.finding(
                    ctx,
                    stmt,
                    f"event class {cls.name} reuses RANK={value} already "
                    f"taken by {ranks[value]}; same-instant order between "
                    "them would fall back to schedule order.",
                )
            else:
                ranks[value] = cls.name


@register
class EventMutation(Rule):
    """No attribute assignment to event-typed handler parameters.

    Events are frozen, so a plain assignment raises at runtime — but
    only on the path that executes it; ``object.__setattr__`` bypasses
    the freeze silently.  Both are flagged statically.
    """

    ID = "EVT002"
    TITLE = "attribute assignment to an event-typed handler parameter"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        event_names = set(KERNEL_EVENT_NAMES) | {
            c.name for c in event_classes(ctx)
        }
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = self._event_params(fn, event_names)
            if not params:
                continue
            yield from self._check_body(ctx, fn, params)

    @staticmethod
    def _event_params(
        fn: ast.FunctionDef | ast.AsyncFunctionDef, event_names: set[str]
    ) -> set[str]:
        params: set[str] = set()
        all_args = (
            fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs
        )
        for arg in all_args:
            ann = arg.annotation
            name: str | None = None
            if isinstance(ann, ast.Name):
                name = ann.id
            elif isinstance(ann, ast.Attribute):
                name = ann.attr
            elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                name = ann.value.split(".")[-1].strip()
            if name in event_names:
                params.add(arg.arg)
        return params

    def _check_body(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        params: set[str],
    ) -> Iterator[Finding]:
        def is_param_attr(node: ast.expr) -> bool:
            return (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in params
            )

        for node in ast.walk(fn):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if is_param_attr(target):
                    yield self.finding(
                        ctx,
                        target,
                        f"assignment to {ast.unparse(target)}: events are "
                        "immutable; schedule a replacement event instead of "
                        "mutating one in flight.",
                    )
            if isinstance(node, ast.Call):
                qual = ctx.qualified_name(node.func)
                if (
                    qual in {"setattr", "object.__setattr__"}
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in params
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{qual}() on event parameter "
                        f"'{node.args[0].id}' bypasses the frozen dataclass; "
                        "events are immutable.",
                    )
