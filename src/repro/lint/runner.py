"""Walk the tree, run every rule, apply pragmas and the baseline.

The runner is deliberately boring: deterministic file order (sorted
recursive walk), one :class:`~repro.lint.context.FileContext` per file,
every registered rule over it, pragma suppression at the finding's
line, then a baseline split.  A file that fails to parse yields a
single ``LINT000`` finding rather than aborting the run — a syntax
error in one file must not mask findings in the rest.
"""

from __future__ import annotations

import ast
import configparser
from dataclasses import dataclass, field
from pathlib import Path

from .baseline import Baseline
from .context import FileContext
from .findings import Finding
from .registry import Rule, select_rules

#: Rule id reserved for files the parser rejects.
PARSE_ERROR_RULE = "LINT000"

#: Where the committed baseline lives, relative to the repo root.
DEFAULT_BASELINE = "lint_baseline.json"

#: Fallback scan roots when neither the CLI nor pytest.ini names any.
DEFAULT_PATHS = ("src", "tests", "benchmarks")

#: Ini file consulted for the ``[repro.lint]`` config block.
CONFIG_FILE = "pytest.ini"


def load_config(root: str | Path = ".") -> dict[str, str]:
    """Read the ``[repro.lint]`` block from pytest.ini, if present.

    Recognised keys: ``paths`` (whitespace-separated scan roots) and
    ``baseline`` (baseline file path).  Lives in pytest.ini so the
    repo keeps a single tool-config file; pytest itself only reads its
    own ``[pytest]`` section.
    """
    ini = Path(root) / CONFIG_FILE
    if not ini.is_file():
        return {}
    parser = configparser.ConfigParser()
    parser.read(ini)
    if not parser.has_section("repro.lint"):
        return {}
    return dict(parser.items("repro.lint"))


def iter_python_files(paths: list[str | Path], root: str | Path = ".") -> list[Path]:
    """Every ``*.py`` under ``paths`` (files accepted too), sorted by
    repo-relative POSIX path so runs are order-stable everywhere."""
    rootp = Path(root)
    files: set[Path] = set()
    for p in paths:
        q = rootp / p
        if q.is_file() and q.suffix == ".py":
            files.add(q)
        elif q.is_dir():
            files.update(f for f in q.rglob("*.py") if f.is_file())
        elif not q.exists():
            raise FileNotFoundError(f"no such file or directory: {q}")
    return sorted(files, key=lambda f: f.relative_to(rootp).as_posix())


@dataclass
class LintReport:
    """Outcome of one lint run, pre- and post-baseline."""

    files_scanned: int = 0
    findings: list[Finding] = field(default_factory=list)
    """Findings that survived pragma suppression, sorted."""

    suppressed: int = 0
    """Findings silenced by an inline ``# repro-lint: disable=`` pragma."""

    new: list[Finding] = field(default_factory=list)
    """Findings not covered by the baseline — these fail the gate."""

    baselined: list[Finding] = field(default_factory=list)
    """Findings forgiven by the committed baseline."""

    @property
    def ok(self) -> bool:
        return not self.new

    def to_dict(self) -> dict:
        return {
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "counts": {
                "total": len(self.findings),
                "new": len(self.new),
                "baselined": len(self.baselined),
            },
            "new": [f.to_dict() for f in self.new],
            "baselined": [f.to_dict() for f in self.baselined],
        }


def lint_context(ctx: FileContext, rules: list[Rule]) -> tuple[list[Finding], int]:
    """Run ``rules`` over one prepared context.

    Returns (kept findings, pragma-suppressed count); kept findings are
    sorted by (path, line, col, rule).
    """
    kept: list[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check(ctx):
            if ctx.suppressed(finding.rule, finding.line):
                suppressed += 1
            else:
                kept.append(finding)
    return sorted(kept), suppressed


def lint_source(
    source: str,
    path: str = "<snippet>",
    module: str | None = None,
    *,
    disabled: tuple[str, ...] = (),
) -> list[Finding]:
    """Lint an in-memory snippet (the unit-test entry point).

    ``module`` scopes module-gated rules: pass e.g. ``"repro.sim.x"``
    to exercise DET002/DET004 on a snippet, or leave ``None`` for
    out-of-package semantics (what a test file gets).
    """
    ctx = FileContext(path, source, module=module)
    findings, _ = lint_context(ctx, select_rules(disabled))
    return findings


def lint_paths(
    paths: list[str | Path],
    root: str | Path = ".",
    *,
    baseline: Baseline | None = None,
    disabled: tuple[str, ...] = (),
) -> LintReport:
    """Lint every Python file under ``paths`` relative to ``root``."""
    rootp = Path(root)
    rules = select_rules(disabled)
    report = LintReport()
    for file in iter_python_files(paths, rootp):
        relpath = file.relative_to(rootp).as_posix()
        source = file.read_text()
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError as exc:
            report.findings.append(
                Finding(
                    path=relpath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule=PARSE_ERROR_RULE,
                    message=f"file does not parse: {exc.msg}",
                    content="",
                )
            )
            report.files_scanned += 1
            continue
        ctx = FileContext(relpath, source, tree=tree)
        kept, suppressed = lint_context(ctx, rules)
        report.findings.extend(kept)
        report.suppressed += suppressed
        report.files_scanned += 1
    report.findings.sort()
    if baseline is None:
        report.new = list(report.findings)
    else:
        report.new, report.baselined = baseline.split(report.findings)
    return report
