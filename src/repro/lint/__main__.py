"""CLI: ``python -m repro.lint [paths...]`` (also ``repro-lint``).

Exit codes: 0 — clean (every finding pragma-suppressed or baselined);
1 — new findings; 2 — usage/configuration error.

With no positional paths, the scan roots come from the ``[repro.lint]``
block in pytest.ini (falling back to ``src tests benchmarks``), so the
bare module invocation from the repo root does the right thing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baseline import Baseline
from .registry import all_rules
from .runner import (
    DEFAULT_BASELINE,
    DEFAULT_PATHS,
    LintReport,
    lint_paths,
    load_config,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Static determinism & event-kernel invariant checks for the "
            "repro codebase."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files/directories to scan (default: the [repro.lint] paths "
            "in pytest.ini, else 'src tests benchmarks')"
        ),
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root that scan paths and the baseline are relative to",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout report format",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="also write the full JSON report to FILE (any --format)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "baseline file of grandfathered findings (default: the "
            "[repro.lint] baseline in pytest.ini, else "
            f"'{DEFAULT_BASELINE}'; matched only if it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file to grandfather current findings",
    )
    parser.add_argument(
        "--disable",
        metavar="IDS",
        default="",
        help="comma-separated rule ids to skip (e.g. DET004,EVT002)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _print_text(report: LintReport, baseline_used: bool) -> None:
    for finding in report.new:
        print(finding.format())
    tail = (
        f"{report.files_scanned} files scanned, "
        f"{len(report.new)} new finding(s), "
        f"{len(report.baselined)} baselined, "
        f"{report.suppressed} pragma-suppressed"
    )
    if not baseline_used:
        tail += " (no baseline)"
    print(tail)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.ID}  {rule.TITLE}")
        return 0

    root = Path(args.root)
    config = load_config(root)
    paths = args.paths or config.get("paths", "").split() or list(DEFAULT_PATHS)
    baseline_path = root / (
        args.baseline or config.get("baseline", DEFAULT_BASELINE)
    )
    disabled = tuple(s for s in args.disable.split(",") if s.strip())

    baseline: Baseline | None = None
    if not args.no_baseline and not args.write_baseline:
        if baseline_path.is_file():
            try:
                baseline = Baseline.load(baseline_path)
            except (ValueError, KeyError) as exc:
                print(f"error: bad baseline {baseline_path}: {exc}", file=sys.stderr)
                return 2
        elif args.baseline:
            print(f"error: baseline {baseline_path} not found", file=sys.stderr)
            return 2

    try:
        report = lint_paths(paths, root, baseline=baseline, disabled=disabled)
    except (FileNotFoundError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(report.findings).save(baseline_path)
        print(
            f"wrote {baseline_path} with {len(report.findings)} "
            "grandfathered finding(s)"
        )
        return 0

    if args.out:
        Path(args.out).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
        )
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        _print_text(report, baseline is not None)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
