"""Per-file analysis context shared by every rule.

One :class:`FileContext` is built per source file: the parsed AST, the
raw lines, the module's dotted name inside the ``repro`` package (or
``None`` for files outside it, e.g. tests), a resolved import table,
and the per-line pragma suppressions.

Import resolution is what lets rules match *qualified* call names
(``time.time``, ``numpy.random.seed``) rather than bare attribute
spellings, so ``import time as t; t.time()`` and
``from numpy import random as r; r.seed(0)`` are both caught.
"""

from __future__ import annotations

import ast
import re
from pathlib import PurePath

# ``# repro-lint: disable=DET001`` / ``disable=DET001,EVT002`` /
# ``disable=all`` — suppresses matching rules on the physical line the
# pragma sits on (use the *first* line of a multi-line statement: that
# is where the finding anchors).
_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*|all)"
)


def module_name_for(path: str) -> str | None:
    """Dotted module name for a repo path, if it lives in the package.

    ``src/repro/sim/events.py`` → ``repro.sim.events``;
    ``tests/test_lint.py`` → ``None``.  The ``repro`` component must
    directly follow a ``src`` component (the repo's src-layout), so a
    stray ``repro`` directory elsewhere does not confuse scoping.
    """
    parts = PurePath(path).parts
    for i, part in enumerate(parts[:-1]):
        if part == "src" and parts[i + 1] == "repro":
            mod_parts = list(parts[i + 1 :])
            mod_parts[-1] = mod_parts[-1].removesuffix(".py")
            if mod_parts[-1] == "__init__":
                mod_parts.pop()
            return ".".join(mod_parts)
    return None


def parse_pragmas(lines: list[str]) -> dict[int, set[str]]:
    """Map 1-based line number → rule ids suppressed on that line.

    The special id ``all`` suppresses every rule on the line.
    """
    out: dict[int, set[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        m = _PRAGMA_RE.search(text)
        if m:
            ids = {part.strip() for part in m.group(1).split(",")}
            out[lineno] = ids
    return out


class FileContext:
    """Everything a rule needs to analyse one file."""

    def __init__(
        self,
        path: str,
        source: str,
        module: str | None = None,
        *,
        tree: ast.AST | None = None,
    ) -> None:
        self.path = PurePath(path).as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.module = module if module is not None else module_name_for(self.path)
        self.tree = tree if tree is not None else ast.parse(source, filename=path)
        self.pragmas = parse_pragmas(self.lines)
        # name → fully qualified module, from ``import x.y [as z]``.
        self.imports: dict[str, str] = {}
        # name → fully qualified object, from ``from x import y [as z]``.
        self.from_imports: dict[str, str] = {}
        self._index_imports()
        self._parents: dict[ast.AST, ast.AST] | None = None

    # ---- imports ---------------------------------------------------------
    def _index_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[name] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    name = alias.asname or alias.name
                    self.from_imports[name] = f"{node.module}.{alias.name}"

    def qualified_name(self, node: ast.expr) -> str | None:
        """Resolve a ``Name``/dotted ``Attribute`` through the imports.

        ``t.monotonic`` with ``import time as t`` → ``time.monotonic``;
        ``now`` with ``from datetime import datetime as now``…``now.today``
        resolves through ``from_imports``.  Returns ``None`` for
        anything that is not a plain dotted name (subscripts, calls).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        root = self.from_imports.get(base) or self.imports.get(base) or base
        parts.append(root)
        return ".".join(reversed(parts))

    # ---- structure -------------------------------------------------------
    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child → parent map over the whole tree (built lazily)."""
        if self._parents is None:
            self._parents = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self._parents[child] = parent
        return self._parents

    def line_content(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def suppressed(self, rule_id: str, lineno: int) -> bool:
        ids = self.pragmas.get(lineno)
        return ids is not None and (rule_id in ids or "all" in ids)
