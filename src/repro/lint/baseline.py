"""Grandfathered findings: the committed lint baseline.

The baseline lets a new rule land without forcing every pre-existing
violation to be fixed in the same PR: known findings are recorded here
and the CI gate fails only on *new* ones.  Matching is by
``(rule, path, line content)`` as a multiset — line numbers are stored
for human orientation but ignored when matching, so unrelated edits
that shift code do not invalidate the baseline, while editing the
offending line itself does (the finding then surfaces as new, which is
the point: touched code must meet the current bar).

The on-disk form is canonical JSON (sorted entries, two-space indent,
trailing newline): ``load → dumps`` round-trips byte-identically, and
regenerating via ``python -m repro.lint --write-baseline`` produces no
diff when nothing changed.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """A multiset of grandfathered findings."""

    entries: list[Finding] = field(default_factory=list)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(entries=sorted(findings))

    @classmethod
    def loads(cls, text: str) -> "Baseline":
        data = json.loads(text)
        version = data.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} "
                f"(expected {BASELINE_VERSION})"
            )
        return cls(entries=[Finding.from_dict(d) for d in data["findings"]])

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        return cls.loads(Path(path).read_text())

    def dumps(self) -> str:
        payload = {
            "version": BASELINE_VERSION,
            "findings": [f.to_dict() for f in sorted(self.entries)],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.dumps())

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Partition ``findings`` into (new, grandfathered).

        Each baseline entry forgives at most one finding with the same
        ``(rule, path, content)`` key, so duplicating a baselined
        violation on another line still fails the gate.
        """
        budget = Counter(e.baseline_key for e in self.entries)
        new: list[Finding] = []
        old: list[Finding] = []
        for f in sorted(findings):
            if budget.get(f.baseline_key, 0) > 0:
                budget[f.baseline_key] -= 1
                old.append(f)
            else:
                new.append(f)
        return new, old
