"""The unit of lint output: one :class:`Finding` at one source line.

Findings are plain frozen dataclasses so reports sort, dedupe and
serialize deterministically — the lint CLI's JSON output is
byte-stable for a given tree, the same contract the simulator holds
for its reports.

The *baseline key* deliberately excludes the line number: grandfathered
findings keep matching as unrelated edits shift code up and down, and
only disappear when the offending line itself is edited or removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True, order=True)
class Finding:
    """One rule violation at one physical source line."""

    path: str
    """Repo-relative POSIX path of the offending file."""

    line: int
    """1-based line number of the offending node."""

    col: int
    """0-based column offset of the offending node."""

    rule: str
    """Rule id, e.g. ``DET001``."""

    message: str
    """Human-readable explanation, including the fix direction."""

    content: str = field(default="", compare=False)
    """The stripped source line — the stable part of the baseline key."""

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used for baseline matching: (rule, path, content).

        Line numbers drift with unrelated edits; the offending line's
        own text does not.  Duplicate keys are matched as a multiset
        (N baselined occurrences forgive at most N findings).
        """
        return (self.rule, self.path, self.content)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "content": self.content,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Finding":
        return cls(
            path=d["path"],
            line=int(d["line"]),
            col=int(d.get("col", 0)),
            rule=d["rule"],
            message=d.get("message", ""),
            content=d.get("content", ""),
        )

    def format(self) -> str:
        """``path:line:col: RULE message`` — editor-clickable."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
