"""Pluggable rule registry.

A rule is a class with an ``ID``, a one-line ``TITLE``, and a
``check(ctx)`` generator yielding :class:`~repro.lint.findings.Finding`
objects.  Registration is a decorator so rule modules self-register on
import; the runner imports the bundled rule modules and runs whatever
is in the table, which is also how a future PR drops in a new rule
without touching the runner.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .context import FileContext
from .findings import Finding


class Rule:
    """Base class: one invariant, checked per file."""

    ID: str = ""
    TITLE: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError
        yield

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``'s first line."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=ctx.path,
            line=lineno,
            col=col,
            rule=self.ID,
            message=message,
            content=ctx.line_content(lineno),
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and add to the rule table."""
    if not cls.ID:
        raise ValueError(f"{cls.__name__} has no ID")
    if cls.ID in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.ID}")
    _REGISTRY[cls.ID] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, in id order (deterministic run order)."""
    _load_bundled()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    _load_bundled()
    return _REGISTRY[rule_id]


def rule_ids() -> list[str]:
    _load_bundled()
    return sorted(_REGISTRY)


def select_rules(disabled: Iterable[str] = ()) -> list[Rule]:
    off = set(disabled)
    unknown = off - set(rule_ids())
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [r for r in all_rules() if r.ID not in off]


def _load_bundled() -> None:
    """Import the bundled rule modules (idempotent; they self-register)."""
    from . import rules_det, rules_evt  # noqa: F401
