"""Determinism rules (DET001–DET005).

Each rule encodes a bug class that has actually threatened the repo's
byte-reproducibility contract (same seed + config → identical report
digests), so the messages point at the repo's own safe idioms rather
than generic advice.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .context import FileContext
from .findings import Finding
from .registry import Rule, register

# Modules that legitimately read the wall clock: the profiler measures
# host speed by design, and the worker pool times subprocess RPC.
WALL_CLOCK_ALLOWED_MODULES = frozenset(
    {"repro.obs.profile", "repro.sim.pool"}
)

# Qualified callables whose results depend on wall clock or OS entropy.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.choice",
    }
)

# ``random`` module-level functions share one hidden global
# ``random.Random`` instance — any caller anywhere perturbs every other
# caller's stream.
GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.choice",
        "random.choices",
        "random.sample",
        "random.shuffle",
        "random.uniform",
        "random.triangular",
        "random.gauss",
        "random.normalvariate",
        "random.lognormvariate",
        "random.expovariate",
        "random.betavariate",
        "random.gammavariate",
        "random.paretovariate",
        "random.weibullvariate",
        "random.vonmisesvariate",
        "random.getrandbits",
        "random.randbytes",
        "random.seed",
    }
)

# ``numpy.random`` attributes that are *not* legacy global-state
# functions; everything else on the module is.
NP_RANDOM_SAFE = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
        "RandomState",  # constructing an explicit (seedable) stream
    }
)


def _contains_id_call(node: ast.AST) -> ast.Call | None:
    """First ``id(...)`` call anywhere under ``node`` (or ``None``)."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "id"
            and sub.args
        ):
            return sub
    return None


@register
class IdAsKey(Rule):
    """``id(x)`` as a dict/cache key.

    The PR 1 bug class: ``id`` values are reused after garbage
    collection, so an ``id()``-keyed cache can serve one object's entry
    to a different object.  The safe repo idiom (``NDSearch
    ._resolve_trace``) pins the keyed object inside the entry and
    identity-checks it on every hit; sites doing that carry a pragma.
    """

    ID = "DET001"
    TITLE = "id() used as a dict/cache key"

    MSG = (
        "id(x) used as a cache/dict key: ids are recycled after GC, so a "
        "stale entry can hit for a different object (the PR 1 speculative-"
        "set collision). Key by the object itself, or pin the object in "
        "the entry and verify identity on hit."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            hit: ast.Call | None = None
            if isinstance(node, ast.Subscript):
                # d[id(x)] — read, write, or delete.
                hit = _contains_id_call(node.slice)
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                # d.get(id(x)) / d.setdefault(id(x), ...) / d.pop(id(x)).
                if node.func.attr in {"get", "setdefault", "pop"} and node.args:
                    hit = _contains_id_call(node.args[0])
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is not None and (hit := _contains_id_call(key)):
                        break
            elif isinstance(node, ast.DictComp):
                hit = _contains_id_call(node.key)
            elif isinstance(node, ast.Assign):
                # key_tuple = (id(x), ...): the key escapes through a
                # name that announces itself as a key.
                names = [
                    t.id
                    for t in node.targets
                    if isinstance(t, ast.Name) and "key" in t.id.lower()
                ]
                if names:
                    hit = _contains_id_call(node.value)
            if hit is not None:
                yield self.finding(ctx, hit, self.MSG)


@register
class WallClock(Rule):
    """Wall-clock / OS-entropy reads inside simulation code.

    The simulated clock is ``EventLoop.now``; host time leaking into
    simulation state makes two identical runs diverge.  Only modules in
    :data:`WALL_CLOCK_ALLOWED_MODULES` measure real time on purpose.
    """

    ID = "DET002"
    TITLE = "wall-clock/OS-entropy call in simulation code"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module is None or not ctx.module.startswith("repro"):
            return
        if ctx.module in WALL_CLOCK_ALLOWED_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualified_name(node.func)
            if qual in WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"{qual}() reads the wall clock / OS entropy inside "
                    "simulation code; use the simulated clock "
                    "(EventLoop.now / event.time) or a seeded source. "
                    "Host-time measurement belongs in repro.obs.profile "
                    "or repro.sim.pool.",
                )


@register
class UnseededRng(Rule):
    """Global-state or unseeded RNG.

    Every random draw in the repo flows from an explicitly seeded
    ``numpy.random.Generator`` (``default_rng(seed)``); module-level
    ``random.*`` / legacy ``np.random.*`` calls share hidden global
    state that any import can perturb, and a zero-argument
    ``default_rng()`` / ``Random()`` seeds from the OS.
    """

    ID = "DET003"
    TITLE = "unseeded or global-state RNG"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualified_name(node.func)
            if qual is None:
                continue
            if qual in GLOBAL_RANDOM_FUNCS:
                yield self.finding(
                    ctx,
                    node,
                    f"{qual}() draws from the hidden module-global RNG; "
                    "pass an explicitly seeded numpy Generator "
                    "(np.random.default_rng(seed)) or random.Random(seed).",
                )
            elif qual in {"random.Random", "numpy.random.RandomState"} and not (
                node.args or node.keywords
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{qual}() with no seed draws its state from the OS; "
                    "pass an explicit seed.",
                )
            elif qual.startswith("numpy.random."):
                attr = qual.removeprefix("numpy.random.")
                if attr not in NP_RANDOM_SAFE:
                    yield self.finding(
                        ctx,
                        node,
                        f"{qual}() mutates numpy's legacy global RNG state; "
                        "use an explicitly seeded "
                        "np.random.default_rng(seed) Generator.",
                    )
                elif attr == "default_rng" and not (node.args or node.keywords):
                    yield self.finding(
                        ctx,
                        node,
                        "np.random.default_rng() with no seed draws entropy "
                        "from the OS; pass an explicit seed.",
                    )


def _is_set_expr(node: ast.expr) -> bool:
    """Syntactically set-valued: literal, comprehension, set()/frozenset()
    call, or a binary combination (| & - ^) of set-valued operands."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@register
class SetIterationOrder(Rule):
    """Direct iteration over a set expression in ``src/repro``.

    Set iteration order depends on insertion history and hash seeds of
    the element values; feeding it to anything ordering-sensitive
    (result assembly, scheduling, serialization) breaks run-to-run
    stability.  Wrap the set in ``sorted(...)`` — order-insensitive
    reducers (``sum``/``min``/``max``/``len``/``any``/``all``) and
    membership tests are fine and not flagged.
    """

    ID = "DET004"
    TITLE = "ordering-sensitive iteration over a set expression"

    MSG = (
        "iterating a set produces hash-order, which is not stable across "
        "runs/interpreters; wrap it in sorted(...) before it feeds "
        "anything ordering-sensitive."
    )

    # Consumers that preserve (and therefore expose) iteration order.
    _ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate", "iter"}
    # Reducers whose result is independent of element order: a
    # comprehension feeding one of these may iterate a set freely.
    _ORDER_FREE_REDUCERS = {
        "sorted", "sum", "min", "max", "any", "all", "set", "frozenset", "len",
    }

    def _feeds_order_free_reducer(self, ctx: FileContext, node: ast.AST) -> bool:
        parent = ctx.parents.get(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in self._ORDER_FREE_REDUCERS
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module is None or not ctx.module.startswith("repro"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield self.finding(ctx, node.iter, self.MSG)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                # A comprehension rebuilding a set/dict is itself
                # unordered; only ordered collectors (list/generator)
                # expose the set's order — and not even those when the
                # result immediately feeds an order-free reducer like
                # sorted(...) or sum(...).
                if self._feeds_order_free_reducer(ctx, node):
                    continue
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        yield self.finding(ctx, gen.iter, self.MSG)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._ORDER_SENSITIVE_CALLS
                and node.args
                and _is_set_expr(node.args[0])
            ):
                yield self.finding(ctx, node.args[0], self.MSG)


# Bare constructors and qualified factory callables that build mutable
# containers.  qualified_name resolves ``from collections import
# OrderedDict`` style imports to the dotted form.
_MUTABLE_FACTORY_NAMES = frozenset({"dict", "list", "set", "bytearray"})
_MUTABLE_FACTORY_QUALS = frozenset(
    {
        "collections.defaultdict",
        "collections.OrderedDict",
        "collections.deque",
        "collections.Counter",
        "collections.ChainMap",
    }
)


def _is_mutable_container_expr(ctx: FileContext, node: ast.expr) -> bool:
    """Syntactically a freshly built mutable container."""
    if isinstance(
        node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp,
               ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_FACTORY_NAMES
        ):
            return True
        qual = ctx.qualified_name(node.func)
        if qual in _MUTABLE_FACTORY_QUALS:
            return True
    return False


@register
class ModuleLevelMutableState(Rule):
    """Module-level mutable containers in the serving/simulation trees.

    A dict/list/set bound at module scope outlives every simulation
    run in the process: state from one run leaks into the next, two
    frontends in one process couple through it, and snapshot/restore
    (``repro.sim.snapshot``) cannot capture it — a restored run then
    diverges from the run it forked, breaking the byte-reproducibility
    contract the parity suite pins.  Keep per-run state on the objects
    that own it.  Deliberate content-keyed memo caches (immutable
    values, explicit bound, no per-run state) carry a same-line
    ``# repro-lint: disable=DET005`` pragma.
    """

    ID = "DET005"
    TITLE = "module-level mutable state in serving/sim code"

    MSG = (
        "module-level mutable container: state bound at import time "
        "outlives and couples simulation runs, and snapshot/restore "
        "cannot capture it. Move it onto the owning object, or pragma "
        "it if it is a deliberate content-keyed memo of immutable "
        "build artifacts."
    )

    _SCOPES = ("repro.serving", "repro.sim")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module is None or not ctx.module.startswith(self._SCOPES):
            return
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign):
                value = node.value
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value = node.value
                targets = [node.target]
            else:
                continue
            # Dunder assignments (__all__ = [...]) are interpreter
            # protocol, not run state.
            if all(
                isinstance(t, ast.Name)
                and t.id.startswith("__")
                and t.id.endswith("__")
                for t in targets
            ):
                continue
            if _is_mutable_container_expr(ctx, value):
                yield self.finding(ctx, value, self.MSG)
