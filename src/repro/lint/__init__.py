"""repro.lint — static determinism & event-kernel invariant checks.

The reproduction's core guarantee is *bit-stable simulation*: same
seed + config → byte-identical reports, pinned as sha256 digests over
15 serving configs.  Every bug class that has threatened that
guarantee is statically detectable, and this package detects them at
lint time instead of waiting for a parity digest to flip:

=======  ==============================================================
Rule     Invariant
=======  ==============================================================
DET001   no ``id()``-keyed dicts/caches (the PR 1 collision class)
DET002   no wall-clock/OS-entropy reads in simulation code
         (``repro.obs.profile`` and ``repro.sim.pool`` are allowlisted)
DET003   no global-state or unseeded RNG (seeded ``default_rng`` only)
DET004   no ordering-sensitive iteration over set expressions in
         ``src/repro`` (wrap in ``sorted(...)``)
EVT001   every ``Event`` subclass is ``@dataclass(frozen=True,
         slots=True)`` with its own module-unique ``RANK``
EVT002   no attribute assignment to event-typed handler parameters
LINT000  (reserved) file failed to parse
=======  ==============================================================

Usage::

    python -m repro.lint                  # paths from pytest.ini
    python -m repro.lint src tests --format json
    python -m repro.lint --write-baseline # refresh lint_baseline.json

Deliberate exceptions carry a same-line pragma::

    entry = cache[id(trace)]  # repro-lint: disable=DET001

and grandfathered findings live in the committed ``lint_baseline.json``
(matched by rule + path + line content, so they survive line drift but
not edits to the offending line).  CI runs the CLI as a tier-1 gate:
any non-baselined finding fails the build.
"""

from .baseline import Baseline
from .context import FileContext, module_name_for
from .findings import Finding
from .registry import Rule, all_rules, get_rule, register, rule_ids
from .runner import (
    DEFAULT_BASELINE,
    DEFAULT_PATHS,
    PARSE_ERROR_RULE,
    LintReport,
    iter_python_files,
    lint_paths,
    lint_source,
    load_config,
)

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE",
    "DEFAULT_PATHS",
    "FileContext",
    "Finding",
    "LintReport",
    "PARSE_ERROR_RULE",
    "Rule",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_config",
    "module_name_for",
    "register",
    "rule_ids",
]
