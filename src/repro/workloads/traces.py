"""Persistent trace sets: the unit of exchange between the functional
search layer and the trace-driven simulators.

The paper's methodology (Section VII-A) generates memory traces once —
by instrumenting the search code — and feeds them to the simulator.
:class:`TraceSet` is that artifact: a batch of per-query
:class:`~repro.ann.trace.SearchTrace` objects with the search results,
serialisable to a single ``.npz`` so expensive graph construction and
trace generation run once per (dataset, algorithm) and every
experiment replays from cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.ann.trace import IterationRecord, SearchTrace


def zipf_weights(pool_size: int, exponent: float = 1.0) -> np.ndarray:
    """Normalised Zipf popularity weights over ``pool_size`` ranks.

    Rank ``r`` (1-based) gets probability proportional to ``r**-exponent``.
    ``exponent=0`` degenerates to uniform; production query logs typically
    sit around 0.7-1.2 (a small head of queries dominates traffic).
    """
    if pool_size < 1:
        raise ValueError("pool_size must be >= 1")
    if exponent < 0:
        raise ValueError("exponent must be >= 0")
    ranks = np.arange(1, pool_size + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


@dataclass
class ZipfianSampler:
    """Skewed query-popularity sampler over a finite query pool.

    Models the popularity skew of real serving traffic: queries are
    drawn from a pool of ``pool_size`` distinct queries with Zipfian
    rank-frequency weights.  By default the popularity ranking is
    shuffled (seeded) so that "hot" queries are scattered across the
    pool rather than being the lowest indices — pool index and
    popularity rank stay independent, as in real query logs.

    Deterministic: the same ``(pool_size, exponent, seed)`` and call
    sequence reproduce the same query IDs.
    """

    pool_size: int
    exponent: float = 1.0
    seed: int = 0
    shuffle: bool = True

    _rng: np.random.Generator = field(init=False, repr=False)
    _weights: np.ndarray = field(init=False, repr=False)
    _ids: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._weights = zipf_weights(self.pool_size, self.exponent)
        self._ids = np.arange(self.pool_size, dtype=np.int64)
        if self.shuffle:
            self._ids = self._rng.permutation(self._ids)

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` query IDs (int64 indices into the pool)."""
        if size < 0:
            raise ValueError("size must be >= 0")
        return self._rng.choice(self._ids, size=size, p=self._weights)

    def expected_hit_rate(self, cache_entries: int) -> float:
        """Popularity mass of the ``cache_entries`` hottest queries —
        an upper bound on the steady-state hit rate of a cache that
        holds that many entries."""
        if cache_entries <= 0:
            return 0.0
        return float(self._weights[: min(cache_entries, self.pool_size)].sum())


@dataclass
class TraceSet:
    """A batch of search traces plus the search outputs."""

    traces: list[SearchTrace]
    result_ids: np.ndarray
    result_dists: np.ndarray

    def __len__(self) -> int:
        return len(self.traces)

    def subset(self, batch_size: int) -> "TraceSet":
        """The first ``batch_size`` queries (prefix slicing keeps all
        experiments on identical query populations)."""
        if batch_size > len(self.traces):
            raise ValueError(
                f"requested batch {batch_size} exceeds pool of {len(self.traces)}"
            )
        return TraceSet(
            traces=self.traces[:batch_size],
            result_ids=self.result_ids[:batch_size],
            result_dists=self.result_dists[:batch_size],
        )

    # ---- statistics -----------------------------------------------------
    def mean_trace_length(self) -> float:
        return float(np.mean([t.trace_length for t in self.traces]))

    def mean_iterations(self) -> float:
        return float(np.mean([t.num_iterations for t in self.traces]))

    # ---- persistence ------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Flatten the ragged trace structure into one ``.npz``."""
        iter_offsets = [0]
        computed_offsets = [0]
        entries: list[int] = []
        computed: list[int] = []
        for trace in self.traces:
            for record in trace.iterations:
                entries.append(record.entry)
                computed.extend(record.computed)
                computed_offsets.append(len(computed))
            iter_offsets.append(len(entries))
        np.savez_compressed(
            Path(path),
            entries=np.asarray(entries, dtype=np.int64),
            iter_offsets=np.asarray(iter_offsets, dtype=np.int64),
            computed=np.asarray(computed, dtype=np.int64),
            computed_offsets=np.asarray(computed_offsets, dtype=np.int64),
            result_ids=self.result_ids,
            result_dists=self.result_dists,
        )

    @classmethod
    def load(cls, path: str | Path) -> "TraceSet":
        with np.load(Path(path)) as data:
            entries = data["entries"]
            iter_offsets = data["iter_offsets"]
            computed = data["computed"]
            computed_offsets = data["computed_offsets"]
            result_ids = data["result_ids"]
            result_dists = data["result_dists"]
        traces: list[SearchTrace] = []
        iter_idx = 0
        for q in range(iter_offsets.size - 1):
            trace = SearchTrace(query_id=q)
            for _ in range(int(iter_offsets[q + 1] - iter_offsets[q])):
                lo = int(computed_offsets[iter_idx])
                hi = int(computed_offsets[iter_idx + 1])
                trace.iterations.append(
                    IterationRecord(
                        entry=int(entries[iter_idx]),
                        computed=tuple(int(v) for v in computed[lo:hi]),
                    )
                )
                iter_idx += 1
            trace.result_ids = result_ids[q]
            trace.result_distances = result_dists[q]
            traces.append(trace)
        return cls(traces=traces, result_ids=result_ids, result_dists=result_dists)

    @classmethod
    def from_search(
        cls, ids: np.ndarray, dists: np.ndarray, traces: list[SearchTrace]
    ) -> "TraceSet":
        return cls(traces=traces, result_ids=ids, result_dists=dists)
