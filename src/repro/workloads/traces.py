"""Persistent trace sets: the unit of exchange between the functional
search layer and the trace-driven simulators.

The paper's methodology (Section VII-A) generates memory traces once —
by instrumenting the search code — and feeds them to the simulator.
:class:`TraceSet` is that artifact: a batch of per-query
:class:`~repro.ann.trace.SearchTrace` objects with the search results,
serialisable to a single ``.npz`` so expensive graph construction and
trace generation run once per (dataset, algorithm) and every
experiment replays from cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.ann.trace import IterationRecord, SearchTrace


@dataclass
class TraceSet:
    """A batch of search traces plus the search outputs."""

    traces: list[SearchTrace]
    result_ids: np.ndarray
    result_dists: np.ndarray

    def __len__(self) -> int:
        return len(self.traces)

    def subset(self, batch_size: int) -> "TraceSet":
        """The first ``batch_size`` queries (prefix slicing keeps all
        experiments on identical query populations)."""
        if batch_size > len(self.traces):
            raise ValueError(
                f"requested batch {batch_size} exceeds pool of {len(self.traces)}"
            )
        return TraceSet(
            traces=self.traces[:batch_size],
            result_ids=self.result_ids[:batch_size],
            result_dists=self.result_dists[:batch_size],
        )

    # ---- statistics -----------------------------------------------------
    def mean_trace_length(self) -> float:
        return float(np.mean([t.trace_length for t in self.traces]))

    def mean_iterations(self) -> float:
        return float(np.mean([t.num_iterations for t in self.traces]))

    # ---- persistence ------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Flatten the ragged trace structure into one ``.npz``."""
        iter_offsets = [0]
        computed_offsets = [0]
        entries: list[int] = []
        computed: list[int] = []
        for trace in self.traces:
            for record in trace.iterations:
                entries.append(record.entry)
                computed.extend(record.computed)
                computed_offsets.append(len(computed))
            iter_offsets.append(len(entries))
        np.savez_compressed(
            Path(path),
            entries=np.asarray(entries, dtype=np.int64),
            iter_offsets=np.asarray(iter_offsets, dtype=np.int64),
            computed=np.asarray(computed, dtype=np.int64),
            computed_offsets=np.asarray(computed_offsets, dtype=np.int64),
            result_ids=self.result_ids,
            result_dists=self.result_dists,
        )

    @classmethod
    def load(cls, path: str | Path) -> "TraceSet":
        with np.load(Path(path)) as data:
            entries = data["entries"]
            iter_offsets = data["iter_offsets"]
            computed = data["computed"]
            computed_offsets = data["computed_offsets"]
            result_ids = data["result_ids"]
            result_dists = data["result_dists"]
        traces: list[SearchTrace] = []
        iter_idx = 0
        for q in range(iter_offsets.size - 1):
            trace = SearchTrace(query_id=q)
            for _ in range(int(iter_offsets[q + 1] - iter_offsets[q])):
                lo = int(computed_offsets[iter_idx])
                hi = int(computed_offsets[iter_idx + 1])
                trace.iterations.append(
                    IterationRecord(
                        entry=int(entries[iter_idx]),
                        computed=tuple(int(v) for v in computed[lo:hi]),
                    )
                )
                iter_idx += 1
            trace.result_ids = result_ids[q]
            trace.result_distances = result_dists[q]
            traces.append(trace)
        return cls(traces=traces, result_ids=result_ids, result_dists=result_dists)

    @classmethod
    def from_search(
        cls, ids: np.ndarray, dists: np.ndarray, traces: list[SearchTrace]
    ) -> "TraceSet":
        return cls(traces=traces, result_ids=ids, result_dists=dists)
