"""Workload construction: query batches, popularity models and
persistent trace sets."""

from repro.workloads.traces import TraceSet, ZipfianSampler, zipf_weights

__all__ = ["TraceSet", "ZipfianSampler", "zipf_weights"]
