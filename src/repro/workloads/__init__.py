"""Workload construction: query batches and persistent trace sets."""

from repro.workloads.traces import TraceSet

__all__ = ["TraceSet"]
