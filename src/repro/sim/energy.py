"""Power and energy accounting (paper Table I and Fig. 20).

The paper reports a per-component power breakdown of SearSSD obtained
from CACTI 6.5 and Synopsys DC at 32 nm (Table I), a 7.5 W bitonic-sort
kernel on the FPGA, and platform powers for the baselines.  We reproduce
Table I as a constants table and integrate energy as

    E = P_static * makespan + sum_c P_c * busy_c

where ``busy_c`` is the simulated busy time of component ``c``.  Average
power is then ``E / makespan``, which feeds the QPS/W comparison of
Fig. 20.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.stats import SimResult


@dataclass(frozen=True)
class ComponentPower:
    """One row of the paper's Table I power breakdown."""

    name: str
    config: str
    count: int
    power_w: float


#: Paper Table I, reproduced verbatim.  Power figures are totals over
#: ``count`` instances.
SEARSSD_TABLE_I: tuple[ComponentPower, ...] = (
    ComponentPower("mac_group", "2 MACs", 512, 1.95),
    ComponentPower("vgen_buffer", "2MB", 1, 1.71),
    ComponentPower("alloc_buffer", "6MB", 1, 4.57),
    ComponentPower("query_queue", "24KB", 256, 5.84),
    ComponentPower("vaddr_queue", "3KB", 256, 0.87),
    ComponentPower("output_buffer", "1KB", 512, 0.56),
    ComponentPower("ecc_decoder", "LDPC", 1024, 1.18),
    ComponentPower("ctr_circuits", "-", 0, 2.14),
)

#: Total customized-logic power of SearSSD from Table I (18.82 W).
SEARSSD_LOGIC_POWER_W: float = round(sum(c.power_w for c in SEARSSD_TABLE_I), 2)

#: Bitonic sorting kernel on the FPGA (Section VII, power budget).
FPGA_SORT_POWER_W: float = 7.5

#: Total NDSearch power reported by the paper (26.32 W).
NDSEARCH_TOTAL_POWER_W: float = 26.32

#: PCIe-slot power budget available to SearSSD (Section VII).
PCIE_POWER_BUDGET_W: float = 55.0


#: Platform-level power constants used for the Fig. 20 energy-efficiency
#: comparison.  CPU: 2x Xeon Gold 6254 (200 W TDP each) plus DRAM.
#: GPU: Titan RTX board power plus host share.  SmartSSD: FPGA + SSD
#: device power.  DeepStore variants: same PCIe budget class as
#: NDSearch but with larger accelerator logic (their dies are 5-7x the
#: area of SearSSD's, Section VII) and full page movement.
PLATFORM_POWER_W: dict[str, float] = {  # repro-lint: disable=DET005
    "cpu": 430.0,
    "cpu-t": 560.0,
    "gpu": 320.0,
    "smartssd": 35.0,
    "ds-c": 42.0,
    "ds-cp": 38.0,
    "ndsearch": NDSEARCH_TOTAL_POWER_W,
}


@dataclass
class EnergyModel:
    """Activity-based energy integrator.

    ``static_power_w`` burns for the whole makespan; each entry of
    ``dynamic_power_w`` burns only while the matching component (by
    busy-time key) is busy.  For platforms where we only have a board
    power (CPU/GPU), use :meth:`flat` which charges the full platform
    power for the makespan — pessimistic for the baseline, which makes
    NDSearch's efficiency edge conservative rather than inflated.
    """

    static_power_w: float
    dynamic_power_w: dict[str, float] = field(default_factory=dict)

    @classmethod
    def for_platform(cls, platform: str) -> "EnergyModel":
        """Energy model keyed by platform label."""
        if platform == "ndsearch":
            return cls.ndsearch()
        try:
            return cls.flat(PLATFORM_POWER_W[platform])
        except KeyError:
            raise ValueError(f"unknown platform {platform!r}") from None

    @classmethod
    def flat(cls, power_w: float) -> "EnergyModel":
        return cls(static_power_w=power_w)

    @classmethod
    def ndsearch(cls) -> "EnergyModel":
        """SearSSD logic + FPGA sorter, activity-scaled.

        Half of each component's Table I power is treated as static
        (leakage + clocking) and half as dynamic, a common split for
        32 nm logic.
        """
        static = 0.5 * (SEARSSD_LOGIC_POWER_W + FPGA_SORT_POWER_W)
        dynamic = {
            "sin_macs_busy": 0.5 * 1.95,
            "vgenerator": 0.5 * 1.71,
            "allocator": 0.5 * (4.57 + 0.87),
            "lun_queues_busy": 0.5 * (5.84 + 0.56),
            "ecc_busy": 0.5 * 1.18,
            "embedded_cores": 0.5 * 2.14,
            "fpga_sort": 0.5 * FPGA_SORT_POWER_W,
        }
        return cls(static_power_w=static, dynamic_power_w=dynamic)

    def attach(self, result: SimResult) -> SimResult:
        """Fill ``energy_j`` and ``power_w`` on ``result`` in place."""
        makespan = result.sim_time_s
        energy = self.static_power_w * makespan
        for component, power in self.dynamic_power_w.items():
            # A component bank cannot burn more than its full power for
            # the whole makespan; aggregate busy time across parallel
            # units is capped accordingly.
            busy = min(result.component_busy_s.get(component, 0.0), makespan)
            energy += power * busy
        result.energy_j = energy
        result.power_w = energy / makespan if makespan > 0 else 0.0
        return result
