"""Warm worker-subprocess pool for sweep fan-out.

The serving benchmarks run a *matrix* of independent configurations —
sweep cells, profiled configs, parity digests — each a pure function of
its spec.  Running the matrix serially wastes every core but one, and
running it under a fresh interpreter per row pays the numpy import and
router/index build over and over.  This module keeps a small pool of
**warm** worker subprocesses (the ModelOps pattern: persistent keyed
processes beat cold starts by an order of magnitude) and fans rows out
over them:

* **Workers are keyed.**  Every row carries an affinity key (typically
  a hash or name of the configuration family it needs); all rows with
  the same key run on the same worker, so per-process warm state —
  imported modules, the router build cache, index structures — is
  reused across the rows that share it.  Keys are assigned to workers
  round-robin in first-appearance order, which depends only on the
  submitted row list, never on timing.
* **The protocol is JSON lines.**  One request line per row on the
  worker's stdin (``{"id", "task", "payload"}``), one response line on
  its stdout (``{"id", "ok", "result" | "error"}``).  ``task`` names a
  plain importable function (``"module:function"``) called with the
  payload dict as keyword arguments; payloads and results must be
  JSON-serializable.  Workers redirect ``sys.stdout`` to stderr so a
  stray ``print`` inside a task cannot corrupt the RPC stream.
* **Results merge deterministically.**  :meth:`WorkerPool.run` returns
  results in *row order* — the order rows were submitted — regardless
  of which worker finished first.  Combined with tasks being pure
  functions of their payload, a pooled sweep is byte-identical to the
  same sweep run serially (the serial path round-trips results through
  the same JSON encoding to guarantee it).
* **Crashes are retried once; errors are not.**  A worker that *dies*
  mid-row (killed, segfault, ``os._exit``) is respawned and the row is
  retried once on the fresh process; a second death raises
  :class:`WorkerCrashError`.  A task that *raises* is deterministic —
  the traceback comes back over the pipe and surfaces immediately as
  :class:`PoolTaskError`, with no retry.
* **Shutdown leaves no orphans.**  ``close()`` (also run via context
  manager exit and an ``atexit`` hook) asks each worker to exit, then
  escalates to ``terminate``/``kill`` — after it returns every worker
  pid is reaped.

The pool size usually comes from the ``REPRO_POOL_WORKERS`` environment
variable (:func:`workers_from_env`) so CI jobs and the randomized
property suite can fan out without plumbing flags through every entry
point; ``0`` (the default) means "run serially in-process".
"""

from __future__ import annotations

import atexit
import hashlib
import importlib
import json
import os
import subprocess
import sys
import threading
import traceback
from pathlib import Path
from typing import Any, Iterable, Sequence

#: Environment variable naming the default pool size (0 = serial).
POOL_WORKERS_ENV = "REPRO_POOL_WORKERS"

#: ``src`` directory this package was imported from; always on the
#: worker's ``PYTHONPATH`` so ``-m repro.sim.pool`` resolves.
_SRC_ROOT = Path(__file__).resolve().parent.parent.parent

#: A row: ``(affinity_key, "module:function", payload_dict)``.
Row = tuple[str, str, dict]


def workers_from_env(default: int = 0) -> int:
    """Pool size from :data:`POOL_WORKERS_ENV` (``default`` if unset,
    empty or unparseable; never negative)."""
    raw = os.environ.get(POOL_WORKERS_ENV, "").strip()
    if not raw:
        return default
    try:
        return max(0, int(raw))
    except ValueError:
        return default


def config_key(*parts: Any) -> str:
    """Stable short hash of ``parts`` — a worker affinity key for rows
    that share a configuration (and should share a warm worker)."""
    return hashlib.sha256(repr(parts).encode()).hexdigest()[:16]


def call_task(task: str, payload: dict) -> Any:
    """Resolve ``"module:function"`` and call it with ``payload`` as
    keyword arguments (the worker-side dispatch, also used by the
    serial fallback so both paths run the exact same code)."""
    module_name, _, func_name = task.partition(":")
    if not module_name or not func_name:
        raise ValueError(f"task must be 'module:function', got {task!r}")
    func = getattr(importlib.import_module(module_name), func_name)
    return func(**payload)


def run_rows(
    rows: Iterable[Row], workers: int = 0, *, path: Sequence[str | Path] = ()
) -> list:
    """Run ``(key, task, payload)`` rows; pooled when ``workers > 0``,
    serially in-process otherwise.

    Results come back in row order either way.  The serial path
    round-trips each result through JSON so its output is
    byte-identical to the pooled path's (tuples become lists, dict key
    order is preserved, floats survive exactly).
    """
    rows = list(rows)
    if workers and workers > 0:
        with WorkerPool(workers, path=path) as pool:
            return pool.run(rows)
    for entry in path:
        if str(entry) not in sys.path:
            sys.path.insert(0, str(entry))
    return [
        json.loads(json.dumps(call_task(task, payload)))
        for _, task, payload in rows
    ]


class PoolTaskError(RuntimeError):
    """A task function raised inside a worker (deterministic failure —
    the worker survives and the row is *not* retried)."""


class WorkerCrashError(RuntimeError):
    """The same row killed its worker twice (once on a fresh respawn)."""


class _Worker:
    """One warm subprocess and its JSON-line RPC pipe."""

    def __init__(self, index: int, env: dict[str, str]) -> None:
        self.index = index
        self._env = env
        self.proc: subprocess.Popen | None = None
        self.spawns = 0

    @property
    def pid(self) -> int | None:
        return self.proc.pid if self.proc is not None else None

    def _ensure(self) -> subprocess.Popen:
        if self.proc is None or self.proc.poll() is not None:
            self.proc = subprocess.Popen(
                [sys.executable, "-m", "repro.sim.pool"],
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                env=self._env,
                text=True,
            )
            self.spawns += 1
        return self.proc

    def call(self, job: dict) -> dict:
        """One request/response exchange; raises ``BrokenPipeError`` on
        any sign the worker died (EOF, closed pipe, garbled stream)."""
        proc = self._ensure()
        try:
            proc.stdin.write(json.dumps(job) + "\n")
            proc.stdin.flush()
            line = proc.stdout.readline()
        except (BrokenPipeError, OSError) as exc:
            raise BrokenPipeError(str(exc)) from exc
        if not line:
            raise BrokenPipeError(
                f"worker {self.index} (pid {self.pid}) died mid-row"
            )
        try:
            return json.loads(line)
        except ValueError as exc:
            raise BrokenPipeError(
                f"worker {self.index} corrupted the RPC stream: {line!r}"
            ) from exc

    def discard(self) -> None:
        """Kill and reap the current process (respawn happens lazily)."""
        if self.proc is None:
            return
        if self.proc.poll() is None:
            self.proc.kill()
        self.proc.wait()
        self._close_pipes()
        self.proc = None

    def stop(self, timeout: float = 2.0) -> None:
        """Graceful exit request, escalating to terminate/kill."""
        if self.proc is None:
            return
        if self.proc.poll() is None:
            try:
                self.proc.stdin.write(json.dumps({"cmd": "exit"}) + "\n")
                self.proc.stdin.flush()
            except (BrokenPipeError, OSError):
                pass
            try:
                self.proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.proc.terminate()
                try:
                    self.proc.wait(timeout=timeout)
                except subprocess.TimeoutExpired:
                    self.proc.kill()
                    self.proc.wait()
        else:
            self.proc.wait()
        self._close_pipes()
        self.proc = None

    def _close_pipes(self) -> None:
        for pipe in (self.proc.stdin, self.proc.stdout):
            if pipe is not None:
                try:
                    pipe.close()
                except OSError:
                    pass


class WorkerPool:
    """A fixed-size pool of warm, keyed worker subprocesses.

    ``path`` entries are prepended to the workers' ``PYTHONPATH`` (the
    ``src`` root is always included) so task modules that live outside
    the installed package — e.g. the ``benchmarks/`` scripts — resolve
    inside the workers.
    """

    def __init__(
        self, workers: int, *, path: Sequence[str | Path] = ()
    ) -> None:
        self.workers = max(1, int(workers))
        env = os.environ.copy()
        entries = [str(p) for p in path]
        entries.append(str(_SRC_ROOT))
        if env.get("PYTHONPATH"):
            entries.append(env["PYTHONPATH"])
        env["PYTHONPATH"] = os.pathsep.join(entries)
        # A task must never recursively fan out its own pool.
        env[POOL_WORKERS_ENV] = "0"
        self._workers = [_Worker(i, env) for i in range(self.workers)]
        self._assignment: dict[str, int] = {}
        self._closed = False
        self.respawns = 0
        """Workers respawned after a mid-row death."""
        self.retries = 0
        """Rows retried (each at most once) on a fresh worker."""
        atexit.register(self.close)

    # -- lifecycle ----------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut every worker down; idempotent, leaves no orphans."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        for worker in self._workers:
            worker.stop()

    @property
    def worker_pids(self) -> list[int]:
        """Pids of the currently live workers (spawned lazily, so this
        is empty until the first row runs)."""
        return [w.pid for w in self._workers if w.pid is not None]

    # -- dispatch -----------------------------------------------------
    def _worker_for(self, key: str) -> int:
        index = self._assignment.get(key)
        if index is None:
            index = len(self._assignment) % self.workers
            self._assignment[key] = index
        return index

    def run(self, rows: Iterable[Row]) -> list:
        """Fan ``(key, task, payload)`` rows out; returns results in
        row order (never completion order)."""
        if self._closed:
            raise RuntimeError("pool is closed")
        rows = list(rows)
        results: list = [None] * len(rows)
        errors: list[BaseException] = []
        queues: list[list[tuple[int, str, dict]]] = [
            [] for _ in self._workers
        ]
        for position, (key, task, payload) in enumerate(rows):
            queues[self._worker_for(key)].append((position, task, payload))
        threads = []
        for worker, queue in zip(self._workers, queues):
            if not queue:
                continue
            thread = threading.Thread(
                target=self._drain,
                args=(worker, queue, results, errors),
                daemon=True,
            )
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return results

    def _drain(
        self,
        worker: _Worker,
        queue: list[tuple[int, str, dict]],
        results: list,
        errors: list[BaseException],
    ) -> None:
        for position, task, payload in queue:
            try:
                results[position] = self._run_one(
                    worker, position, task, payload
                )
            except BaseException as exc:  # surfaced after join
                errors.append(exc)
                return

    def _run_one(
        self, worker: _Worker, position: int, task: str, payload: dict
    ) -> Any:
        job = {"id": position, "task": task, "payload": payload}
        for attempt in (0, 1):
            try:
                response = worker.call(job)
            except BrokenPipeError as exc:
                worker.discard()
                self.respawns += 1
                if attempt == 0:
                    self.retries += 1
                    continue
                raise WorkerCrashError(
                    f"row {position} ({task}) killed its worker twice"
                ) from exc
            if response.get("ok"):
                return response.get("result")
            raise PoolTaskError(
                f"{task} (row {position}) raised in worker "
                f"{worker.index}:\n{response.get('error')}"
            )
        raise AssertionError("unreachable")  # pragma: no cover


def _worker_main() -> int:
    """Worker entry (``python -m repro.sim.pool``): serve JSON-line
    jobs from stdin until EOF or an explicit exit command."""
    # The real stdout belongs to the RPC stream; anything a task prints
    # goes to stderr instead.
    rpc_out = os.fdopen(os.dup(sys.stdout.fileno()), "w")
    sys.stdout = sys.stderr
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        message = json.loads(line)
        if message.get("cmd") == "exit":
            return 0
        job_id = message.get("id")
        try:
            result = call_task(message["task"], message["payload"])
            reply = json.dumps({"id": job_id, "ok": True, "result": result})
        except Exception:
            reply = json.dumps(
                {
                    "id": job_id,
                    "ok": False,
                    "error": traceback.format_exc(limit=20),
                }
            )
        rpc_out.write(reply + "\n")
        rpc_out.flush()
    return 0


if __name__ == "__main__":
    sys.exit(_worker_main())
