"""Event counters and the platform-independent simulation result record.

Besides the scalar makespan, every platform model emits a **phase
timeline**: ordered :class:`PhaseSegment` occupancy records saying
which pipeline resource (host link, search engine, sorter, ...) was
doing what during which slice of the batch.  The serving layer's
pipelined shard devices replay these segments onto per-resource FIFO
queues, so batch N+1 can occupy a device's front stages while batch N
drains its tail stages (the online analogue of the paper's Fig. 19
sub-batching).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

#: Relative tolerance for timeline validation (floating-point slack).
_TIMELINE_EPS = 1e-9


class Counters(Counter):
    """Named event counters shared by all platform models.

    A thin subclass of :class:`collections.Counter` so counters merge
    with ``+`` and missing keys read as zero.  Canonical keys used
    throughout the codebase:

    ``page_reads``        NAND page-buffer loads
    ``multiplane_reads``  page loads merged into multi-plane operations
    ``distance_computations``  query/vertex distance evaluations
    ``dram_accesses``     SSD-internal or host DRAM accesses
    ``pcie_bytes``        bytes crossing a host PCIe link
    ``internal_bytes``    bytes crossing SSD-internal buses
    ``ecc_hard_decodes`` / ``ecc_soft_decodes``  LDPC decode events
    ``speculative_page_reads`` / ``speculative_hits``  prefetch activity
    ``sorted_elements``   elements pushed through the bitonic sorter
    """

    def merged(self, other: "Counters") -> "Counters":
        out = Counters(self)
        out.update(other)
        return out


@dataclass(frozen=True)
class PhaseSegment:
    """One occupancy interval on one pipeline resource.

    ``stage`` labels the work ("search", "sort", "host_in", ...);
    ``resource`` names the serial unit it occupies ("engine",
    "sorter", "host_out", ...).  Segments on the same resource must
    never overlap — that is the contract :meth:`SimResult.validate_timeline`
    enforces, and what lets the serving layer treat each resource as a
    FIFO queue when pipelining batches through a device.
    """

    stage: str
    start: float
    end: float
    resource: str = "device"

    @property
    def duration(self) -> float:
        return self.end - self.start


def serial_timeline(
    stages: "list[tuple[str, str, float]]", start: float = 0.0
) -> "list[PhaseSegment]":
    """Chain ``(stage, resource, duration)`` triples into segments.

    Zero-duration stages are dropped; each remaining stage begins where
    the previous one ended.  This is the emission helper for the
    analytical models, whose batch makespan is already a serial sum of
    stage times.
    """
    out: list[PhaseSegment] = []
    t = start
    for stage, resource, duration in stages:
        if duration <= 0.0:
            continue
        out.append(PhaseSegment(stage=stage, start=t, end=t + duration,
                                resource=resource))
        t += duration
    return out


@dataclass
class SimResult:
    """Outcome of simulating one batch of queries on one platform.

    Attributes
    ----------
    platform:
        Platform label (``"cpu"``, ``"gpu"``, ``"smartssd"``, ``"ds-c"``,
        ``"ds-cp"``, ``"ndsearch"``, ``"cpu-t"``).
    algorithm / dataset:
        Workload labels for reporting.
    batch_size:
        Number of queries in the simulated batch.
    sim_time_s:
        Simulated wall-clock makespan of the batch in seconds.
    counters:
        Event counts accumulated while replaying the trace.
    component_busy_s:
        Busy seconds per named component, for execution-time breakdowns
        (paper Figs. 1 and 17).
    energy_j / power_w:
        Filled in by :class:`repro.sim.energy.EnergyModel`.
    timeline:
        Ordered :class:`PhaseSegment` occupancy records for the batch,
        relative to the batch's own start (``t=0``).  Empty timelines
        mean "opaque device": consumers fall back to ``sim_time_s`` as
        a single monolithic stage.
    """

    platform: str
    algorithm: str
    dataset: str
    batch_size: int
    sim_time_s: float
    counters: Counters = field(default_factory=Counters)
    component_busy_s: dict[str, float] = field(default_factory=dict)
    energy_j: float = 0.0
    power_w: float = 0.0
    timeline: list[PhaseSegment] = field(default_factory=list)

    @property
    def qps(self) -> float:
        """Queries per second (the paper's throughput metric)."""
        if self.sim_time_s <= 0:
            return 0.0
        return self.batch_size / self.sim_time_s

    @property
    def qps_per_watt(self) -> float:
        """Energy efficiency (paper Fig. 20 metric)."""
        if self.power_w <= 0:
            return 0.0
        return self.qps / self.power_w

    def speedup_over(self, baseline: "SimResult") -> float:
        """Throughput speedup of this result relative to ``baseline``."""
        if self.qps <= 0:
            return 0.0
        return self.qps / baseline.qps

    def breakdown_fractions(self) -> dict[str, float]:
        """Per-component share of the accounted busy time (sums to 1)."""
        total = sum(self.component_busy_s.values())
        if total <= 0:
            return {k: 0.0 for k in self.component_busy_s}
        return {k: v / total for k, v in self.component_busy_s.items()}

    # ---- phase timeline --------------------------------------------------
    def pipeline_stages(self) -> list[tuple[str, float]]:
        """The timeline collapsed to ordered ``(resource, duration)`` runs.

        Consecutive segments on the same resource merge into one run
        whose duration spans from the run's first start to its last end
        (internal gaps included — the resource is held across them).
        An empty timeline yields a single opaque ``("device",
        sim_time_s)`` stage, which reproduces blocking one-batch-at-a-
        time service.
        """
        if not self.timeline:
            return [("device", self.sim_time_s)]
        runs: list[tuple[str, float]] = []
        run_resource: str | None = None
        run_start = run_end = 0.0
        for seg in self.timeline:
            if seg.resource != run_resource:
                if run_resource is not None:
                    runs.append((run_resource, run_end - run_start))
                run_resource, run_start = seg.resource, seg.start
            run_end = seg.end
        runs.append((run_resource, run_end - run_start))
        return runs

    def validate_timeline(self) -> None:
        """Enforce the phase-timeline contract; raises ``ValueError``.

        * segments are ordered by start time (monotone),
        * every segment has non-negative duration and lies within
          ``[0, sim_time_s]``,
        * segments sharing a resource never overlap.
        """
        tol = _TIMELINE_EPS * max(self.sim_time_s, 1e-30)
        last_start = 0.0
        resource_free: dict[str, float] = {}
        for seg in self.timeline:
            if seg.end < seg.start:
                raise ValueError(f"segment {seg} has negative duration")
            if seg.start < -tol or seg.end > self.sim_time_s + tol:
                raise ValueError(
                    f"segment {seg} outside [0, {self.sim_time_s}]"
                )
            if seg.start < last_start - tol:
                raise ValueError(
                    f"timeline not monotone: {seg} starts before {last_start}"
                )
            last_start = seg.start
            free = resource_free.get(seg.resource, 0.0)
            if seg.start < free - tol:
                raise ValueError(
                    f"resource {seg.resource!r} double-booked: {seg} "
                    f"overlaps work until {free}"
                )
            resource_free[seg.resource] = seg.end
