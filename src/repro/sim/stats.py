"""Event counters and the platform-independent simulation result record."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


class Counters(Counter):
    """Named event counters shared by all platform models.

    A thin subclass of :class:`collections.Counter` so counters merge
    with ``+`` and missing keys read as zero.  Canonical keys used
    throughout the codebase:

    ``page_reads``        NAND page-buffer loads
    ``multiplane_reads``  page loads merged into multi-plane operations
    ``distance_computations``  query/vertex distance evaluations
    ``dram_accesses``     SSD-internal or host DRAM accesses
    ``pcie_bytes``        bytes crossing a host PCIe link
    ``internal_bytes``    bytes crossing SSD-internal buses
    ``ecc_hard_decodes`` / ``ecc_soft_decodes``  LDPC decode events
    ``speculative_page_reads`` / ``speculative_hits``  prefetch activity
    ``sorted_elements``   elements pushed through the bitonic sorter
    """

    def merged(self, other: "Counters") -> "Counters":
        out = Counters(self)
        out.update(other)
        return out


@dataclass
class SimResult:
    """Outcome of simulating one batch of queries on one platform.

    Attributes
    ----------
    platform:
        Platform label (``"cpu"``, ``"gpu"``, ``"smartssd"``, ``"ds-c"``,
        ``"ds-cp"``, ``"ndsearch"``, ``"cpu-t"``).
    algorithm / dataset:
        Workload labels for reporting.
    batch_size:
        Number of queries in the simulated batch.
    sim_time_s:
        Simulated wall-clock makespan of the batch in seconds.
    counters:
        Event counts accumulated while replaying the trace.
    component_busy_s:
        Busy seconds per named component, for execution-time breakdowns
        (paper Figs. 1 and 17).
    energy_j / power_w:
        Filled in by :class:`repro.sim.energy.EnergyModel`.
    """

    platform: str
    algorithm: str
    dataset: str
    batch_size: int
    sim_time_s: float
    counters: Counters = field(default_factory=Counters)
    component_busy_s: dict[str, float] = field(default_factory=dict)
    energy_j: float = 0.0
    power_w: float = 0.0

    @property
    def qps(self) -> float:
        """Queries per second (the paper's throughput metric)."""
        if self.sim_time_s <= 0:
            return 0.0
        return self.batch_size / self.sim_time_s

    @property
    def qps_per_watt(self) -> float:
        """Energy efficiency (paper Fig. 20 metric)."""
        if self.power_w <= 0:
            return 0.0
        return self.qps / self.power_w

    def speedup_over(self, baseline: "SimResult") -> float:
        """Throughput speedup of this result relative to ``baseline``."""
        if self.qps <= 0:
            return 0.0
        return self.qps / baseline.qps

    def breakdown_fractions(self) -> dict[str, float]:
        """Per-component share of the accounted busy time (sums to 1)."""
        total = sum(self.component_busy_s.values())
        if total <= 0:
            return {k: 0.0 for k in self.component_busy_s}
        return {k: v / total for k, v in self.component_busy_s.items()}
