"""Simulation core: deterministic resource timelines, counters, energy, area.

The NDSEARCH paper evaluates every platform with a trace-driven,
cycle-level simulator.  This package provides the shared substrate for
that style of simulation:

* :mod:`repro.sim.engine` — resource timelines used to model contention
  on buses, LUNs, accelerators and links.
* :mod:`repro.sim.events` — a heap-backed discrete-event loop with
  typed, deterministically tie-broken events; the control-flow layer
  the online serving stack runs on (resources model *occupancy*,
  events model *when things happen*).
* :mod:`repro.sim.stats` — event counters and the :class:`SimResult`
  record that every platform model returns.
* :mod:`repro.sim.energy` — component power constants (paper Table I)
  and the activity-based energy integrator.
* :mod:`repro.sim.area` — area model and storage-density accounting.
"""

from repro.sim.engine import Resource, ResourcePool, Timeline
from repro.sim.events import (
    AFTER_ARRIVALS,
    Arrival,
    BatchDeadline,
    Completion,
    DataMovement,
    EpochTick,
    Event,
    EventLoop,
    StreamEnd,
)
from repro.sim.stats import Counters, PhaseSegment, SimResult, serial_timeline
from repro.sim.energy import ComponentPower, EnergyModel
from repro.sim.area import AreaModel, ComponentArea

__all__ = [
    "Resource",
    "ResourcePool",
    "Timeline",
    "AFTER_ARRIVALS",
    "Arrival",
    "BatchDeadline",
    "Completion",
    "DataMovement",
    "EpochTick",
    "Event",
    "EventLoop",
    "StreamEnd",
    "Counters",
    "PhaseSegment",
    "SimResult",
    "serial_timeline",
    "ComponentPower",
    "EnergyModel",
    "AreaModel",
    "ComponentArea",
]
