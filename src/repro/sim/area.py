"""Area model and storage-density accounting (paper Table I, Section VII).

The paper synthesises SearSSD's customized logic at 32 nm and reports a
per-component area breakdown totalling 43.09 mm^2, compares it against
DS-cp (236.8 mm^2), DS-c (320 mm^2) and SmartSSD (~800 mm^2), and
derives the storage-density cost of embedding the logic: Samsung 983
DCT V-NAND MLC at 6 Gb/mm^2 degrades to 5.64 Gb/mm^2 (about 6%).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ComponentArea:
    """One row of the paper's Table I area breakdown."""

    name: str
    config: str
    count: int
    area_mm2: float


#: Paper Table I, area column.
SEARSSD_AREA_TABLE: tuple[ComponentArea, ...] = (
    ComponentArea("mac_group", "2 MACs", 512, 15.04),
    ComponentArea("vgen_buffer", "2MB", 1, 3.18),
    ComponentArea("alloc_buffer", "6MB", 1, 8.53),
    ComponentArea("query_queue", "24KB", 256, 9.76),
    ComponentArea("vaddr_queue", "3KB", 256, 1.47),
    ComponentArea("output_buffer", "1KB", 512, 1.12),
    ComponentArea("ecc_decoder", "LDPC", 1024, 2.84),
    ComponentArea("ctr_circuits", "-", 0, 1.15),
)

#: Comparison points reported in Section VII-B.
DS_CP_AREA_MM2: float = 236.8
DS_C_AREA_MM2: float = 320.0
SMARTSSD_LOGIC_AREA_MM2: float = 800.0

#: Baseline V-NAND MLC storage density (Samsung 983 DCT estimate).
BASE_STORAGE_DENSITY_GB_PER_MM2: float = 6.0


@dataclass
class AreaModel:
    """Aggregate area and storage-density arithmetic for SearSSD."""

    components: tuple[ComponentArea, ...] = SEARSSD_AREA_TABLE
    base_density_gb_per_mm2: float = BASE_STORAGE_DENSITY_GB_PER_MM2

    @property
    def total_area_mm2(self) -> float:
        """Total customized-logic area (paper: 43.09 mm^2)."""
        return round(sum(c.area_mm2 for c in self.components), 2)

    def area_saving_vs(self, other_area_mm2: float) -> float:
        """Fractional area saving relative to a competing design."""
        if other_area_mm2 <= 0:
            raise ValueError("competitor area must be positive")
        return 1.0 - self.total_area_mm2 / other_area_mm2

    def storage_density_gb_per_mm2(self, capacity_gb: float = 512.0) -> float:
        """Effective density after embedding the logic (paper: 5.64).

        Follows the paper's formula: capacity in gigabits divided by
        (NAND area for that capacity + customized logic area).
        """
        if capacity_gb <= 0:
            raise ValueError("capacity must be positive")
        capacity_gbit = capacity_gb * 8.0
        nand_area = capacity_gbit / self.base_density_gb_per_mm2
        return capacity_gbit / (nand_area + self.total_area_mm2)

    def density_degradation(self, capacity_gb: float = 512.0) -> float:
        """Fractional density loss (paper: about 6%)."""
        eff = self.storage_density_gb_per_mm2(capacity_gb)
        return 1.0 - eff / self.base_density_gb_per_mm2
