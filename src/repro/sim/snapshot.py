"""Deterministic snapshots of simulation state.

Incremental re-simulation (the digital-twin loop in
:mod:`repro.serving.twin`) needs to freeze a running simulation at a
window boundary and later resume it — possibly several times, under
several what-if configurations — with the resumed run byte-identical
to one that never paused.  This module provides the three primitives
that make that safe:

* :func:`clone_state` — one :func:`copy.deepcopy` over an explicit
  state tree, with a pre-seeded memo so designated *shared* objects
  (immutable corpora, backend indexes) are referenced rather than
  copied.  A single deepcopy call is load-bearing: objects that appear
  in the tree more than once (a :class:`~repro.serving.request.Request`
  sitting in the batcher queue *and* in a heap ``Arrival`` payload, a
  ``Migration`` shared between the rebalancer's in-flight table and a
  heap ``DataMovement`` payload) keep their identity-sharing in the
  copy, so a restored run mutates one object where the original did.
* :func:`state_digest` — a canonical content hash over the same tree.
  Unlike pickling, it is explicit about what it understands (and
  raises on anything else, so un-captured state cannot slip in
  silently), hashes dicts in *iteration* order (deterministic in a
  deterministic simulation, and it preserves LRU recency that sorted
  order would erase), and knows numpy arrays and seeded RNG state.
* :func:`capture_loop` / :func:`restore_loop` — the
  :class:`~repro.sim.events.EventLoop`'s own state: clock, dispatch
  counts, the pending-event heap and the ``seq`` tie-break counter.
  The captured heap list is already heap-ordered, so restore is a
  plain assignment — no re-heapify that could perturb tie-breaks.

A :class:`Snapshot` is immutable and restorable any number of times:
restoring deep-copies *again*, so two forks of the same checkpoint
never share mutable state.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
from collections import OrderedDict
from typing import Any, Iterable

import numpy as np

from repro.sim.events import EventLoop

#: Bump when the captured state tree's shape changes incompatibly;
#: :meth:`restore <repro.serving.frontend.ServingFrontend.restore>`
#: refuses snapshots from another version.
SNAPSHOT_VERSION = 1


@dataclasses.dataclass(frozen=True)
class Snapshot:
    """A frozen, content-addressed capture of simulation state.

    ``state`` is a plain nested tree (dicts/lists/scalars/arrays plus
    the captured domain objects) produced by one :func:`clone_state`
    pass — it shares nothing mutable with the live simulation.
    ``digest`` is :func:`state_digest` over that tree: two snapshots
    with equal digests resume identically.
    """

    version: int
    kind: str
    time: float
    state: dict
    digest: str


def clone_state(state: Any, shared: Iterable[Any] = ()) -> Any:
    """Deep-copy ``state`` in one pass, referencing ``shared`` objects.

    ``shared`` objects (and anything reached only through them) are
    kept by reference — the memo pre-seeding makes deepcopy treat them
    as already-copied.  Everything else is copied with identity-sharing
    preserved across the whole tree.
    """
    # deepcopy's documented memo protocol is id-keyed by design, and
    # every keyed object is pinned alive by `shared` for the whole call.
    memo: dict[int, Any] = {id(obj): obj for obj in shared}  # repro-lint: disable=DET001
    return copy.deepcopy(state, memo)


def capture_loop(loop: EventLoop) -> dict:
    """Freeze an :class:`EventLoop`'s clock, counters and pending heap.

    Handlers and the observer are *not* captured — they close over live
    frontend state and are re-registered by the owner on restore.
    """
    return {
        "now": loop.now,
        "processed": loop.processed,
        "counts": dict(loop.counts),
        "seq": loop._seq,
        "heap": list(loop._heap),
        "stopped": loop._stopped,
    }


def restore_loop(loop: EventLoop, state: dict) -> None:
    """Load :func:`capture_loop` state into ``loop``.

    The captured heap list is in valid heap order already (it was
    lifted from a live heap), so it is assigned directly — re-heapifying
    could reorder equal keys and break determinism.
    """
    loop.now = state["now"]
    loop.processed = state["processed"]
    loop.counts = dict(state["counts"])
    loop._seq = state["seq"]
    loop._heap = list(state["heap"])
    loop._stopped = state["stopped"]


# ---- canonical content hashing ------------------------------------------

def state_digest(state: Any) -> str:
    """Canonical sha256 over a captured state tree.

    Deliberately *not* pickle: the hash is stable across processes and
    Python versions for everything it understands, and raises
    ``TypeError`` for anything it does not (callables, modules, open
    handles) — so a capture that accidentally includes live wiring
    fails loudly instead of hashing an address.
    """
    hasher = hashlib.sha256()
    _feed(hasher, state)
    return hasher.hexdigest()


def _feed(h, value: Any) -> None:
    if value is None:
        h.update(b"N")
    elif value is True:
        h.update(b"T")
    elif value is False:
        h.update(b"F")
    elif isinstance(value, int):
        h.update(b"i" + repr(value).encode())
    elif isinstance(value, float):
        h.update(b"f" + repr(value).encode())
    elif isinstance(value, str):
        h.update(b"s" + value.encode("utf-8") + b"\x00")
    elif isinstance(value, bytes):
        h.update(b"b" + value + b"\x00")
    elif isinstance(value, (list, tuple)):
        h.update(b"[" if isinstance(value, list) else b"(")
        for item in value:
            _feed(h, item)
        h.update(b"]")
    elif isinstance(value, (dict, OrderedDict)):
        # Iteration order, not sorted order: a deterministic simulation
        # populates its dicts in a deterministic order, and for an
        # OrderedDict (the LRU cache) recency *is* state.
        h.update(b"{")
        for key, item in value.items():
            _feed(h, key)
            _feed(h, item)
        h.update(b"}")
    elif isinstance(value, (set, frozenset)):
        h.update(b"<")
        for member in sorted(
            hashlib.sha256(_element_bytes(m)).digest() for m in value
        ):
            h.update(member)
        h.update(b">")
    elif isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        h.update(b"a" + str(arr.dtype).encode() + repr(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(value, np.generic):
        _feed(h, value.item())
    elif isinstance(value, np.random.Generator):
        h.update(b"G")
        _feed(h, value.bit_generator.state)
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        h.update(b"D" + type(value).__qualname__.encode() + b"\x00")
        for f in dataclasses.fields(value):
            _feed(h, f.name)
            _feed(h, getattr(value, f.name))
    elif hasattr(value, "__dict__"):
        h.update(b"O" + type(value).__qualname__.encode() + b"\x00")
        _feed(h, vars(value))
    elif hasattr(value, "__slots__"):
        h.update(b"O" + type(value).__qualname__.encode() + b"\x00")
        for name in type(value).__slots__:
            _feed(h, name)
            _feed(h, getattr(value, name))
    else:
        raise TypeError(
            f"state_digest cannot hash {type(value).__qualname__!r}: "
            f"captured state must be plain data"
        )


def _element_bytes(member: Any) -> bytes:
    sub = hashlib.sha256()
    _feed(sub, member)
    return sub.digest()
