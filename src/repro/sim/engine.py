"""Deterministic resource timelines for trace-driven timing simulation.

The timing models in this reproduction are *analytical event models*: a
platform model walks a search trace round by round and books work onto
resources (a channel bus, a LUN, a PCIe link).  Each resource is a
:class:`Resource` — a serial server with a "next free" time.  Booking
work returns the interval during which the work actually executes, so
queueing delay emerges naturally from contention without a full
callback-style discrete-event kernel.

This style matches how SSD-Sim-like simulators account for time: every
command occupies a die/bus for a deterministic duration and later
commands wait for the resource to free up.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Resource:
    """A serial resource (bus, die, accelerator) with FIFO service.

    Work booked on the resource starts no earlier than both the request
    time and the time the resource becomes free.  Total busy time is
    accumulated for utilisation and energy accounting.
    """

    name: str
    next_free: float = 0.0
    busy_time: float = 0.0
    operations: int = 0

    def acquire(self, at: float, duration: float) -> tuple[float, float]:
        """Book ``duration`` seconds of work requested at time ``at``.

        Returns ``(start, end)`` of the booked interval.
        """
        if duration < 0:
            raise ValueError(f"negative duration {duration!r} on {self.name}")
        start = max(at, self.next_free)
        end = start + duration
        self.next_free = end
        self.busy_time += duration
        self.operations += 1
        return start, end

    def peek(self, at: float) -> float:
        """Earliest time work requested at ``at`` could start."""
        return max(at, self.next_free)

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` this resource spent busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)

    def reset(self) -> None:
        self.next_free = 0.0
        self.busy_time = 0.0
        self.operations = 0


@dataclass
class ResourcePool:
    """A bank of identical parallel resources with least-loaded dispatch.

    Models, e.g., the set of LUN-level accelerators: a request is served
    by whichever unit frees up first.
    """

    name: str
    size: int
    units: list[Resource] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"pool {self.name!r} needs size >= 1, got {self.size}")
        if not self.units:
            self.units = [Resource(f"{self.name}[{i}]") for i in range(self.size)]

    def acquire(self, at: float, duration: float) -> tuple[float, float]:
        """Book work on the unit that can start it the earliest."""
        unit = min(self.units, key=lambda u: u.peek(at))
        return unit.acquire(at, duration)

    def acquire_on(self, index: int, at: float, duration: float) -> tuple[float, float]:
        """Book work on a specific unit (static assignment)."""
        return self.units[index].acquire(at, duration)

    @property
    def busy_time(self) -> float:
        return sum(u.busy_time for u in self.units)

    @property
    def next_free(self) -> float:
        return max(u.next_free for u in self.units)

    def reset(self) -> None:
        for u in self.units:
            u.reset()


@dataclass
class Timeline:
    """A named collection of resources tracking a simulation clock.

    The clock only moves forward via :meth:`advance`.  Models use the
    timeline both as a resource registry and as the authority on the
    current simulated time, so the final ``now`` is the makespan.
    """

    now: float = 0.0
    resources: dict[str, Resource | ResourcePool] = field(default_factory=dict)

    def resource(self, name: str) -> Resource:
        """Get (or lazily create) a serial resource."""
        res = self.resources.get(name)
        if res is None:
            res = Resource(name)
            self.resources[name] = res
        if not isinstance(res, Resource):
            raise TypeError(f"{name!r} is a pool, not a serial resource")
        return res

    def pool(self, name: str, size: int) -> ResourcePool:
        """Get (or lazily create) a pool of ``size`` parallel resources."""
        res = self.resources.get(name)
        if res is None:
            res = ResourcePool(name, size)
            self.resources[name] = res
        if not isinstance(res, ResourcePool):
            raise TypeError(f"{name!r} is a serial resource, not a pool")
        if res.size != size:
            raise ValueError(
                f"pool {name!r} already created with size {res.size}, requested {size}"
            )
        return res

    def advance(self, to: float) -> None:
        """Move the clock forward to ``to`` (no-op if already past)."""
        if to > self.now:
            self.now = to

    def busy_times(self) -> dict[str, float]:
        """Busy seconds per resource name (pools aggregated)."""
        return {name: res.busy_time for name, res in self.resources.items()}

    def reset(self) -> None:
        self.now = 0.0
        for res in self.resources.values():
            res.reset()
