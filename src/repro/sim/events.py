"""A discrete-event kernel: typed events over one simulated clock.

The platform models book *work* onto :class:`~repro.sim.engine.Resource`
timelines — occupancy emerges from FIFO contention and no callbacks are
needed.  The serving layer has the opposite problem: many independent
*control* processes (an arrival stream, batcher deadline timers, batch
completions, autoscale/rebalance epochs, cluster migrations) must
interleave on one clock in a well-defined order.  Hand-interleaving
them in a master loop works until the next event source arrives;
:class:`EventLoop` makes each one a first-class, pluggable schedule.

Design:

* **Typed events.**  Every occurrence is a frozen dataclass carrying
  its simulated ``time``: :class:`Arrival`, :class:`BatchDeadline`,
  :class:`Completion`, :class:`EpochTick`, :class:`DataMovement`,
  :class:`StreamEnd`.  Payloads are opaque to the kernel — the serving
  layer attaches requests, migrations, retirement counts.
* **Deterministic order.**  The heap key is ``(time, rank, seq)``:
  simulated time first, then a per-type *rank* that pins the order of
  same-instant events, then schedule order (``seq``) as the final
  tie-break.  Two runs that schedule the same events therefore process
  them in exactly the same order — the foundation of the serving
  stack's bit-reproducibility guarantees.
* **Lazy invalidation.**  Events cannot be cancelled; a source whose
  timer became stale (e.g. the batcher's deadline moved because a new
  request joined the batch) tags events with a generation counter and
  ignores stale ones on delivery.  This keeps the kernel trivial and
  the sources honest about their own state.

The same-instant ranks encode the serving loop's invariants: a cluster
migration commits its routing flip before any batch dispatched at the
same instant routes, due batch deadlines close *before* an arrival at
the same timestamp is offered (a timeout at exactly the next arrival's
time fires first), completed work retires before the new arrival
observes queue depth, and epoch evaluation sees a settled system.
The one exception is :data:`AFTER_ARRIVALS`: a *greedy* batcher closes
strictly after its arrival instant, so its deadline timers are
scheduled with a rank that sorts behind same-time arrivals.

The kernel and the resource timelines compose: handlers book work on
``Resource``/``ResourcePool``/:class:`~repro.serving.device.ShardDevice`
timelines and schedule a :class:`Completion` at the booked end time —
occupancy stays in the resource layer, control flow in the event layer.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, ClassVar


@dataclass(frozen=True, slots=True)
class Event:
    """One timestamped occurrence on the simulated clock.

    ``RANK`` orders same-instant events of different types (lower fires
    first); :meth:`EventLoop.schedule` can override it per event.
    """

    time: float
    RANK: ClassVar[int] = 100


@dataclass(frozen=True, slots=True)
class BatchDeadline(Event):
    """A batcher's close deadline timer.

    ``generation`` implements lazy invalidation: the scheduler bumps
    its generation whenever the queued batch changes, and the handler
    drops timers whose generation is stale.
    """

    RANK: ClassVar[int] = 10
    generation: int = 0


@dataclass(frozen=True, slots=True)
class Completion(Event):
    """Previously booked work finished (e.g. a dispatched batch's
    results landed); ``payload`` identifies what completed."""

    RANK: ClassVar[int] = 20
    payload: Any = None


@dataclass(frozen=True, slots=True)
class DataMovement(Event):
    """A data migration finished moving; ``payload`` carries the
    migration record.  Fires before every other same-instant event —
    batch deadlines included — so routing-table flips are atomic:
    everything dispatched from this instant on sees the new
    placement."""

    RANK: ClassVar[int] = 5
    payload: Any = None


@dataclass(frozen=True, slots=True)
class FlashMaintenance(Event):
    """Background flash work became due (read-disturb refresh / GC).

    ``payload`` identifies the device and the blocks to relocate.  The
    rank places maintenance *after* same-instant completions (the reads
    that crossed the disturb threshold retire first) but *before* epoch
    evaluation and new arrivals — the GC pause is booked on the device
    before the epoch controllers or a same-instant arrival observe its
    timeline, exactly as a device-internal scheduler would slot it.
    """

    RANK: ClassVar[int] = 25
    payload: Any = None


@dataclass(frozen=True, slots=True)
class EpochTick(Event):
    """A periodic evaluation boundary (autoscaler / rebalancer)."""

    RANK: ClassVar[int] = 30


@dataclass(frozen=True, slots=True)
class Arrival(Event):
    """External work entered the system; ``payload`` is the request."""

    RANK: ClassVar[int] = 40
    payload: Any = None


@dataclass(frozen=True, slots=True)
class StreamEnd(Event):
    """The arrival stream is exhausted (fires after the last arrival)."""

    RANK: ClassVar[int] = 60


#: Schedule rank for timers that must sort *behind* same-instant
#: arrivals (the greedy batcher's zero-wait close: requests arriving at
#: exactly the batch's instant join it before it closes).
AFTER_ARRIVALS = 50


class EventLoop:
    """A heap-backed discrete-event loop with typed subscriptions.

    Handlers subscribe per event *type* and are invoked in subscription
    order; an event popped with no subscriber is a wiring bug and
    raises.  Scheduling is allowed at or after the current ``now``
    (events never travel into the past), including from inside a
    handler — same-time follow-ups are ordered by rank, then by
    schedule order.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self.processed = 0
        self.counts: dict[str, int] = {}
        """Dispatched events per type name — the kernel's own telemetry.
        Maintained unconditionally (one dict update per event) so every
        run can report its event mix; the serving layer folds these
        into ``ServingReport.counters`` as ``loop_events_*``."""

        self.observer: Callable[[Event], None] | None = None
        """Optional dispatch hook, invoked with each event *before* its
        handlers (the clock already reads the event's time).  This is
        the tracing tap: observers must only record — scheduling or
        mutating from one would interleave with handler order."""

        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._handlers: dict[type, list[Callable[[Event], None]]] = {}
        self._stopped = False

    def __len__(self) -> int:
        return len(self._heap)

    def subscribe(
        self, event_type: type, handler: Callable[[Event], None]
    ) -> None:
        """Deliver every event of exactly ``event_type`` to ``handler``."""
        if not (isinstance(event_type, type) and issubclass(event_type, Event)):
            raise TypeError(f"{event_type!r} is not an Event type")
        self._handlers.setdefault(event_type, []).append(handler)

    def schedule(self, event: Event, rank: int | None = None) -> Event:
        """Enqueue ``event``; returns it (for handle-keeping).

        ``rank`` overrides the event type's default same-instant rank
        (see :data:`AFTER_ARRIVALS`).
        """
        if event.time < self.now:
            raise ValueError(
                f"cannot schedule {type(event).__name__} at {event.time!r}: "
                f"the clock is already at {self.now!r}"
            )
        key_rank = event.RANK if rank is None else rank
        heapq.heappush(self._heap, (event.time, key_rank, self._seq, event))
        self._seq += 1
        return event

    def peek_time(self) -> float | None:
        """Simulated time of the next pending event (``None`` if idle)."""
        return self._heap[0][0] if self._heap else None

    def stop(self) -> None:
        """Stop after the current event's handlers return."""
        self._stopped = True

    def run(self, until: float | None = None) -> int:
        """Process events in ``(time, rank, seq)`` order.

        Runs until the heap empties, :meth:`stop` is called, or the
        next event lies beyond ``until`` (which is left pending, so a
        later ``run`` resumes it).  Returns the number of events
        processed by this call.
        """
        processed = 0
        self._stopped = False
        while self._heap and not self._stopped:
            time, _, _, event = self._heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            self.now = time
            event_type = type(event)
            name = event_type.__name__
            self.counts[name] = self.counts.get(name, 0) + 1
            if self.observer is not None:
                self.observer(event)
            handlers = self._handlers.get(event_type)
            if not handlers:
                raise LookupError(f"no handler subscribed for {name}")
            for handler in handlers:
                handler(event)
            processed += 1
            self.processed += 1
        if until is not None and until > self.now and not self._stopped:
            self.now = until
        return processed
