"""Named scaled analogues of the paper's five benchmark datasets.

| name          | stands for    | n      | dim | metric    | memory class |
|---------------|---------------|--------|-----|-----------|--------------|
| glove-100     | glove-100     | 3,000  | 100 | angular   | in-memory    |
| fashion-mnist | fashion-mnist | 2,000  | 196 | euclidean | in-memory    |
| sift-1b       | sift-1b       | 10,000 | 128 | euclidean | out-of-core  |
| deep-1b       | deep-1b       | 10,000 | 96  | euclidean | out-of-core  |
| spacev-1b     | spacev-1b     | 10,000 | 100 | euclidean | out-of-core  |

"Memory class" is relative to the scaled host configuration
(:meth:`repro.core.config.NDSearchConfig.scaled`: 2 MB host DRAM /
VRAM) exactly as the real datasets relate to the paper's 24 GB hosts:
glove and fashion-mnist fit, the three 1b-class analogues do not.
fashion-mnist's dimensionality is reduced 784 -> 196 (2x2 pooling) so
its vector still shares a flash page with neighbors under the scaled
4 KB page, preserving the page-locality behaviour the 16 KB/784-dim
combination has at paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.ann.distance import DistanceMetric
from repro.data.synthetic import (
    clustered_gaussian,
    quantized_descriptors,
    split_queries,
    unit_normalized,
)

#: Per-dataset recall@10 targets the paper tunes each graph to.
RECALL_TARGETS = {
    "glove-100": 0.95,
    "fashion-mnist": 0.95,
    "sift-1b": 0.94,
    "deep-1b": 0.93,
    "spacev-1b": 0.90,
}


@dataclass(frozen=True)
class Dataset:
    """A loaded dataset: corpus, query pool and metadata."""

    name: str
    vectors: np.ndarray
    queries: np.ndarray
    metric: DistanceMetric
    recall_target: float

    @property
    def num_vectors(self) -> int:
        return self.vectors.shape[0]

    @property
    def dim(self) -> int:
        return self.vectors.shape[1]

    @property
    def vector_bytes(self) -> int:
        return self.dim * self.vectors.itemsize

    def footprint_bytes(self, max_neighbors: int = 16) -> int:
        """Resident working set: vectors + padded adjacency."""
        per_vertex = self.vector_bytes + 4 * max_neighbors
        return per_vertex * self.num_vectors

    def query_batch(self, batch_size: int, seed: int = 0) -> np.ndarray:
        """A deterministic batch drawn from the query pool (with
        perturbed resampling if the pool is smaller than the batch)."""
        pool = self.queries
        if batch_size <= pool.shape[0]:
            return pool[:batch_size]
        rng = np.random.default_rng(seed)
        extra = split_queries(self.vectors, batch_size - pool.shape[0],
                              seed=seed + 17)
        return np.concatenate([pool, extra])[:batch_size]


_SPECS = {
    "glove-100": dict(n=3000, dim=100, kind="normalized",
                      metric=DistanceMetric.ANGULAR, seed=101),
    "fashion-mnist": dict(n=2000, dim=196, kind="quantized",
                          metric=DistanceMetric.EUCLIDEAN, seed=102),
    "sift-1b": dict(n=10000, dim=128, kind="quantized",
                    metric=DistanceMetric.EUCLIDEAN, seed=103),
    "deep-1b": dict(n=10000, dim=96, kind="normalized",
                    metric=DistanceMetric.EUCLIDEAN, seed=104),
    "spacev-1b": dict(n=10000, dim=100, kind="quantized",
                      metric=DistanceMetric.EUCLIDEAN, seed=105),
}


def dataset_names() -> list[str]:
    """The five benchmark dataset names, in the paper's order."""
    return list(_SPECS)


@lru_cache(maxsize=None)
def load_dataset(name: str, scale: float = 1.0, n_queries: int = 2048) -> Dataset:
    """Load (generate) a named dataset.

    ``scale`` multiplies the corpus size (tests use scale < 1 for
    speed); the query pool holds ``n_queries`` vectors.
    """
    spec = _SPECS.get(name)
    if spec is None:
        raise KeyError(f"unknown dataset {name!r}; options: {dataset_names()}")
    n = max(64, int(spec["n"] * scale))
    dim, seed, kind = spec["dim"], spec["seed"], spec["kind"]
    if kind == "quantized":
        vectors = quantized_descriptors(n, dim, seed=seed)
    elif kind == "normalized":
        vectors = unit_normalized(n, dim, seed=seed)
    else:
        vectors = clustered_gaussian(n, dim, seed=seed)
    queries = split_queries(vectors, n_queries, seed=seed + 1)
    if kind == "normalized":
        norms = np.linalg.norm(queries, axis=1, keepdims=True)
        queries = (queries / np.where(norms == 0, 1.0, norms)).astype(np.float32)
    return Dataset(
        name=name,
        vectors=vectors,
        queries=queries,
        metric=spec["metric"],
        recall_target=RECALL_TARGETS[name],
    )
