"""Synthetic vector generators matching the benchmark families.

Three generators cover the paper's datasets:

* :func:`clustered_gaussian` — a mixture of Gaussians, the standard
  model for learned embeddings (glove, deep, spacev).  Cluster
  structure matters: it is what gives graph traversal its locality.
* :func:`quantized_descriptors` — non-negative integer-valued vectors
  (SIFT descriptors are uint8 histograms; spacev is int8).
* :func:`unit_normalized` — rows scaled to unit L2 norm (deep1b stores
  normalized CNN descriptors; glove is used under angular distance).
"""

from __future__ import annotations

import numpy as np


def clustered_gaussian(
    n: int,
    dim: int,
    n_clusters: int = 64,
    cluster_std: float = 0.7,
    seed: int = 0,
) -> np.ndarray:
    """A Gaussian-mixture point cloud of shape (n, dim), float32.

    Cluster centers are standard normal; points scatter around their
    center with ``cluster_std``.  Cluster sizes follow a multinomial
    with mild imbalance, mimicking real embedding corpora.
    """
    if n <= 0 or dim <= 0:
        raise ValueError("n and dim must be positive")
    if n_clusters < 1:
        raise ValueError("need at least one cluster")
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n_clusters, dim))
    weights = rng.dirichlet(np.full(n_clusters, 5.0))
    assignment = rng.choice(n_clusters, size=n, p=weights)
    points = centers[assignment] + cluster_std * rng.normal(size=(n, dim))
    return points.astype(np.float32)


def quantized_descriptors(
    n: int,
    dim: int,
    n_clusters: int = 64,
    max_value: int = 255,
    seed: int = 0,
) -> np.ndarray:
    """Non-negative integer-valued descriptors (SIFT/spacev style).

    Generated as a clipped, scaled Gaussian mixture then rounded —
    float32 storage with integral values, like sift-1b's uint8
    histograms promoted to float for distance computation.
    """
    base = clustered_gaussian(n, dim, n_clusters=n_clusters, seed=seed)
    lo, hi = base.min(), base.max()
    scaled = (base - lo) / max(hi - lo, 1e-9) * max_value
    return np.round(scaled).astype(np.float32)


def unit_normalized(
    n: int,
    dim: int,
    n_clusters: int = 64,
    seed: int = 0,
) -> np.ndarray:
    """Unit-L2-norm rows (deep1b-style normalized CNN descriptors)."""
    base = clustered_gaussian(n, dim, n_clusters=n_clusters, seed=seed)
    norms = np.linalg.norm(base, axis=1, keepdims=True)
    norms = np.where(norms == 0.0, 1.0, norms)
    return (base / norms).astype(np.float32)


def split_queries(
    vectors: np.ndarray, n_queries: int, seed: int = 1, perturb: float = 0.05
) -> np.ndarray:
    """Derive a query set from the corpus distribution.

    Queries are perturbed copies of random corpus points — the standard
    benchmark construction (query distribution matches the corpus) —
    never exact duplicates, so recall is non-trivial.
    """
    if n_queries <= 0:
        raise ValueError("n_queries must be positive")
    rng = np.random.default_rng(seed)
    picks = rng.choice(vectors.shape[0], size=n_queries, replace=True)
    scale = float(vectors.std()) * perturb
    noise = rng.normal(scale=scale or 1e-3, size=(n_queries, vectors.shape[1]))
    return (vectors[picks] + noise).astype(np.float32)
