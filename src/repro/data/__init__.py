"""Synthetic datasets standing in for the paper's five benchmarks.

The paper evaluates on glove-100, fashion-mnist, sift-1b, deep-1b and
spacev-1b.  Billion-scale corpora are neither shippable nor needed to
reproduce the *architectural* results — what matters is each dataset's
dimensionality, value distribution, metric and, crucially, whether its
footprint exceeds host/GPU memory in the scaled world (DESIGN.md,
substitution table).  :mod:`repro.data.datasets` provides named scaled
analogues with those properties.
"""

from repro.data.synthetic import (
    clustered_gaussian,
    quantized_descriptors,
    unit_normalized,
)
from repro.data.datasets import Dataset, dataset_names, load_dataset

__all__ = [
    "clustered_gaussian",
    "quantized_descriptors",
    "unit_normalized",
    "Dataset",
    "dataset_names",
    "load_dataset",
]
