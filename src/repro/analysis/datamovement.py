"""Data-movement accounting across platforms (Section IV-A / IX).

The qualitative core of the paper is a data-movement hierarchy: the
less feature-vector traffic a design ships, and the closer its compute
sits to the NAND arrays, the faster and more efficient it is.  This
module tallies bytes moved per boundary for each simulated platform
(host PCIe, private PCIe, SSD-internal buses) and computes the
filtering factor of SearSSD's ``<SearchPage>`` workflow versus a
page-shipping design — the paper's "as low as 1/32 of the data
transferred via PCIe link in [47]".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.stats import SimResult


@dataclass(frozen=True)
class DataMovement:
    """Bytes crossing each boundary for one simulated batch."""

    platform: str
    host_pcie_bytes: int
    private_pcie_bytes: int
    internal_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.host_pcie_bytes + self.private_pcie_bytes + self.internal_bytes

    def per_query(self, batch_size: int) -> float:
        if batch_size <= 0:
            return 0.0
        return self.total_bytes / batch_size


def movement_of(result: SimResult) -> DataMovement:
    """Extract the boundary-crossing byte counts from a SimResult."""
    c = result.counters
    return DataMovement(
        platform=result.platform,
        host_pcie_bytes=int(c["pcie_bytes"]),
        private_pcie_bytes=int(c["pcie_private_bytes"] + c["private_pcie_bytes"]),
        internal_bytes=int(c["internal_bytes"]),
    )


def filtering_factor(ndsearch: SimResult, page_shipping: SimResult) -> float:
    """How many fewer bytes NDSearch ships than a page-shipping design.

    Compares total off-chip traffic (everything that leaves the NAND
    dies) — for NDSearch that is distances plus host I/O; for a
    SmartSSD/DeepStore-style design it is whole pages.
    """
    nd = movement_of(ndsearch).total_bytes
    other = movement_of(page_shipping).total_bytes
    if nd <= 0:
        return float("inf")
    return other / nd
