"""Data-locality metrics from the motivation study (Figs. 4 and 14).

* :func:`page_access_ratio` — (number of page accesses) / (length of
  the searching trace).  High ratio = each page access returns few of
  the vertices the query needed = poor spatial locality.
* :func:`accessed_vector_fraction` — (bytes of requested feature
  vectors) / (bytes of page data fetched).  Low fraction = most of
  every fetched page is irrelevant.
* :func:`lun_coverage` — fraction of vertex-holding LUNs touched by a
  batch (Fig. 4b reports > 82% per batch of 2048, motivating LUN-level
  parallelism).
"""

from __future__ import annotations

import numpy as np

from repro.ann.trace import SearchTrace
from repro.core.placement import VertexPlacement


def _trace_vertices(trace: SearchTrace) -> np.ndarray:
    flat = [v for record in trace.iterations for v in record.computed]
    return np.asarray(flat, dtype=np.int64)


def page_access_ratio(
    traces: list[SearchTrace], placement: VertexPlacement
) -> float:
    """Mean (#accessed pages / trace length) over queries.

    Page accesses are counted per iteration (the page buffer holds one
    page; a page revisited in a later iteration is re-sensed, matching
    the paper's counting of accesses rather than distinct pages).
    """
    ratios = []
    for trace in traces:
        length = trace.trace_length
        if length == 0:
            continue
        accesses = 0
        for record in trace.iterations:
            if not record.computed:
                continue
            vertices = np.asarray(record.computed, dtype=np.int64)
            accesses += int(np.unique(placement.page_keys(vertices)).size)
        ratios.append(accesses / length)
    return float(np.mean(ratios)) if ratios else 0.0


def accessed_vector_fraction(
    traces: list[SearchTrace],
    placement: VertexPlacement,
    vector_bytes: int,
) -> float:
    """Mean (accessed vector bytes / fetched page bytes) over queries."""
    page_size = placement.geometry.page_size
    fractions = []
    for trace in traces:
        vector_bytes_total = 0
        page_bytes_total = 0
        for record in trace.iterations:
            if not record.computed:
                continue
            vertices = np.asarray(record.computed, dtype=np.int64)
            pages = int(np.unique(placement.page_keys(vertices)).size)
            vector_bytes_total += vertices.size * vector_bytes
            page_bytes_total += pages * page_size
        if page_bytes_total:
            fractions.append(vector_bytes_total / page_bytes_total)
    return float(np.mean(fractions)) if fractions else 0.0


def lun_coverage(
    traces: list[SearchTrace], placement: VertexPlacement
) -> float:
    """Fraction of vertex-holding LUNs accessed by this batch."""
    holding = np.unique(placement.lun)
    touched: set[int] = set()
    for trace in traces:
        vertices = _trace_vertices(trace)
        if vertices.size:
            touched.update(int(l) for l in np.unique(placement.lun[vertices]))
    if holding.size == 0:
        return 0.0
    return len(touched) / int(holding.size)


def batch_page_accesses(
    traces: list[SearchTrace],
    placement: VertexPlacement,
    shared: bool,
) -> int:
    """Total page senses for a batch, with or without cross-query
    sharing (the Fig. 15 normalised-page-access metric)."""
    total = 0
    max_rounds = max((t.num_iterations for t in traces), default=0)
    for round_idx in range(max_rounds):
        if shared:
            vertices = []
            for trace in traces:
                if round_idx < trace.num_iterations:
                    vertices.extend(trace.iterations[round_idx].computed)
            if vertices:
                keys = placement.page_keys(np.asarray(vertices, dtype=np.int64))
                total += int(np.unique(keys).size)
        else:
            for trace in traces:
                if round_idx < trace.num_iterations:
                    computed = trace.iterations[round_idx].computed
                    if computed:
                        keys = placement.page_keys(
                            np.asarray(computed, dtype=np.int64)
                        )
                        total += int(np.unique(keys).size)
    return total
