"""Analysis utilities: locality metrics, breakdowns, roofline, tables."""

from repro.analysis.locality import (
    accessed_vector_fraction,
    lun_coverage,
    page_access_ratio,
)
from repro.analysis.breakdown import cpu_breakdown, ndsearch_breakdown
from repro.analysis.roofline import RooflinePoint, roofline_model
from repro.analysis.reporting import format_table

__all__ = [
    "page_access_ratio",
    "accessed_vector_fraction",
    "lun_coverage",
    "cpu_breakdown",
    "ndsearch_breakdown",
    "RooflinePoint",
    "roofline_model",
    "format_table",
]
