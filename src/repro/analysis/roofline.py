"""Roofline analysis (paper Fig. 2b).

The paper locates the ANNS workloads in the bandwidth-bound region of
a roofline with two ceilings: the host PCIe link (15.4 GB/s) and the
SSD-internal aggregate page-buffer bandwidth (819.2 GB/s when all 256
LUNs stream simultaneously).  NDSearch "lifts" the workload from the
PCIe ceiling to the internal ceiling — that ratio bounds the
achievable speedup, and the measured speedups sit below it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import NDSearchConfig
from repro.sim.stats import SimResult


@dataclass(frozen=True)
class RooflinePoint:
    """One workload's position on the roofline."""

    label: str
    operational_intensity: float
    """FLOPs per byte moved from storage."""

    attainable_pcie_gflops: float
    attainable_internal_gflops: float

    @property
    def lift(self) -> float:
        """Ceiling ratio: the headroom NDSearch unlocks."""
        if self.attainable_pcie_gflops <= 0:
            return 0.0
        return self.attainable_internal_gflops / self.attainable_pcie_gflops


def operational_intensity(dim: int, vector_bytes: int, page_bytes: int) -> float:
    """FLOPs per byte for the distance kernel on paged storage.

    One distance costs ~3*dim FLOPs; serving it from storage moves a
    whole page (the access granularity), of which one vector is used.
    """
    if page_bytes <= 0:
        raise ValueError("page_bytes must be positive")
    return (3.0 * dim) / page_bytes


def roofline_model(
    config: NDSearchConfig,
    dim: int,
    label: str = "anns",
    compute_peak_gflops: float = 1000.0,
) -> RooflinePoint:
    """Place a workload on the two-ceiling roofline."""
    vector_bytes = dim * 4
    oi = operational_intensity(dim, vector_bytes, config.geometry.page_size)
    pcie_bw = config.timing.pcie_host_bw
    internal_bw = config.internal_bandwidth
    return RooflinePoint(
        label=label,
        operational_intensity=oi,
        attainable_pcie_gflops=min(compute_peak_gflops, oi * pcie_bw / 1e9),
        attainable_internal_gflops=min(compute_peak_gflops, oi * internal_bw / 1e9),
    )


def speedup_within_roofline(
    ndsearch: SimResult, baseline: SimResult, point: RooflinePoint
) -> bool:
    """Check the measured speedup respects the roofline lift bound."""
    return ndsearch.speedup_over(baseline) <= point.lift * 1.05
