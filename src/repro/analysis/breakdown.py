"""Execution-time breakdowns (paper Figs. 1 and 17)."""

from __future__ import annotations

from repro.sim.stats import SimResult

#: Fig. 1 groups the CPU's time into two bars.
CPU_GROUPS = {
    "ssd_io_read": ("ssd_io_read",),
    "compute_and_sort": ("host_memory", "compute", "sort"),
}

#: Fig. 17 component order for NDSearch.
NDSEARCH_GROUPS = {
    "nand_read": ("nand_read",),
    "channel_bus": ("channel_bus",),
    "dram_access": ("dram",),
    "embedded_cores": ("embedded_cores",),
    "allocating": ("vgenerator", "allocator"),
    "bitonic_fpga": ("fpga_sort",),
    "ssd_io_read": ("pcie_host",),
}


def _grouped(result: SimResult, groups: dict[str, tuple[str, ...]]) -> dict[str, float]:
    busy = result.component_busy_s
    raw = {
        label: sum(busy.get(key, 0.0) for key in keys)
        for label, keys in groups.items()
    }
    total = sum(raw.values())
    if total <= 0:
        return {label: 0.0 for label in groups}
    return {label: value / total for label, value in raw.items()}


def cpu_breakdown(result: SimResult) -> dict[str, float]:
    """CPU execution-time shares: SSD I/O read vs compute-and-sort."""
    return _grouped(result, CPU_GROUPS)


def ndsearch_breakdown(result: SimResult) -> dict[str, float]:
    """NDSearch execution-time shares (the Fig. 17 stacked bar)."""
    return _grouped(result, NDSEARCH_GROUPS)
