"""Plain-text table rendering for benchmark output.

Every benchmark prints the rows/series of its paper figure through
:func:`format_table`, so ``pytest benchmarks/ --benchmark-only -s``
regenerates the paper's tables in the terminal and the same strings
land in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.3g}",
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows = [
        [
            float_fmt.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_percent(value: float) -> str:
    return f"{100.0 * value:.1f}%"
