"""Run profiling: wall-clock, kernel events/sec, peak RSS per config.

The parity digests protect the serving stack's *correctness* across
refactors; nothing protected its *speed* — a PR could halve the event
kernel's throughput and no gate would notice.  This module is the
measurement half of that gate: profile a set of named configurations,
write the ``BENCH_serving.json`` trajectory, and compare a fresh run
against the committed baseline.

Comparing wall-clock numbers across machines is meaningless, so the
trajectory stores a **calibration**: the events/sec of a trivial
pure-kernel microbenchmark (:func:`calibrate_events_per_sec`) measured
on the same host at the same time.  The regression gate
(:func:`check_regression`) rescales the baseline's per-config
events/sec by ``current_calibration / baseline_calibration`` before
applying the threshold, so a slower CI runner shifts both sides
equally and only *relative* regressions — the simulator doing more
work per event than it used to — trip the gate.

Peak RSS is the process high-water mark (``ru_maxrss``), which is
monotone over a process's life: per-config values record the mark
*after* that config ran, so the first config to touch a large corpus
pays for it in the trajectory.  That is the honest reading for a
regression trail (a config suddenly inflating the high-water mark is
exactly the signal wanted).
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass

try:  # POSIX; Windows has no resource module.
    import resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    resource = None


def peak_rss_bytes() -> int:
    """The process's peak resident set size, in bytes (0 if unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS.
    """
    if resource is None:  # pragma: no cover - non-POSIX fallback
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        return int(peak)
    return int(peak) * 1024


def calibrate_events_per_sec(n_events: int = 50_000) -> float:
    """Events/sec of a bare :class:`~repro.sim.events.EventLoop` drain.

    Schedules ``n_events`` no-payload events and times the drain — the
    host-speed yardstick the regression gate normalizes by.  It
    deliberately exercises only the kernel (heap + dispatch), not
    numpy or the platform models, so it tracks interpreter/CPU speed
    rather than any workload.
    """
    from repro.sim.events import Event, EventLoop

    loop = EventLoop()
    loop.subscribe(Event, lambda event: None)
    for i in range(n_events):
        loop.schedule(Event(time=float(i)))
    t0 = time.perf_counter()
    processed = loop.run()
    elapsed = time.perf_counter() - t0
    return processed / elapsed if elapsed > 0 else 0.0


@dataclass
class ProfileRecord:
    """One profiled configuration run."""

    name: str
    wall_s: float
    events: int
    events_per_sec: float
    peak_rss_bytes: int


class _Probe:
    """Mutable handle a measured block reports its event count through."""

    def __init__(self) -> None:
        self.events = 0


class RunProfiler:
    """Measures named runs and serializes the perf trajectory.

    Usage::

        profiler = RunProfiler()
        with profiler.measure("batch-x1-hi") as probe:
            report = frontend.run(requests, pool)
            probe.events = int(report.counters["loop_events_total"])
        profiler.write("BENCH_serving.json")
    """

    def __init__(self) -> None:
        self.records: list[ProfileRecord] = []

    @contextmanager
    def measure(self, name: str):
        probe = _Probe()
        t0 = time.perf_counter()
        yield probe
        wall = time.perf_counter() - t0
        self.records.append(
            ProfileRecord(
                name=name,
                wall_s=wall,
                events=int(probe.events),
                events_per_sec=probe.events / wall if wall > 0 else 0.0,
                peak_rss_bytes=peak_rss_bytes(),
            )
        )

    def to_json(self, calibration_eps: float | None = None) -> dict:
        """The ``BENCH_serving.json`` payload (JSON-safe)."""
        if calibration_eps is None:
            calibration_eps = calibrate_events_per_sec()
        configs = {}
        for record in self.records:
            entry = asdict(record)
            del entry["name"]
            configs[record.name] = entry
        return {
            "schema": 1,
            "bench": "serving",
            "host": {
                "platform": sys.platform,
                "python": "%d.%d" % sys.version_info[:2],
            },
            "calibration_eps": calibration_eps,
            "configs": configs,
        }


def check_regression(
    baseline: dict, current: dict, threshold: float = 0.30
) -> tuple[list[dict], list[str]]:
    """Compare a fresh profile against the committed trajectory.

    Returns ``(rows, failures)``: one comparison row per config present
    in both payloads, and a failure message per config whose
    calibration-scaled events/sec fell more than ``threshold`` below
    the baseline.  Configs present on only one side are reported as
    informational rows (``status`` ``"new"`` / ``"removed"``), never
    failures — adding or retiring a config is a reviewed choice, not a
    regression.
    """
    base_cal = float(baseline.get("calibration_eps") or 0.0)
    cur_cal = float(current.get("calibration_eps") or 0.0)
    scale = cur_cal / base_cal if base_cal > 0 and cur_cal > 0 else 1.0
    base_configs = baseline.get("configs", {})
    cur_configs = current.get("configs", {})
    rows: list[dict] = []
    failures: list[str] = []
    for name in sorted(set(base_configs) | set(cur_configs)):
        if name not in cur_configs:
            rows.append({"name": name, "status": "removed"})
            continue
        if name not in base_configs:
            rows.append({"name": name, "status": "new"})
            continue
        base_eps = float(base_configs[name]["events_per_sec"])
        cur_eps = float(cur_configs[name]["events_per_sec"])
        expected = base_eps * scale
        ratio = cur_eps / expected if expected > 0 else 1.0
        row = {
            "name": name,
            "status": "ok",
            "baseline_eps": base_eps,
            "expected_eps": expected,
            "current_eps": cur_eps,
            "ratio": ratio,
        }
        if ratio < 1.0 - threshold:
            row["status"] = "regressed"
            failures.append(
                f"{name}: {cur_eps:,.0f} events/sec is "
                f"{1.0 - ratio:.0%} below the calibrated baseline "
                f"{expected:,.0f} (threshold {threshold:.0%})"
            )
        rows.append(row)
    return rows, failures
