"""Request-span tracing exported as Chrome trace-event JSON.

The serving frontend runs on a simulated clock, so a "profiler" for it
cannot sample wall time — instead, every lifecycle transition the
frontend already computes (arrival, shed, cache hit, coalesce, batch
close, per-stage device occupancy, completion, migration commit) is
emitted as a timestamped trace event on the *simulated* timeline.  The
export is the Chrome trace-event format, the lingua franca of timeline
tooling: load the file in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing`` and scrub through the run.

Event mapping:

* **Requests** are nestable async spans (``ph`` ``b``/``e``) keyed by
  request id: they overlap freely (hundreds may be in flight), which
  per-thread complete events cannot represent.
* **Device stage occupancy** is complete events (``ph`` ``X``): each
  shard device is a *process* (``pid``) and each pipeline resource
  (nand array, MAC groups, sorter, PCIe link …) a *thread* (``tid``)
  inside it — stage FIFOs never overlap on one resource, so the rows
  render as clean Gantt lanes, exactly the WiscSee-style timeline view
  of the kernel's internal event stream.
* **Kernel control events** (batch deadlines, epoch ticks, stream end,
  migration commits) are instants (``ph`` ``i``) on the frontend
  process's kernel thread.
* **Queue depth** (and any other sampled series) are counter events
  (``ph`` ``C``) rendered as a filled area chart.

Timestamps are microseconds (the format's unit), converted from
simulated seconds at emission.  The tracer appends events in handler
execution order — deterministic because the event kernel is — so the
same seed and config produce a byte-identical trace file
(:meth:`SpanTracer.json_str` serializes with fixed separators and
sorted keys).

:class:`Tracer` is the no-op base: every hook is a ``pass`` and
``enabled`` is ``False``, so instrumented code guards any argument
marshalling behind one attribute read.  :class:`NullTracer` (the
default everywhere) is that base under its contract name — the parity
suite proves a ``NullTracer`` run is byte-identical to the pinned
pre-observability digests, and that an *enabled* tracer changes
nothing either (tracing is observe-only).
"""

from __future__ import annotations

import json
from typing import Any, Mapping


class Tracer:
    """No-op tracing interface; subclass and set ``enabled`` to record.

    ``enabled`` gates argument construction at call sites::

        if tracer.enabled:
            tracer.instant("epoch", "kernel", now, args={"replicas": n})

    The hooks themselves are safe to call unconditionally.
    """

    enabled: bool = False

    def process(self, pid: int, name: str) -> None:
        """Name the timeline process ``pid`` (e.g. ``shard 0``)."""

    def thread(self, pid: int, name: str) -> int:
        """Return a stable ``tid`` for ``name`` within ``pid`` (0 here)."""
        return 0

    def instant(
        self,
        name: str,
        cat: str,
        ts_s: float,
        pid: int = 0,
        tid: int = 0,
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """A zero-duration marker at ``ts_s`` (simulated seconds)."""

    def complete(
        self,
        name: str,
        cat: str,
        start_s: float,
        end_s: float,
        pid: int = 0,
        tid: int = 0,
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """A ``[start_s, end_s]`` span on one timeline lane."""

    def async_begin(
        self,
        name: str,
        cat: str,
        span_id: int,
        ts_s: float,
        pid: int = 0,
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """Open the nestable async span ``(cat, span_id)``."""

    def async_end(
        self,
        name: str,
        cat: str,
        span_id: int,
        ts_s: float,
        pid: int = 0,
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """Close the nestable async span ``(cat, span_id)``."""

    def counter(
        self,
        name: str,
        ts_s: float,
        values: Mapping[str, float],
        pid: int = 0,
    ) -> None:
        """Sample one or more series of a counter chart at ``ts_s``."""


class NullTracer(Tracer):
    """The default tracer: records nothing, perturbs nothing."""


class SpanTracer(Tracer):
    """Records spans/instants/counters; exports Chrome trace JSON."""

    enabled = True

    def __init__(self) -> None:
        self._events: list[dict] = []
        self._threads: dict[tuple[int, str], int] = {}
        self._next_tid: dict[int, int] = {}
        self._processes: dict[int, str] = {}

    def __len__(self) -> int:
        """Number of recorded events (metadata included)."""
        return len(self._events)

    # ---- registration ----------------------------------------------------
    def process(self, pid: int, name: str) -> None:
        if self._processes.get(pid) == name:
            return
        self._processes[pid] = name
        self._events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": name},
            }
        )

    def thread(self, pid: int, name: str) -> int:
        """Stable tid per (pid, resource name), first use registers it.

        Allocation order follows first emission, which is deterministic
        because the event kernel is.
        """
        key = (pid, name)
        tid = self._threads.get(key)
        if tid is None:
            tid = self._next_tid.get(pid, 0)
            self._next_tid[pid] = tid + 1
            self._threads[key] = tid
            self._events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "ts": 0,
                    "args": {"name": name},
                }
            )
        return tid

    # ---- emission --------------------------------------------------------
    @staticmethod
    def _us(ts_s: float) -> float:
        # The trace-event unit is microseconds.  Plain multiplication
        # is exact enough (doubles) and, crucially, deterministic.
        return ts_s * 1e6

    def instant(self, name, cat, ts_s, pid=0, tid=0, args=None) -> None:
        event = {
            "ph": "i",
            "name": name,
            "cat": cat,
            "ts": self._us(ts_s),
            "pid": pid,
            "tid": tid,
            "s": "t",
        }
        if args:
            event["args"] = dict(args)
        self._events.append(event)

    def complete(
        self, name, cat, start_s, end_s, pid=0, tid=0, args=None
    ) -> None:
        event = {
            "ph": "X",
            "name": name,
            "cat": cat,
            "ts": self._us(start_s),
            "dur": self._us(end_s) - self._us(start_s),
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = dict(args)
        self._events.append(event)

    def async_begin(self, name, cat, span_id, ts_s, pid=0, args=None) -> None:
        self._async("b", name, cat, span_id, ts_s, pid, args)

    def async_end(self, name, cat, span_id, ts_s, pid=0, args=None) -> None:
        self._async("e", name, cat, span_id, ts_s, pid, args)

    def _async(self, ph, name, cat, span_id, ts_s, pid, args) -> None:
        event = {
            "ph": ph,
            "name": name,
            "cat": cat,
            "id": span_id,
            "ts": self._us(ts_s),
            "pid": pid,
            "tid": 0,
        }
        if args:
            event["args"] = dict(args)
        self._events.append(event)

    def counter(self, name, ts_s, values, pid=0) -> None:
        self._events.append(
            {
                "ph": "C",
                "name": name,
                "ts": self._us(ts_s),
                "pid": pid,
                "tid": 0,
                "args": dict(values),
            }
        )

    # ---- export ----------------------------------------------------------
    def events(self) -> list[dict]:
        """The recorded trace events, in emission order."""
        return list(self._events)

    def to_json(self) -> dict:
        """The Chrome trace-event JSON object (``traceEvents`` form)."""
        return {
            "displayTimeUnit": "ms",
            "traceEvents": self._events,
        }

    def json_str(self) -> str:
        """Deterministic serialization: same run → byte-identical text."""
        return json.dumps(
            self.to_json(), sort_keys=True, separators=(",", ":")
        )

    def write(self, path) -> None:
        """Write the trace to ``path`` (open in Perfetto to view)."""
        with open(path, "w") as fh:
            fh.write(self.json_str())
            fh.write("\n")
