"""repro.obs — observability for the discrete-event serving stack.

The serving layer answers *what* a deployment sustains (QPS, p99,
shed rate); this package answers *why*, and whether the simulator
itself is holding its speed PR over PR:

* :mod:`repro.obs.trace` — a request-span tracer over the event
  kernel: per-request lifecycle spans (arrival → admission / shed /
  cache / coalesce → batch membership → per-stage device occupancy →
  completion) plus kernel-level instants (batch deadlines, epoch
  ticks, migration commits), exported as Chrome trace-event JSON that
  loads directly in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.  The default :class:`~repro.obs.trace.NullTracer`
  is a no-op proven to leave the serving stack's pinned parity digests
  byte-identical.
* :mod:`repro.obs.windows` — a windowed metrics registry: counters,
  gauges, histograms and busy intervals closed on simulated
  *event-time* windows, turning the end-of-run scalar report into time
  series (queue depth, per-device utilization, p99-within-window,
  shed and hit rates).
* :mod:`repro.obs.profile` — a run profiler recording wall-clock,
  kernel events processed per second and peak RSS per configuration;
  it writes the repo's ``BENCH_serving.json`` perf trajectory and
  backs the CI events/sec regression gate.

Everything here is observe-only: tracers and window registries read
values the frontend already computed and never feed back into
scheduling, routing or timing — observability is zero-perturbation by
construction, and the parity suite proves it.
"""

from repro.obs.profile import (
    ProfileRecord,
    RunProfiler,
    calibrate_events_per_sec,
    check_regression,
    peak_rss_bytes,
)
from repro.obs.trace import NullTracer, SpanTracer, Tracer
from repro.obs.windows import WindowedMetrics

__all__ = [
    "NullTracer",
    "ProfileRecord",
    "RunProfiler",
    "SpanTracer",
    "Tracer",
    "WindowedMetrics",
    "calibrate_events_per_sec",
    "check_regression",
    "peak_rss_bytes",
]
