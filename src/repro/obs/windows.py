"""Windowed metrics: counters, gauges, histograms on event-time windows.

An end-of-run :class:`~repro.serving.metrics.ServingReport` condenses a
whole run to scalars — one p99, one shed rate, one utilization — which
hides exactly the things an operator looks for: the burst that blew
the queue, the window where the hot device saturated, the recovery
after a migration.  This registry keeps the same observations *keyed
by simulated event-time window* and reduces each window independently,
the OpenDT sim-worker pattern (close windows on event time, reduce,
emit) applied to the serving stack's metrics.

Four instrument kinds, all keyed by ``(name, window index)`` where the
index is ``floor(t / window_s)``:

* **counters** — monotone event counts (arrivals, sheds, cache hits);
  :meth:`WindowedMetrics.inc`.
* **gauges** — sampled values reduced to mean/max (queue depth);
  :meth:`WindowedMetrics.sample`.
* **histograms** — full per-window distributions reduced to
  count/mean/p50/p95/p99/max (latency — this is where
  "p99-within-window" lives); :meth:`WindowedMetrics.observe`.
* **busy intervals** — ``[start, end)`` occupancy apportioned to the
  windows it overlaps, so per-device utilization becomes a time
  series; :meth:`WindowedMetrics.add_interval`.

The registry is observe-only and allocation-light: plain dicts of
floats until :meth:`WindowedMetrics.series` reduces them (numpy
percentiles, deterministic).  Windows with no observations between the
first and last active window are emitted as zero-count rows, so the
series is dense and plot-ready.
"""

from __future__ import annotations

import math

import numpy as np


class WindowedMetrics:
    """Accumulates observations into fixed-width event-time windows."""

    def __init__(self, window_s: float) -> None:
        if not (window_s > 0 and math.isfinite(window_s)):
            raise ValueError(f"window_s must be positive, got {window_s!r}")
        self.window_s = float(window_s)
        self._counters: dict[str, dict[int, float]] = {}
        self._gauges: dict[str, dict[int, list[float]]] = {}
        self._hists: dict[str, dict[int, list[float]]] = {}
        self._busy: dict[str, dict[int, float]] = {}

    def _idx(self, t: float) -> int:
        if t < 0:
            raise ValueError(f"negative event time {t!r}")
        return int(t // self.window_s)

    # ---- instruments -----------------------------------------------------
    def inc(self, name: str, t: float, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` in the window containing ``t``."""
        windows = self._counters.setdefault(name, {})
        idx = self._idx(t)
        windows[idx] = windows.get(idx, 0.0) + value

    def sample(self, name: str, t: float, value: float) -> None:
        """Record one gauge sample (reduced to mean/max per window)."""
        windows = self._gauges.setdefault(name, {})
        cell = windows.get(self._idx(t))
        if cell is None:
            windows[self._idx(t)] = [value, 1.0, value]
        else:
            cell[0] += value
            cell[1] += 1.0
            if value > cell[2]:
                cell[2] = value

    def observe(self, name: str, t: float, value: float) -> None:
        """Record one histogram observation (percentiles per window)."""
        self._hists.setdefault(name, {}).setdefault(self._idx(t), []).append(
            float(value)
        )

    def add_interval(self, name: str, start: float, end: float) -> None:
        """Apportion busy time ``[start, end)`` across the windows it spans.

        The caller is responsible for passing *disjoint* intervals
        (e.g. the clipped union a
        :class:`~repro.serving.device.ShardDevice` already maintains),
        so per-window busy seconds never exceed the window width.
        """
        if end < start:
            raise ValueError(f"interval ends before it starts: {start}..{end}")
        if end == start:
            return
        windows = self._busy.setdefault(name, {})
        w = self.window_s
        idx = self._idx(start)
        while True:
            window_end = (idx + 1) * w
            slice_end = min(end, window_end)
            windows[idx] = windows.get(idx, 0.0) + (slice_end - max(start, idx * w))
            if end <= window_end:
                break
            idx += 1

    # ---- reduction -------------------------------------------------------
    def _span(self) -> tuple[int, int] | None:
        indices = [
            idx
            for table in (self._counters, self._gauges, self._hists, self._busy)
            for windows in table.values()
            for idx in windows
        ]
        if not indices:
            return None
        return min(indices), max(indices)

    def series(self) -> dict:
        """Reduce to a dense, JSON-safe time series.

        Returns ``{"window_s", "windows": [...]}`` where each window row
        carries its bounds plus one entry per registered instrument
        (counters default to 0, busy to 0.0; gauges and histograms are
        omitted from rows where they had no samples).
        """
        span = self._span()
        rows: list[dict] = []
        if span is not None:
            first, last = span
            counter_names = sorted(self._counters)
            gauge_names = sorted(self._gauges)
            hist_names = sorted(self._hists)
            busy_names = sorted(self._busy)
            for idx in range(first, last + 1):
                row: dict = {
                    "index": idx,
                    "start_s": idx * self.window_s,
                    "end_s": (idx + 1) * self.window_s,
                    "counters": {
                        name: self._counters[name].get(idx, 0.0)
                        for name in counter_names
                    },
                    "gauges": {},
                    "histograms": {},
                    "busy_s": {
                        name: self._busy[name].get(idx, 0.0)
                        for name in busy_names
                    },
                    "utilization": {
                        name: self._busy[name].get(idx, 0.0) / self.window_s
                        for name in busy_names
                    },
                }
                for name in gauge_names:
                    cell = self._gauges[name].get(idx)
                    if cell is not None:
                        total, count, peak = cell
                        row["gauges"][name] = {
                            "mean": total / count,
                            "max": peak,
                            "count": count,
                        }
                for name in hist_names:
                    values = self._hists[name].get(idx)
                    if values:
                        arr = np.asarray(values, dtype=np.float64)
                        p50, p95, p99 = (
                            float(np.percentile(arr, q))
                            for q in (50.0, 95.0, 99.0)
                        )
                        row["histograms"][name] = {
                            "count": int(arr.size),
                            "mean": float(arr.mean()),
                            "p50": p50,
                            "p95": p95,
                            "p99": p99,
                            "max": float(arr.max()),
                        }
                rows.append(row)
        return {"window_s": self.window_s, "windows": rows}
