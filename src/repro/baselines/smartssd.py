"""SmartSSD-only baseline (Kim et al. [47], Fig. 13).

An FPGA sits next to an unmodified SSD behind a private PCIe 3.0 x4
switch; graph traversal and distance computation run on the FPGA, which
reads vertex data from the SSD by P2P at NVMe sector granularity.  No
in-storage logic exists, so:

* every computed vertex crosses the private link (vector + adjacency
  sector), which the paper identifies as the remaining bottleneck;
* internal NAND parallelism is whatever the stock SSD firmware
  extracts — reads queue on the device's channels without dynamic
  LUN-aware scheduling, modelled as a utilisation factor on the
  aggregate internal read bandwidth.

Beats the CPU (no host round trip, no OS 4 KB amplification, full
private-link utilisation) but loses to every in-storage design.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.common import DatasetProfile, WorkloadStats
from repro.core.config import NDSearchConfig
from repro.sim.energy import EnergyModel
from repro.sim.stats import Counters, SimResult, serial_timeline

NVME_SECTOR_BYTES = 512


@dataclass
class SmartSSDModel:
    """Trace-driven SmartSSD-only model."""

    config: NDSearchConfig
    internal_read_utilization: float = 0.25
    """Fraction of aggregate NAND read bandwidth the stock firmware
    sustains under the irregular single-vertex read stream (no
    LUN-aware scheduling, one LUN per chip selectable on the bus)."""

    page_reuse_factor: float = 1.6
    """NCQ-window coalescing: consecutive requests hitting the same
    page are served from the controller's read buffer."""

    fpga_distance_flops: float = 1e12
    platform: str = "smartssd"

    def run_batch(
        self,
        traces,
        profile: DatasetProfile,
        algorithm: str = "hnsw",
        cached_vertices: np.ndarray | None = None,
    ) -> SimResult:
        from repro.baselines.common import cache_hit_count

        stats = WorkloadStats.from_traces(traces)
        timing = self.config.timing
        geometry = self.config.geometry
        counters = Counters()
        busy: dict[str, float] = {}
        # DiskANN-style hot vertices held in the FPGA's DRAM.
        cache_hits = cache_hit_count(traces, cached_vertices)
        if cache_hits:
            counters["cache_hits"] += cache_hits
        accesses = stats.total_accesses - cache_hits

        # Private-link transfer: vector sectors + request overhead.
        sectors = -(-profile.vector_bytes // NVME_SECTOR_BYTES)
        link_bytes = accesses * sectors * NVME_SECTOR_BYTES
        t_link = link_bytes / timing.pcie_private_bw
        t_link += stats.total_iterations * timing.pcie_private_latency_s
        counters["pcie_private_bytes"] += link_bytes

        # Internal NAND service: page senses at firmware-level parallelism.
        page_loads = max(1, int(accesses / self.page_reuse_factor))
        aggregate_bw = (
            geometry.total_luns
            * geometry.page_size
            / timing.read_page_s
            * self.internal_read_utilization
        )
        t_nand = page_loads * geometry.page_size / aggregate_bw
        counters["page_reads"] += page_loads

        # FPGA compute + sort (generous; never the bottleneck).
        t_compute = accesses * profile.dim * 3.0 / self.fpga_distance_flops
        t_sort = timing.fpga_sort_s(stats.batch_size * 64)

        busy["private_link"] = t_link
        busy["nand_read"] = t_nand
        busy["compute"] = t_compute
        busy["sort"] = t_sort
        # Link transfer overlaps NAND service; the longer path dominates,
        # compute/sort pipeline behind it.
        t_read = max(t_link, t_nand)
        total = t_read + t_compute + t_sort

        # Phase timeline: the overlapped link+NAND read path is one
        # "media" stage; the FPGA's distance/sort work drains behind it
        # and can overlap the next batch's reads.
        timeline = serial_timeline(
            [
                ("read", "media", t_read),
                ("compute", "fpga", t_compute),
                ("sort", "fpga", t_sort),
            ]
        )

        result = SimResult(
            platform=self.platform,
            algorithm=algorithm,
            dataset=profile.name,
            batch_size=stats.batch_size,
            sim_time_s=total,
            counters=counters,
            component_busy_s=busy,
            timeline=timeline,
        )
        EnergyModel.for_platform(self.platform).attach(result)
        return result
