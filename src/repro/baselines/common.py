"""Shared helpers for the baseline platform models."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ann.trace import SearchTrace


@dataclass(frozen=True)
class WorkloadStats:
    """Aggregate trace statistics every baseline consumes."""

    batch_size: int
    total_accesses: int
    """Computed (query, vertex) pairs across the batch."""

    total_iterations: int
    max_iterations: int
    mean_trace_length: float

    @classmethod
    def from_traces(cls, traces: list[SearchTrace]) -> "WorkloadStats":
        if not traces:
            return cls(0, 0, 0, 0, 0.0)
        lengths = [t.trace_length for t in traces]
        iters = [t.num_iterations for t in traces]
        return cls(
            batch_size=len(traces),
            total_accesses=int(sum(lengths)),
            total_iterations=int(sum(iters)),
            max_iterations=int(max(iters)),
            mean_trace_length=float(np.mean(lengths)),
        )


def cache_hit_count(
    traces: list[SearchTrace], cached_vertices: np.ndarray | None
) -> int:
    """Accesses served by a host/DRAM cache of hot vertices."""
    if cached_vertices is None or len(cached_vertices) == 0:
        return 0
    cached = frozenset(int(v) for v in cached_vertices)
    hits = 0
    for trace in traces:
        for record in trace.iterations:
            hits += sum(1 for v in record.computed if v in cached)
    return hits


@dataclass(frozen=True)
class DatasetProfile:
    """What a baseline needs to know about the stored dataset."""

    name: str
    num_vectors: int
    dim: int
    vector_bytes: int
    footprint_bytes: int
    """Vectors + adjacency, the working set that must be resident."""

    def fits_in(self, capacity_bytes: int) -> bool:
        return self.footprint_bytes <= capacity_bytes
