"""CPU baseline: hnswlib / DiskANN on a 2-socket Xeon host (Fig. 1, 13).

Timing model per batch:

* **In-memory datasets** (glove-100, fashion-mnist class): every
  computed vertex access is a cache-missing DRAM fetch of the vertex
  slice plus SIMD distance work; no SSD traffic after the initial load
  (which is amortised across batches, as in the paper's steady-state
  throughput measurement).
* **Out-of-memory datasets** (sift/deep/spacev-1b class): every access
  additionally reads one OS page (4 KB) from the SSD over the host
  PCIe link, whose effective bandwidth follows the Fig. 2(a)
  utilisation curve — saturating near 83% beyond batch ~1024.  This is
  the "SSD I/O Read" share of Fig. 1 (62-75%).
* DiskANN additionally serves accesses to its hot-vertex cache from
  DRAM (its design treats main memory as the SSD's cache), trading SSD
  reads for host memory traffic — the Fig. 1 difference between the
  two algorithms.

The CPU-T variant (Section VIII) is the same model with terabyte-class
DRAM capacity: everything becomes in-memory, at a higher platform
power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.common import DatasetProfile, WorkloadStats, cache_hit_count
from repro.core.config import HostConfig
from repro.flash.timing import FlashTiming
from repro.sim.energy import EnergyModel
from repro.sim.stats import Counters, SimResult, serial_timeline


@dataclass
class CPUModel:
    """Trace-driven CPU host model."""

    timing: FlashTiming
    host: HostConfig
    terabyte_dram: bool = False
    """CPU-T: pair the CPU with TB-level DRAM (everything fits)."""

    sort_list_length: int = 64

    @property
    def platform(self) -> str:
        return "cpu-t" if self.terabyte_dram else "cpu"

    def run_batch(
        self,
        traces,
        profile: DatasetProfile,
        algorithm: str = "hnsw",
        cached_vertices: np.ndarray | None = None,
    ) -> SimResult:
        stats = WorkloadStats.from_traces(traces)
        timing, host = self.timing, self.host
        counters = Counters()
        busy: dict[str, float] = {}

        fits = self.terabyte_dram or profile.fits_in(host.dram_capacity_bytes)
        accesses = stats.total_accesses
        cache_hits = 0
        if not fits:
            cache_hits = cache_hit_count(traces, cached_vertices)
            counters["cache_hits"] += cache_hits

        # --- host-side memory + compute (always paid) -------------------
        slice_bytes = profile.vector_bytes + 4 * 16  # vector + neighbor IDs
        lines = max(1, -(-slice_bytes // 64))
        # A cache-missing vertex fetch: first line at full latency, the
        # rest streamed behind the hardware prefetcher.
        t_vertex_fetch = timing.cpu_dram_access_s * (1 + 0.15 * (lines - 1))
        t_mem = accesses * t_vertex_fetch
        flops = accesses * profile.dim * 3.0
        t_compute = flops / timing.cpu_distance_flops
        t_sort = stats.batch_size * self.sort_list_length * timing.cpu_sort_elem_s
        counters["dram_accesses"] += accesses * lines
        counters["distance_computations"] += accesses

        # --- SSD I/O (out-of-memory only) ----------------------------------
        t_io = 0.0
        if not fits:
            io_accesses = accesses - cache_hits
            io_bytes = io_accesses * timing.os_page_size
            effective_bw = timing.pcie_host_bw * host.pcie_utilization(
                stats.batch_size
            )
            t_io = io_bytes / max(effective_bw, 1.0)
            t_io += io_accesses * host.io_request_overhead_s
            counters["pcie_bytes"] += io_bytes
            counters["ssd_page_reads"] += io_accesses

        busy["ssd_io_read"] = t_io
        busy["host_memory"] = t_mem
        busy["compute"] = t_compute
        busy["sort"] = t_sort
        total = t_io + t_mem + t_compute + t_sort

        # Phase timeline: the I/O front-end and the host's memory/
        # compute/sort back-end are distinct resources, so a pipelined
        # deployment can overlap the next batch's SSD reads with this
        # batch's in-core work.
        timeline = serial_timeline(
            [
                ("ssd_io_read", "host_io", t_io),
                ("host_memory", "host_core", t_mem),
                ("compute", "host_core", t_compute),
                ("sort", "host_core", t_sort),
            ]
        )

        result = SimResult(
            platform=self.platform,
            algorithm=algorithm,
            dataset=profile.name,
            batch_size=stats.batch_size,
            sim_time_s=total,
            counters=counters,
            component_busy_s=busy,
            timeline=timeline,
        )
        EnergyModel.for_platform(self.platform).attach(result)
        return result
