"""GPU baseline: cuhnsw on a Titan-RTX-class device (Fig. 13).

* **In-memory datasets**: accesses hit VRAM at high bandwidth; the
  per-iteration kernel-launch/synchronisation overhead (batched beam
  search advances all queries one hop per kernel) is what keeps the
  GPU's advantage over the CPU at the modest factor Fig. 13 shows.
* **Out-of-memory datasets**: the dataset is k-means-sharded; shards
  stream from the SSD over PCIe via P2P DMA at high queue depth, so
  the effective utilisation is better than the host-managed CPU path,
  but the traffic itself is the same per-access page reads — PCIe
  remains the bottleneck, which is why the paper's GPU is only ~2x the
  CPU on billion-scale datasets while NDSearch is an order of
  magnitude faster still.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.common import DatasetProfile, WorkloadStats
from repro.core.config import HostConfig
from repro.flash.timing import FlashTiming
from repro.sim.energy import EnergyModel
from repro.sim.stats import Counters, SimResult, serial_timeline


@dataclass
class GPUModel:
    """Trace-driven GPU model."""

    timing: FlashTiming
    host: HostConfig
    vram_bandwidth: float = 600e9
    vram_access_s: float = 90e-9
    """Effective per-vertex cost of the in-VRAM traversal: divergent
    gathers plus the serial candidate-heap work of each query's
    thread block (cuhnsw is latency-bound, not bandwidth-bound)."""

    gpu_util_max: float = 0.85
    shard_routing_overhead_s: float = 0.1e-6
    """Host-side k-means shard routing bookkeeping per access."""

    sort_list_length: int = 64

    platform: str = "gpu"

    def run_batch(
        self,
        traces,
        profile: DatasetProfile,
        algorithm: str = "hnsw",
        cached_vertices: np.ndarray | None = None,
    ) -> SimResult:
        stats = WorkloadStats.from_traces(traces)
        timing = self.timing
        counters = Counters()
        busy: dict[str, float] = {}

        fits = profile.fits_in(self.host.vram_capacity_bytes)
        accesses = stats.total_accesses

        # VRAM traffic for vectors + neighbor lists: divergent gathers
        # bounded by access latency, plus the streaming floor.
        slice_bytes = profile.vector_bytes + 4 * 16
        t_vram = accesses * max(
            self.vram_access_s, slice_bytes / self.vram_bandwidth
        )
        # Distance kernels are throughput-bound; add per-access scheduling.
        t_compute = accesses * profile.dim * 3.0 / timing.gpu_distance_flops
        t_compute += accesses * 5e-9
        # One kernel launch + sync per search hop, all queries together.
        t_launch = stats.max_iterations * timing.gpu_kernel_launch_s
        t_sort = stats.batch_size * self.sort_list_length * 1e-9
        counters["distance_computations"] += accesses

        t_io = 0.0
        if not fits:
            io_bytes = accesses * timing.os_page_size
            effective_bw = timing.pcie_host_bw * self.gpu_util_max
            t_io = io_bytes / effective_bw
            t_io += accesses * self.shard_routing_overhead_s
            counters["pcie_bytes"] += io_bytes
            counters["ssd_page_reads"] += accesses

        busy["ssd_io_read"] = t_io
        busy["vram"] = t_vram
        busy["compute"] = t_compute
        busy["kernel_launch"] = t_launch
        busy["sort"] = t_sort
        total = t_io + t_vram + t_compute + t_launch + t_sort

        # Phase timeline: shard streaming over PCIe is a separate
        # resource from the on-device traversal, so consecutive batches
        # can overlap I/O with kernels (the stock CUDA-stream pattern).
        timeline = serial_timeline(
            [
                ("ssd_io_read", "pcie", t_io),
                ("vram", "gpu", t_vram),
                ("compute", "gpu", t_compute),
                ("kernel_launch", "gpu", t_launch),
                ("sort", "gpu", t_sort),
            ]
        )

        result = SimResult(
            platform=self.platform,
            algorithm=algorithm,
            dataset=profile.name,
            batch_size=stats.batch_size,
            sim_time_s=total,
            counters=counters,
            component_busy_s=busy,
            timeline=timeline,
        )
        EnergyModel.for_platform(self.platform).attach(result)
        return result
