"""Baseline platform models the paper compares against (Section VII).

All baselines are trace-driven: they replay the same per-query access
traces as NDSearch on an analytic+event timing model of the platform:

* :class:`repro.baselines.cpu.CPUModel` — 2x Xeon host with SSD-backed
  storage (hnswlib / DiskANN style), including the CPU-T variant with
  terabyte-class DRAM (Section VIII).
* :class:`repro.baselines.gpu.GPUModel` — Titan-RTX-class GPU with
  k-means-sharded VRAM residency (cuhnsw style).
* :class:`repro.baselines.smartssd.SmartSSDModel` — the SmartSSD-only
  design [47]: FPGA over a private PCIe x4, no in-storage logic.
* :class:`repro.baselines.deepstore.DeepStoreModel` — DeepStore-style
  channel-level (DS-c) and chip-level (DS-cp) in-storage accelerators.
"""

from repro.baselines.cpu import CPUModel
from repro.baselines.gpu import GPUModel
from repro.baselines.smartssd import SmartSSDModel
from repro.baselines.deepstore import DeepStoreModel

__all__ = ["CPUModel", "GPUModel", "SmartSSDModel", "DeepStoreModel"]
