"""DeepStore-style in-storage accelerators: DS-c and DS-cp (Fig. 13).

DeepStore [58] places accelerators *outside* the NAND flash chips — at
channel level (DS-c) or chip level (DS-cp).  Built here under the same
budget and the same static data layout as NDSearch, per the paper's
methodology, with dynamic allocating implemented for them ("we actually
implement dynamic allocating on DS-cp to maximize its hardware
utilization").  What they cannot avoid:

* every sensed page must leave the NAND chip — crossing the chip bus
  (DS-cp) or the chip + channel bus (DS-c) and paying the ~30 us
  page-buffer-to-external-accelerator penalty (Section III);
* parallelism is capped at one accelerator per chip (DS-cp) or per
  channel (DS-c), versus one per LUN with per-plane MAC groups in
  NDSearch, and the shared bus serialises the transfers of all LUNs
  below one accelerator.

Because graph-traversal ANNS is not compute-bound, DS-cp's extra
proximity beats DS-c's bigger logic — the inversion versus the original
DeepStore paper that Section VII-B calls out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ann.trace import SearchTrace
from repro.baselines.common import DatasetProfile
from repro.core.config import NDSearchConfig
from repro.core.placement import VertexPlacement
from repro.sim.energy import EnergyModel
from repro.sim.stats import Counters, PhaseSegment, SimResult


@dataclass
class DeepStoreModel:
    """Trace-driven DS-c / DS-cp model sharing NDSearch's substrate."""

    config: NDSearchConfig
    placement: VertexPlacement
    level: str = "chip"
    """``"chip"`` for DS-cp, ``"channel"`` for DS-c."""

    dynamic_alloc: bool = True

    external_pipeline_factor: float = 2.0
    """The ~30 us page-buffer-to-external-accelerator penalty overlaps
    the previous page's bus transfer via double buffering, so its
    effective serial cost is external / this factor."""

    def __post_init__(self) -> None:
        if self.level not in ("chip", "channel"):
            raise ValueError(f"level must be 'chip' or 'channel', got {self.level!r}")
        g = self.config.geometry
        self._plane_span = g.blocks_per_plane * g.pages_per_block
        self._lun_span = self._plane_span * g.planes_per_lun

    @property
    def platform(self) -> str:
        return "ds-cp" if self.level == "chip" else "ds-c"

    @property
    def num_accelerators(self) -> int:
        g = self.config.geometry
        return g.total_chips if self.level == "chip" else g.channels

    def _group_of_lun(self, luns: np.ndarray) -> np.ndarray:
        g = self.config.geometry
        if self.level == "chip":
            return luns // g.luns_per_chip
        return luns // g.luns_per_channel

    def _transfer_s(self) -> float:
        """Move one page from the page buffer to the accelerator."""
        timing = self.config.timing
        g = self.config.geometry
        if self.level == "chip":
            bus = timing.chip_bus_bw
        else:
            bus = timing.channel_bus_bw
        overhead = timing.external_accelerator_s / self.external_pipeline_factor
        return g.page_size / bus + overhead

    def run_batch(
        self,
        traces: list[SearchTrace],
        profile: DatasetProfile,
        algorithm: str = "hnsw",
        cached_vertices: np.ndarray | None = None,
    ) -> SimResult:
        timing = self.config.timing
        cached = (
            frozenset(int(v) for v in cached_vertices)
            if cached_vertices is not None
            else frozenset()
        )
        counters = Counters()
        busy: dict[str, float] = {
            "pcie_host": 0.0,
            "nand_read": 0.0,
            "page_transfer": 0.0,
            "controller": 0.0,
            "compute": 0.0,
        }
        batch = len(traces)
        if batch == 0:
            return SimResult(self.platform, algorithm, profile.name, 0, 0.0)

        query_bytes = batch * (profile.dim * 4 + 16)
        t_in = timing.host_transfer_s(query_bytes)
        counters["pcie_bytes"] += query_bytes
        busy["pcie_host"] += t_in
        makespan = t_in
        timeline: list[PhaseSegment] = []
        if t_in > 0:
            timeline.append(
                PhaseSegment("host_in", 0.0, t_in, resource="host_in")
            )
        t_page = self._transfer_s()

        max_rounds = max(t.num_iterations for t in traces)
        for round_idx in range(max_rounds):
            group_pages: dict[int, list[np.ndarray]] = {}
            group_vectors: dict[int, int] = {}
            n_active = 0
            n_pairs = 0
            for trace in traces:
                if round_idx >= trace.num_iterations:
                    continue
                n_active += 1
                computed = np.asarray(
                    trace.iterations[round_idx].computed, dtype=np.int64
                )
                if cached and computed.size:
                    # DiskANN-style hot vertices served from the SSD's
                    # controller DRAM, as on NDSearch.
                    mask = np.fromiter(
                        (int(v) in cached for v in computed),
                        dtype=bool,
                        count=computed.size,
                    )
                    hits = int(mask.sum())
                    if hits:
                        counters["cache_hits"] += hits
                        computed = computed[~mask]
                if computed.size == 0:
                    continue
                n_pairs += int(computed.size)
                keys = self.placement.page_keys(computed)
                luns = keys // self._lun_span
                groups = self._group_of_lun(luns)
                for grp in np.unique(groups):
                    grp_keys = keys[groups == grp]
                    group_pages.setdefault(int(grp), []).append(grp_keys)
                    group_vectors[int(grp)] = (
                        group_vectors.get(int(grp), 0) + grp_keys.size
                    )
            if n_active == 0:
                continue

            t_sched = n_active * timing.vgen_stage_s + n_pairs * timing.alloc_dispatch_s
            t_gather = n_pairs * timing.dram_access_s
            busy["controller"] += t_sched + t_gather
            counters["distance_computations"] += n_pairs

            round_time = 0.0
            for grp, key_groups in group_pages.items():
                if self.dynamic_alloc:
                    loads = int(np.unique(np.concatenate(key_groups)).size)
                else:
                    loads = int(sum(np.unique(k).size for k in key_groups))
                counters["page_reads"] += loads
                counters["internal_bytes"] += loads * self.config.geometry.page_size
                # Transfers serialise on the shared bus; senses from the
                # LUNs below the accelerator pipeline behind them.
                luns_below = (
                    self.config.geometry.luns_per_chip
                    if self.level == "chip"
                    else self.config.geometry.luns_per_channel
                )
                t_transfer = loads * t_page
                t_sense = -(-loads // luns_below) * timing.read_page_s
                t_compute = group_vectors.get(grp, 0) * timing.distance_mac_s(
                    profile.dim
                )
                group_time = max(t_transfer, t_sense) + t_compute
                busy["page_transfer"] += t_transfer
                busy["nand_read"] += t_sense
                busy["compute"] += t_compute
                round_time = max(round_time, group_time)
            t_round = t_sched + round_time + t_gather
            if t_round > 0:
                timeline.append(
                    PhaseSegment(
                        "search_round", makespan, makespan + t_round,
                        resource="engine",
                    )
                )
            makespan += t_round

        out_bytes = batch * 10 * 8
        t_out = timing.host_transfer_s(out_bytes)
        if t_out > 0:
            timeline.append(
                PhaseSegment(
                    "host_out", makespan, makespan + t_out, resource="host_out"
                )
            )
        makespan += t_out
        counters["pcie_bytes"] += out_bytes

        result = SimResult(
            platform=self.platform,
            algorithm=algorithm,
            dataset=profile.name,
            batch_size=batch,
            sim_time_s=makespan,
            counters=counters,
            component_busy_s=busy,
            timeline=timeline,
        )
        EnergyModel.for_platform(self.platform).attach(result)
        return result
