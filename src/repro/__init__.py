"""repro — a from-scratch reproduction of NDSEARCH (ISCA 2024).

NDSearch accelerates graph-traversal-based approximate nearest
neighbor search by moving graph traversal and distance computation
into the SSD (near-data processing at NAND LUN granularity).  The
package layout mirrors the system:

* :mod:`repro.ann` — the ANNS algorithms (HNSW, DiskANN, HCNNG, TOGG,
  plus the IVF-Flat extension).
* :mod:`repro.flash` — the NAND-flash SSD substrate.
* :mod:`repro.core` — the paper's contribution: LUNCSR, two-level
  scheduling, the SearSSD architecture and the NDSearch system.
* :mod:`repro.sorting` — the FPGA bitonic sorting kernel.
* :mod:`repro.baselines` — CPU / CPU-T / GPU / SmartSSD / DeepStore.
* :mod:`repro.platform` — the unified platform layer: a named registry
  (``platform.get("ndsearch").simulate(traces, profile)``) behind which
  every device model above serves the same interface and emits
  phase-timeline results.
* :mod:`repro.sim`, :mod:`repro.data`, :mod:`repro.workloads`,
  :mod:`repro.analysis`, :mod:`repro.experiments` — simulation core,
  datasets, trace sets, analysis and the per-figure experiment drivers.
* :mod:`repro.serving` — the online layer: dynamic batching, shard
  routing, result caching and admission control over the platform
  simulators, reporting QPS and tail latency.
* :mod:`repro.lint` — static determinism & event-kernel invariant
  checks over this repo's own sources (``python -m repro.lint``),
  gating CI on the bug classes that would break bit-reproducibility.

Typical use::

    from repro.ann import HNSWIndex, HNSWParams
    from repro.core import NDSearch, NDSearchConfig

    index = HNSWIndex(vectors, HNSWParams())
    system = NDSearch(index=index, config=NDSearchConfig.scaled())
    ids, dists, telemetry = system.search_batch(queries, k=10)
"""

__version__ = "1.1.0"

from repro import platform
from repro.core import NDSearch, NDSearchConfig, SchedulingFlags
from repro.serving import (
    BatchPolicy,
    ServingConfig,
    ServingFrontend,
    ServingReport,
    build_router,
)
from repro.sim.stats import Counters, SimResult
from repro.workloads import TraceSet, ZipfianSampler

__all__ = [
    "BatchPolicy",
    "Counters",
    "NDSearch",
    "NDSearchConfig",
    "SchedulingFlags",
    "ServingConfig",
    "ServingFrontend",
    "ServingReport",
    "SimResult",
    "TraceSet",
    "ZipfianSampler",
    "build_router",
    "platform",
    "__version__",
]
