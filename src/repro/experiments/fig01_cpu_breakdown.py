"""Fig. 1: CPU execution-time breakdown (SSD I/O read vs compute+sort).

Paper: HNSW and DiskANN on 2x Xeon Gold, sift/deep/spacev-1b, batch
1024 and 2048; SSD I/O read accounts for 62-75% of total latency.
Scaled batches 256/512 keep the same batch-to-LUN ratio.
"""

from __future__ import annotations

from repro.analysis.breakdown import cpu_breakdown
from repro.analysis.reporting import format_table
from repro.experiments.common import get_workload, run_platform

DATASETS = ("sift-1b", "deep-1b", "spacev-1b")
BATCHES = (256, 512)


def collect(scale: float = 1.0, batches=BATCHES) -> list[dict]:
    rows = []
    for algorithm in ("hnsw", "diskann"):
        for dataset in DATASETS:
            workload = get_workload(dataset, algorithm, scale=scale)
            for batch in batches:
                result = run_platform("cpu", workload, batch=batch)
                frac = cpu_breakdown(result)
                rows.append(
                    {
                        "algorithm": algorithm,
                        "dataset": dataset,
                        "batch": batch,
                        "ssd_io_read": frac["ssd_io_read"],
                        "compute_and_sort": frac["compute_and_sort"],
                    }
                )
    return rows


def run(scale: float = 1.0, batches=BATCHES) -> str:
    rows = collect(scale=scale, batches=batches)
    table = [
        [
            r["algorithm"],
            r["dataset"],
            r["batch"],
            f"{100 * r['ssd_io_read']:.0f}%",
            f"{100 * r['compute_and_sort']:.0f}%",
        ]
        for r in rows
    ]
    return format_table(
        ["algo", "dataset", "batch", "SSD I/O read", "compute+sort"],
        table,
        title="Fig. 1 — CPU execution-time breakdown (paper: I/O 62-75%)",
    )
