"""Fig. 13: throughput (QPS) and speedup across all platforms.

Paper: CPU / GPU / SmartSSD-only / DS-c / DS-cp / NDSearch on five
datasets x {HNSW, DiskANN}, batch 2048.  Expected shape: NDSearch wins
everywhere; on billion-class datasets the ordering is
NDSearch > DS-cp > DS-c ~ SmartSSD > GPU > CPU with NDSearch up to
31.7x / 14.6x / 7.4x / 2.9x over CPU / GPU / SmartSSD / DS-cp; on the
in-memory datasets the NDP designs barely beat CPU/GPU while NDSearch
still leads (up to 5.06x / 2.12x over CPU / GPU).
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.common import (
    ALGORITHMS,
    PLATFORMS,
    get_workload,
    run_platform,
)

DATASETS = ("glove-100", "fashion-mnist", "sift-1b", "deep-1b", "spacev-1b")


def collect(
    scale: float = 1.0,
    batch: int = 512,
    datasets=DATASETS,
    algorithms=ALGORITHMS,
    platforms=PLATFORMS,
) -> list[dict]:
    rows = []
    for algorithm in algorithms:
        for dataset in datasets:
            workload = get_workload(dataset, algorithm, scale=scale)
            cpu = None
            for platform in platforms:
                result = run_platform(platform, workload, batch=batch)
                if platform == "cpu":
                    cpu = result
                rows.append(
                    {
                        "algorithm": algorithm,
                        "dataset": dataset,
                        "platform": platform,
                        "qps": result.qps,
                        "speedup_vs_cpu": result.speedup_over(cpu),
                        "sim_time_s": result.sim_time_s,
                    }
                )
    return rows


def run(scale: float = 1.0, batch: int = 512, **kwargs) -> str:
    rows = collect(scale=scale, batch=batch, **kwargs)
    table = [
        [
            r["algorithm"],
            r["dataset"],
            r["platform"],
            f"{r['qps'] / 1e3:.2f}K",
            f"{r['speedup_vs_cpu']:.2f}x",
        ]
        for r in rows
    ]
    return format_table(
        ["algo", "dataset", "platform", "QPS", "speedup vs CPU"],
        table,
        title=(
            "Fig. 13 — throughput and normalised speedup "
            "(paper: NDSearch up to 31.7x CPU / 14.6x GPU / 2.9x DS-cp)"
        ),
    )
