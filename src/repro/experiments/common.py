"""Shared experiment infrastructure: workloads, caching, platform runs.

A :class:`Workload` bundles everything the simulators need for one
(dataset, algorithm) pair: the built graph, a pool of recorded search
traces, ground truth and the achieved recall.  Construction is
expensive (graph building is the paper's offline phase), so workloads
are cached both in-process and on disk under ``.expcache/``.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.ann import (
    BruteForceIndex,
    DiskANNIndex,
    DiskANNParams,
    HCNNGIndex,
    HCNNGParams,
    HNSWIndex,
    HNSWParams,
    TOGGIndex,
    TOGGParams,
    recall_at_k,
)
from repro import platform as platform_registry
from repro.ann.graph import ProximityGraph
from repro.baselines.common import DatasetProfile
from repro.core import NDSearch, NDSearchConfig, SchedulingFlags
from repro.data import Dataset, load_dataset
from repro.sim.stats import SimResult
from repro.workloads import TraceSet

ALGORITHMS = ("hnsw", "diskann")
EXTRA_ALGORITHMS = ("hcnng", "togg")
PLATFORMS = ("cpu", "gpu", "smartssd", "ds-c", "ds-cp", "ndsearch")

DEFAULT_K = 10

#: Search beam widths, tuned per dataset the way the paper tunes its
#: graphs to per-dataset recall@10 targets (95/95/94/93/90%).  The
#: in-memory datasets reach their targets with narrower beams, so their
#: traces are shorter — as at paper scale, where billion-vector
#: searches visit far more vertices than million-vector ones.
DEFAULT_EF = {"hnsw": 64, "diskann": 64, "hcnng": 64, "togg": 64}
SMALL_DATASET_EF = {"glove-100": 32, "fashion-mnist": 32}
DEFAULT_BATCH = 512
TRACE_POOL = 2048

_CACHE_VERSION = 5


def search_ef(dataset_name: str, algorithm: str) -> int:
    """The tuned search beam width for one experiment cell."""
    return SMALL_DATASET_EF.get(dataset_name, DEFAULT_EF[algorithm])


def cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR")
    path = Path(root) if root else Path(__file__).resolve().parents[3] / ".expcache"
    path.mkdir(parents=True, exist_ok=True)
    return path


@dataclass
class Workload:
    """Everything one (dataset, algorithm) experiment consumes."""

    dataset: Dataset
    algorithm: str
    graph: ProximityGraph
    trace_set: TraceSet
    ground_truth: np.ndarray
    recall: float
    hot_vertices: np.ndarray | None = None
    _nd_cache: dict = field(default_factory=dict, repr=False)

    def profile(self) -> DatasetProfile:
        d = self.dataset
        return DatasetProfile(
            name=d.name,
            num_vectors=d.num_vectors,
            dim=d.dim,
            vector_bytes=d.vector_bytes,
            footprint_bytes=d.footprint_bytes(),
        )

    def ndsearch(
        self,
        config: NDSearchConfig,
        reorder_mode: str = "ours",
        hard_failure_prob: float = 0.01,
    ) -> NDSearch:
        """A cached NDSearch system for this workload."""
        key = (
            config.flags,
            config.geometry,
            reorder_mode,
            hard_failure_prob,
            config.max_queries_per_lun,
            config.timing.read_page_s,
        )
        system = self._nd_cache.get(key)
        if system is None:
            system = NDSearch(
                index=_IndexShim(self),
                config=config,
                reorder_mode=reorder_mode,
                hard_failure_prob=hard_failure_prob,
            )
            self._nd_cache[key] = system
        return system


class _IndexShim:
    """Adapts a cached Workload to the index protocol NDSearch expects
    (``base_graph`` + optional ``hot_vertices``); the searches already
    happened at trace-generation time."""

    def __init__(self, workload: Workload) -> None:
        self._workload = workload

    def base_graph(self) -> ProximityGraph:
        return self._workload.graph

    def hot_vertices(self, fraction: float) -> np.ndarray:
        hot = self._workload.hot_vertices
        if hot is None:
            degrees = self._workload.graph.degrees
            count = max(1, int(self._workload.graph.num_vertices * fraction))
            return np.argsort(-degrees)[:count].astype(np.int64)
        count = max(1, int(self._workload.graph.num_vertices * fraction))
        return hot[:count]

    def search_batch(self, queries, k, ef=None, record=True):
        raise NotImplementedError(
            "cached workloads replay pre-recorded traces; use "
            "Workload.trace_set instead of searching again"
        )


def _build_index(dataset: Dataset, algorithm: str):
    vectors, metric = dataset.vectors, dataset.metric
    if algorithm == "hnsw":
        return HNSWIndex(vectors, HNSWParams(M=12, ef_construction=64), metric)
    if algorithm == "diskann":
        return DiskANNIndex(vectors, DiskANNParams(R=24, L=64, alpha=1.2), metric)
    if algorithm == "hcnng":
        return HCNNGIndex(vectors, HCNNGParams(), metric)
    if algorithm == "togg":
        return TOGGIndex(vectors, TOGGParams(), metric)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def _cache_key(name: str, algorithm: str, scale: float, pool: int) -> Path:
    digest = hashlib.sha1(
        f"{name}|{algorithm}|{scale}|{pool}|v{_CACHE_VERSION}".encode()
    ).hexdigest()[:16]
    return cache_dir() / f"workload_{name}_{algorithm}_{digest}.npz"


_memory_cache: dict[tuple, Workload] = {}


def get_workload(
    dataset_name: str,
    algorithm: str,
    scale: float = 1.0,
    pool: int = TRACE_POOL,
    k: int = DEFAULT_K,
) -> Workload:
    """Build (or load from cache) the workload for one experiment cell."""
    mem_key = (dataset_name, algorithm, scale, pool, k)
    cached = _memory_cache.get(mem_key)
    if cached is not None:
        return cached
    dataset = load_dataset(dataset_name, scale=scale, n_queries=pool)
    path = _cache_key(dataset_name, algorithm, scale, pool)
    if path.exists():
        workload = _load_workload(path, dataset, algorithm)
    else:
        workload = _generate_workload(dataset, algorithm, pool, k)
        _save_workload(path, workload)
    _memory_cache[mem_key] = workload
    return workload


def _generate_workload(
    dataset: Dataset, algorithm: str, pool: int, k: int
) -> Workload:
    index = _build_index(dataset, algorithm)
    queries = dataset.query_batch(pool)
    ef = search_ef(dataset.name, algorithm)
    ids, dists, traces = index.search_batch(queries, k, ef=ef)
    gt, _ = BruteForceIndex(dataset.vectors, dataset.metric).search_batch(queries, k)
    recall = recall_at_k(ids, gt, k)
    hot = None
    if hasattr(index, "hot_vertices"):
        hot = index.hot_vertices(0.2)
    return Workload(
        dataset=dataset,
        algorithm=algorithm,
        graph=index.base_graph(),
        trace_set=TraceSet.from_search(ids, dists, traces),
        ground_truth=gt,
        recall=recall,
        hot_vertices=hot,
    )


def _save_workload(path: Path, workload: Workload) -> None:
    trace_path = path.with_suffix(".traces.npz")
    workload.trace_set.save(trace_path)
    np.savez_compressed(
        path,
        indptr=workload.graph.indptr,
        indices=workload.graph.indices,
        entry_point=np.int64(workload.graph.entry_point),
        ground_truth=workload.ground_truth,
        recall=np.float64(workload.recall),
        hot_vertices=(
            workload.hot_vertices
            if workload.hot_vertices is not None
            else np.empty(0, dtype=np.int64)
        ),
    )


def _load_workload(path: Path, dataset: Dataset, algorithm: str) -> Workload:
    with np.load(path) as data:
        graph = ProximityGraph(
            vectors=dataset.vectors,
            indptr=data["indptr"],
            indices=data["indices"],
            metric=dataset.metric,
            entry_point=int(data["entry_point"]),
        )
        ground_truth = data["ground_truth"]
        recall = float(data["recall"])
        hot = data["hot_vertices"]
    trace_set = TraceSet.load(path.with_suffix(".traces.npz"))
    return Workload(
        dataset=dataset,
        algorithm=algorithm,
        graph=graph,
        trace_set=trace_set,
        ground_truth=ground_truth,
        recall=recall,
        hot_vertices=hot if hot.size else None,
    )


# =============================================================================
# Platform runs
# =============================================================================
# Entries pin the workload object alongside the result: the key uses
# id(workload), which the interpreter recycles after GC, so a hit is
# honoured only if the pinned object is identical (and pinning it keeps
# its id from being recycled while the entry lives).
_run_cache: dict[tuple, tuple["Workload", SimResult]] = {}


def run_platform(
    platform: str,
    workload: Workload,
    config: NDSearchConfig | None = None,
    batch: int = DEFAULT_BATCH,
    flags: SchedulingFlags | None = None,
    reorder_mode: str = "ours",
    hard_failure_prob: float = 0.01,
) -> SimResult:
    """Simulate one batch of this workload on one platform.

    Deterministic, so results are memoised per full parameter tuple —
    figure drivers that share cells (e.g. Fig. 13 and Fig. 20) reuse
    each other's simulations within a session.
    """
    config = config or NDSearchConfig.scaled()
    if flags is not None:
        config = config.with_flags(flags)
    cache_key = (
        id(workload),  # repro-lint: disable=DET001 -- workload pinned in the entry
        platform,
        batch,
        config.flags,
        config.geometry,
        config.timing.read_page_s,
        reorder_mode,
        hard_failure_prob,
    )
    cached = _run_cache.get(cache_key)
    if cached is not None and cached[0] is workload:
        return cached[1]
    result = _run_platform_uncached(
        platform, workload, config, batch, reorder_mode, hard_failure_prob
    )
    _run_cache[cache_key] = (workload, result)
    return result


def _run_platform_uncached(
    platform: str,
    workload: Workload,
    config: NDSearchConfig,
    batch: int,
    reorder_mode: str,
    hard_failure_prob: float,
) -> SimResult:
    traces = workload.trace_set.subset(batch).traces
    profile = workload.profile()
    algorithm = workload.algorithm
    hot = None
    if algorithm == "diskann" and workload.hot_vertices is not None:
        # Same hot-vertex cache budget on every platform.
        count = max(
            1, int(config.hot_cache_fraction * workload.graph.num_vertices)
        )
        hot = workload.hot_vertices[:count]

    # The in-storage platforms reuse the workload's cached NDSearch
    # system (reordering + placement are the expensive offline phase);
    # the host baselines need no construction context.
    system = None
    if platform in ("ndsearch", "ds-c", "ds-cp"):
        system = workload.ndsearch(
            config,
            reorder_mode=reorder_mode,
            hard_failure_prob=hard_failure_prob,
        )
    model = platform_registry.get(platform, config, system=system)
    return model.simulate(
        traces,
        profile,
        algorithm=algorithm,
        dataset=profile.name,
        cached_vertices=hot,
    )
