"""Fig. 18: ECC — plane-level BER distribution and latency under
hard-decision decoding failures.

Paper: raw BER distribution over 512 planes around 1e-6; sweeping the
hard-decision LDPC failure probability over {30, 10, 5, 1}% slows
HNSW workloads by 1.23-1.66x in the worst (30%) case, because each
failure invokes the ~10 us soft-decision decoder on the FTL and
pauses the search iteration.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.common import get_workload, run_platform
from repro.flash.ecc import BERModel

FAILURE_PROBS = (0.30, 0.10, 0.05, 0.01)
DATASETS = ("glove-100", "fashion-mnist", "sift-1b", "deep-1b", "spacev-1b")


def collect_ber(n_planes: int = 512) -> dict:
    model = BERModel(n_planes=n_planes)
    counts, edges = model.histogram(bins=10)
    return {"summary": model.summary(), "counts": counts, "edges": edges}


def collect_latency(
    scale: float = 1.0,
    batch: int = 512,
    datasets=DATASETS,
    failure_probs=FAILURE_PROBS,
) -> list[dict]:
    rows = []
    for dataset in datasets:
        workload = get_workload(dataset, "hnsw", scale=scale)
        baseline = run_platform(
            "ndsearch", workload, batch=batch, hard_failure_prob=0.0
        )
        for prob in failure_probs:
            result = run_platform(
                "ndsearch", workload, batch=batch, hard_failure_prob=prob
            )
            rows.append(
                {
                    "dataset": dataset,
                    "failure_prob": prob,
                    "norm_latency": result.sim_time_s / baseline.sim_time_s,
                    "soft_decodes": result.counters["ecc_soft_decodes"],
                }
            )
    return rows


def run(scale: float = 1.0, batch: int = 512, **kwargs) -> str:
    ber = collect_ber()
    s = ber["summary"]
    part_a = format_table(
        ["statistic", "raw BER"],
        [
            ["median", f"{s['median']:.2e}"],
            ["mean", f"{s['mean']:.2e}"],
            ["p95", f"{s['p95']:.2e}"],
            ["max", f"{s['max']:.2e}"],
        ],
        title="Fig. 18a — plane-level raw BER distribution (512 planes)",
    )
    rows = collect_latency(scale=scale, batch=batch, **kwargs)
    part_b = format_table(
        ["dataset", "hard-fail prob", "norm. latency", "soft decodes"],
        [
            [
                r["dataset"],
                f"{100 * r['failure_prob']:.0f}%",
                f"{r['norm_latency']:.2f}x",
                r["soft_decodes"],
            ]
            for r in rows
        ],
        title="Fig. 18b — latency vs failure probability (paper: 1.23-1.66x @30%)",
    )
    return part_a + "\n\n" + part_b
