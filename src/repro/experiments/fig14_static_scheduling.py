"""Fig. 14: static scheduling evaluation.

Paper: comparing no reordering ("w/o re"), random BFS ("ran bfs") and
the degree-ascending BFS ("ours") — all with dynamic scheduling on —
our reordering cuts the page-access ratio by up to 38% and yields up
to 1.17x speedup over the unordered baseline.
"""

from __future__ import annotations

from repro.analysis.locality import page_access_ratio
from repro.analysis.reporting import format_table
from repro.ann.trace import remap_trace
from repro.core.config import NDSearchConfig, SchedulingFlags
from repro.experiments.common import ALGORITHMS, get_workload, run_platform

DATASETS = ("glove-100", "fashion-mnist", "sift-1b", "deep-1b", "spacev-1b")

#: (label, flags, reorder_mode) for the three Fig. 14 settings.
SETTINGS = (
    ("w/o re", SchedulingFlags(False, True, True, True), "none"),
    ("ran bfs", SchedulingFlags(True, True, True, True), "random_bfs"),
    ("ours", SchedulingFlags(True, True, True, True), "ours"),
)


def collect(
    scale: float = 1.0,
    batch: int = 512,
    datasets=DATASETS,
    algorithms=ALGORITHMS,
) -> list[dict]:
    rows = []
    for algorithm in algorithms:
        for dataset in datasets:
            workload = get_workload(dataset, algorithm, scale=scale)
            baseline_qps = None
            for label, flags, mode in SETTINGS:
                config = NDSearchConfig.scaled(flags)
                result = run_platform(
                    "ndsearch", workload, config=config, batch=batch,
                    reorder_mode=mode,
                )
                system = workload.ndsearch(config, reorder_mode=mode)
                traces = workload.trace_set.subset(batch).traces
                ratio = page_access_ratio(
                    [remap_trace(t, system.new_id) for t in traces],
                    system._model.placement,
                )
                if baseline_qps is None:
                    baseline_qps = result.qps
                rows.append(
                    {
                        "algorithm": algorithm,
                        "dataset": dataset,
                        "setting": label,
                        "page_access_ratio": ratio,
                        "speedup_vs_wo_re": result.qps / baseline_qps,
                    }
                )
    return rows


def run(scale: float = 1.0, batch: int = 512, **kwargs) -> str:
    rows = collect(scale=scale, batch=batch, **kwargs)
    table = [
        [
            r["algorithm"],
            r["dataset"],
            r["setting"],
            f"{r['page_access_ratio']:.3f}",
            f"{r['speedup_vs_wo_re']:.3f}x",
        ]
        for r in rows
    ]
    return format_table(
        ["algo", "dataset", "setting", "page access ratio",
         "speedup vs w/o re"],
        table,
        title=(
            "Fig. 14 — static scheduling (paper: ratio -38%, up to 1.17x)"
        ),
    )
