"""Fig. 15: dynamic scheduling evaluation.

Paper: with static scheduling on, comparing no dynamic scheduling
("w/o ds"), dynamic allocating ("da") and dynamic allocating plus
speculative searching ("da+sp"): da cuts page accesses by up to 73%
and yields up to 2.67x speedup; sp *increases* page accesses (over
half of speculated reads go unused) yet adds up to 1.27x more speedup.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.config import NDSearchConfig, SchedulingFlags
from repro.experiments.common import ALGORITHMS, get_workload, run_platform

DATASETS = ("glove-100", "fashion-mnist", "sift-1b", "deep-1b", "spacev-1b")

SETTINGS = (
    ("w/o ds", SchedulingFlags(True, True, False, False)),
    ("da", SchedulingFlags(True, True, True, False)),
    ("da+sp", SchedulingFlags(True, True, True, True)),
)


def collect(
    scale: float = 1.0,
    batch: int = 512,
    datasets=DATASETS,
    algorithms=ALGORITHMS,
) -> list[dict]:
    rows = []
    for algorithm in algorithms:
        for dataset in datasets:
            workload = get_workload(dataset, algorithm, scale=scale)
            base_pages = base_qps = None
            for label, flags in SETTINGS:
                result = run_platform(
                    "ndsearch", workload,
                    config=NDSearchConfig.scaled(flags), batch=batch,
                )
                pages = result.counters["page_reads"]
                if base_pages is None:
                    base_pages, base_qps = pages, result.qps
                rows.append(
                    {
                        "algorithm": algorithm,
                        "dataset": dataset,
                        "setting": label,
                        "page_accesses_norm": pages / base_pages,
                        "speedup_vs_wo_ds": result.qps / base_qps,
                        "speculative_hits": result.counters["speculative_hits"],
                    }
                )
    return rows


def run(scale: float = 1.0, batch: int = 512, **kwargs) -> str:
    rows = collect(scale=scale, batch=batch, **kwargs)
    table = [
        [
            r["algorithm"],
            r["dataset"],
            r["setting"],
            f"{r['page_accesses_norm']:.2f}",
            f"{r['speedup_vs_wo_ds']:.2f}x",
        ]
        for r in rows
    ]
    return format_table(
        ["algo", "dataset", "setting", "norm. page accesses",
         "speedup vs w/o ds"],
        table,
        title=(
            "Fig. 15 — dynamic scheduling (paper: da -73% pages / 2.67x; "
            "sp raises pages, +1.27x)"
        ),
    )
