"""Command-line runner for the experiment drivers.

Regenerate any paper table/figure from the terminal::

    python -m repro.experiments --list
    python -m repro.experiments fig13
    python -m repro.experiments fig16 table1 --scale 0.5

The first invocation builds and caches the workloads (minutes); later
runs replay from ``.expcache/``.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import sys

DRIVERS = {
    "fig01": "repro.experiments.fig01_cpu_breakdown",
    "fig02": "repro.experiments.fig02_pcie_roofline",
    "fig04": "repro.experiments.fig04_access_pattern",
    "fig06": "repro.experiments.fig06_layout_overhead",
    "fig10": "repro.experiments.fig10_reordering_beta",
    "fig13": "repro.experiments.fig13_throughput",
    "fig14": "repro.experiments.fig14_static_scheduling",
    "fig15": "repro.experiments.fig15_dynamic_scheduling",
    "fig16": "repro.experiments.fig16_ablation",
    "fig17": "repro.experiments.fig17_ndsearch_breakdown",
    "fig18": "repro.experiments.fig18_ecc",
    "fig19": "repro.experiments.fig19_batch_size",
    "fig20": "repro.experiments.fig20_energy",
    "fig21": "repro.experiments.fig21_other_algos",
    "table1": "repro.experiments.table1_power_area",
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate NDSEARCH paper tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"one or more of: {', '.join(DRIVERS)} (default: all)",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="dataset scale factor (default 1.0)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, module in DRIVERS.items():
            doc = importlib.import_module(module).__doc__ or ""
            print(f"{name:8s} {doc.strip().splitlines()[0]}")
        return 0

    targets = args.experiments or list(DRIVERS)
    unknown = [t for t in targets if t not in DRIVERS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")
    for name in targets:
        module = importlib.import_module(DRIVERS[name])
        run = module.run
        kwargs = {}
        if "scale" in inspect.signature(run).parameters:
            kwargs["scale"] = args.scale
        print(run(**kwargs))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
