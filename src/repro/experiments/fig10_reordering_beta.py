"""Fig. 10: bandwidth beta of original vs random-BFS vs our reordering.

Paper's 8-vertex example: beta drops from 5.875 (original) through
5.125/3.625 (two random BFS runs) to 4 (ours, deterministic, one run).
We reproduce the example and extend it to the real workload graphs.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.static_scheduling import (
    bandwidth_beta,
    degree_ascending_bfs,
    figure10_example_graph,
    random_bfs,
)
from repro.experiments.common import get_workload


def collect_example(random_runs: int = 4) -> dict:
    graph = figure10_example_graph()
    return {
        "original": bandwidth_beta(graph),
        "random_bfs": [
            bandwidth_beta(graph, random_bfs(graph, seed=s))
            for s in range(random_runs)
        ],
        "ours": bandwidth_beta(graph, degree_ascending_bfs(graph)),
    }


def collect_workloads(scale: float = 1.0, datasets=("glove-100", "sift-1b")):
    rows = []
    for dataset in datasets:
        graph = get_workload(dataset, "hnsw", scale=scale).graph
        rows.append(
            {
                "dataset": dataset,
                "original": bandwidth_beta(graph),
                "random_bfs": bandwidth_beta(graph, random_bfs(graph, seed=0)),
                "ours": bandwidth_beta(graph, degree_ascending_bfs(graph)),
            }
        )
    return rows


def run(scale: float = 1.0) -> str:
    ex = collect_example()
    part_a = format_table(
        ["labeling", "beta"],
        [
            ["original", f"{ex['original']:.3f}"],
            *[
                [f"random BFS (run {i})", f"{b:.3f}"]
                for i, b in enumerate(ex["random_bfs"])
            ],
            ["ours (1 deterministic run)", f"{ex['ours']:.3f}"],
        ],
        title="Fig. 10 — example graph (paper: 5.875 / 5.125 / 3.625 / 4)",
    )
    rows = collect_workloads(scale=scale)
    part_b = format_table(
        ["dataset", "original", "random BFS", "ours"],
        [
            [r["dataset"], f"{r['original']:.0f}", f"{r['random_bfs']:.0f}",
             f"{r['ours']:.0f}"]
            for r in rows
        ],
        title="Fig. 10 (extended) — beta on workload graphs",
    )
    return part_a + "\n\n" + part_b
