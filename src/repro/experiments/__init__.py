"""End-to-end experiment drivers: one module per paper table/figure.

Each driver exposes ``run(...) -> str`` (a formatted table) plus a
structured ``collect(...)`` returning the raw numbers; benchmarks wrap
the drivers, and EXPERIMENTS.md records their output against the
paper's reported values.
"""
