"""Fig. 4: page and LUN access patterns of the search phase.

Paper (motivation): with vertices stored in construction order,
(a) the per-query #accessed-pages / trace-length ratio is high and the
accessed-vectors / page-data ratio is low (scattered, irregular page
accesses); (b) each batch of 2048 queries touches > 82% of all LUNs.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.locality import (
    accessed_vector_fraction,
    lun_coverage,
    page_access_ratio,
)
from repro.analysis.reporting import format_table
from repro.core.config import NDSearchConfig
from repro.core.placement import map_vertices
from repro.experiments.common import get_workload


def collect(
    scale: float = 1.0,
    dataset: str = "sift-1b",
    algorithm: str = "hnsw",
    sampled_queries: int = 10,
    batches: int = 10,
    batch_size: int = 512,
) -> dict:
    workload = get_workload(dataset, algorithm, scale=scale)
    geometry = NDSearchConfig.scaled().geometry
    vector_bytes = workload.dataset.vector_bytes
    # Construction-order placement: exactly the paper's "stored in the
    # order the graph was constructed" setting.
    placement = map_vertices(
        workload.graph.num_vertices, geometry, vector_bytes,
        scheme="interleaved",
    )
    rng = np.random.default_rng(4)
    pool = workload.trace_set.traces
    picks = rng.choice(len(pool), size=sampled_queries, replace=False)
    sampled = [pool[i] for i in picks]
    per_query = [
        {
            "query": int(q),
            "page_access_ratio": page_access_ratio([t], placement),
            "vector_fraction": accessed_vector_fraction(
                [t], placement, vector_bytes
            ),
        }
        for q, t in zip(picks, sampled)
    ]
    coverages = []
    usable = min(batch_size, len(pool) // batches) if batches else batch_size
    for b in range(batches):
        chunk = pool[b * usable : (b + 1) * usable]
        if not chunk:
            break
        coverages.append(lun_coverage(chunk, placement))
    return {
        "per_query": per_query,
        "lun_coverage_per_batch": coverages,
        "mean_page_access_ratio": float(
            np.mean([r["page_access_ratio"] for r in per_query])
        ),
        "mean_vector_fraction": float(
            np.mean([r["vector_fraction"] for r in per_query])
        ),
    }


def run(scale: float = 1.0) -> str:
    data = collect(scale=scale)
    rows = [
        [
            r["query"],
            f"{r['page_access_ratio']:.2f}",
            f"{100 * r['vector_fraction']:.1f}%",
        ]
        for r in data["per_query"]
    ]
    part_a = format_table(
        ["query", "#pages / trace length", "vectors / page data"],
        rows,
        title="Fig. 4a — per-query page access pattern (construction order)",
    )
    cov = data["lun_coverage_per_batch"]
    part_b = format_table(
        ["batch", "LUN coverage"],
        [[i, f"{100 * c:.0f}%"] for i, c in enumerate(cov)],
        title="Fig. 4b — LUNs touched per batch (paper: > 82%)",
    )
    return part_a + "\n\n" + part_b
