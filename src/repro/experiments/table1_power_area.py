"""Table I: power and area breakdown of SearSSD.

Paper: 18.82 W / 43.09 mm^2 of customized logic at 32 nm; +7.5 W for
the FPGA bitonic kernel = 26.32 W total, inside the ~55 W PCIe power
budget; 82%/87% smaller than DS-cp/DS-c; storage density drops from
6 to 5.64 Gb/mm^2 (~6%).
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.sim.area import (
    AreaModel,
    DS_C_AREA_MM2,
    DS_CP_AREA_MM2,
    SEARSSD_AREA_TABLE,
)
from repro.sim.energy import (
    FPGA_SORT_POWER_W,
    NDSEARCH_TOTAL_POWER_W,
    PCIE_POWER_BUDGET_W,
    SEARSSD_LOGIC_POWER_W,
    SEARSSD_TABLE_I,
)


def collect() -> dict:
    area = AreaModel()
    area_by_name = {c.name: c.area_mm2 for c in SEARSSD_AREA_TABLE}
    rows = [
        {
            "component": c.name,
            "config": c.config,
            "count": c.count,
            "power_w": c.power_w,
            "area_mm2": area_by_name[c.name],
        }
        for c in SEARSSD_TABLE_I
    ]
    return {
        "rows": rows,
        "logic_power_w": SEARSSD_LOGIC_POWER_W,
        "fpga_power_w": FPGA_SORT_POWER_W,
        "total_power_w": NDSEARCH_TOTAL_POWER_W,
        "power_budget_w": PCIE_POWER_BUDGET_W,
        "total_area_mm2": area.total_area_mm2,
        "saving_vs_ds_cp": area.area_saving_vs(DS_CP_AREA_MM2),
        "saving_vs_ds_c": area.area_saving_vs(DS_C_AREA_MM2),
        "storage_density": area.storage_density_gb_per_mm2(512.0),
        "density_degradation": area.density_degradation(512.0),
    }


def run() -> str:
    data = collect()
    table = [
        [r["component"], r["config"], r["count"], r["power_w"], r["area_mm2"]]
        for r in data["rows"]
    ]
    table.append(["overall (logic)", "-", "-", data["logic_power_w"],
                  data["total_area_mm2"]])
    main = format_table(
        ["component", "config", "num", "power (W)", "area (mm^2)"],
        table,
        title="Table I — power and area breakdown of SearSSD",
    )
    summary = format_table(
        ["metric", "value", "paper"],
        [
            ["total power incl. FPGA", f"{data['total_power_w']:.2f} W", "26.32 W"],
            ["PCIe power budget", f"{data['power_budget_w']:.0f} W", "~55 W"],
            ["area vs DS-cp", f"-{100 * data['saving_vs_ds_cp']:.0f}%", "-82%"],
            ["area vs DS-c", f"-{100 * data['saving_vs_ds_c']:.0f}%", "-87%"],
            [
                "storage density",
                f"{data['storage_density']:.2f} Gb/mm^2",
                "5.64 Gb/mm^2",
            ],
            [
                "density degradation",
                f"{100 * data['density_degradation']:.1f}%",
                "~6%",
            ],
        ],
        title="Section VII-B summary",
    )
    return main + "\n\n" + summary
