"""Fig. 17: execution-time breakdown of NDSearch itself.

Paper: NAND read is the largest share (24-38%); SSD I/O (host PCIe)
shrinks from ~70% on the CPU+SSD system to ~6%; the bitonic kernel on
the FPGA stays <= 12%; DRAM access plus embedded-core execution takes
20-35%; DiskANN shows more DRAM/core time but fewer NAND reads than
HNSW thanks to the internal hot-vertex cache.
"""

from __future__ import annotations

from repro.analysis.breakdown import ndsearch_breakdown
from repro.analysis.reporting import format_table
from repro.experiments.common import ALGORITHMS, get_workload, run_platform

DATASETS = ("glove-100", "fashion-mnist", "sift-1b", "deep-1b", "spacev-1b")

COLUMNS = (
    "nand_read",
    "channel_bus",
    "dram_access",
    "embedded_cores",
    "allocating",
    "bitonic_fpga",
    "ssd_io_read",
)


def collect(
    scale: float = 1.0,
    batch: int = 512,
    datasets=DATASETS,
    algorithms=ALGORITHMS,
) -> list[dict]:
    rows = []
    for algorithm in algorithms:
        for dataset in datasets:
            workload = get_workload(dataset, algorithm, scale=scale)
            result = run_platform("ndsearch", workload, batch=batch)
            frac = ndsearch_breakdown(result)
            rows.append(
                {"algorithm": algorithm, "dataset": dataset, **frac}
            )
    return rows


def run(scale: float = 1.0, batch: int = 512, **kwargs) -> str:
    rows = collect(scale=scale, batch=batch, **kwargs)
    table = [
        [r["algorithm"], r["dataset"]]
        + [f"{100 * r[c]:.0f}%" for c in COLUMNS]
        for r in rows
    ]
    return format_table(
        ["algo", "dataset", *COLUMNS],
        table,
        title=(
            "Fig. 17 — NDSearch time breakdown "
            "(paper: NAND 24-38%, I/O ~6%, bitonic <= 12%)"
        ),
    )
