"""Fig. 19: NDSearch speedup over DS-cp across batch sizes.

Paper: at batch 256 the advantage over DS-cp is marginal (LUN-level
parallelism starved); it grows with batch size, peaks around 2048-4096,
and declines once the batch exceeds the query-queue capacity
(256 LUNs x 16 = 4096) and must split into sub-batches.  The scaled
system's capacity is 64 x 16 = 1024, so the roll-off appears at 2048.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.common import get_workload, run_platform

BATCHES = (64, 128, 256, 512, 1024, 2048)
DATASETS = ("sift-1b", "deep-1b", "spacev-1b")


def collect(
    scale: float = 1.0,
    batches=BATCHES,
    datasets=DATASETS,
    algorithm: str = "hnsw",
) -> list[dict]:
    rows = []
    for dataset in datasets:
        workload = get_workload(dataset, algorithm, scale=scale)
        for batch in batches:
            nd = run_platform("ndsearch", workload, batch=batch)
            dscp = run_platform("ds-cp", workload, batch=batch)
            rows.append(
                {
                    "dataset": dataset,
                    "batch": batch,
                    "speedup_vs_dscp": nd.speedup_over(dscp),
                    "nd_qps": nd.qps,
                    "sub_batches": -(-batch // 1024),
                }
            )
    return rows


def run(scale: float = 1.0, **kwargs) -> str:
    rows = collect(scale=scale, **kwargs)
    table = [
        [
            r["dataset"],
            r["batch"],
            f"{r['speedup_vs_dscp']:.2f}x",
            f"{r['nd_qps'] / 1e3:.1f}K",
        ]
        for r in rows
    ]
    return format_table(
        ["dataset", "batch", "NDSearch vs DS-cp", "NDSearch QPS"],
        table,
        title=(
            "Fig. 19 — speedup over DS-cp vs batch size "
            "(peaks before the sub-batch split)"
        ),
    )
