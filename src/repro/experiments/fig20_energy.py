"""Fig. 20: energy efficiency (QPS/W) across platforms.

Paper: NDSearch reaches up to 178.68x / 120.87x / 30.06x / 3.48x
higher QPS/W than CPU / GPU / SmartSSD-only / DS-cp — two orders of
magnitude over CPU and GPU — because it moves the least data (in-LUN
computing ships only scalar distances) at the lowest platform power
(26.32 W total vs. a ~55 W PCIe budget).
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.common import (
    ALGORITHMS,
    PLATFORMS,
    get_workload,
    run_platform,
)

DATASETS = ("glove-100", "fashion-mnist", "sift-1b", "deep-1b", "spacev-1b")


def collect(
    scale: float = 1.0,
    batch: int = 512,
    datasets=DATASETS,
    algorithms=ALGORITHMS,
) -> list[dict]:
    rows = []
    for algorithm in algorithms:
        for dataset in datasets:
            workload = get_workload(dataset, algorithm, scale=scale)
            per_platform = {}
            for platform in PLATFORMS:
                result = run_platform(platform, workload, batch=batch)
                per_platform[platform] = result.qps_per_watt
            for platform, qpw in per_platform.items():
                rows.append(
                    {
                        "algorithm": algorithm,
                        "dataset": dataset,
                        "platform": platform,
                        "qps_per_watt": qpw,
                        "ndsearch_advantage": (
                            per_platform["ndsearch"] / qpw if qpw else 0.0
                        ),
                    }
                )
    return rows


def run(scale: float = 1.0, batch: int = 512, **kwargs) -> str:
    rows = collect(scale=scale, batch=batch, **kwargs)
    table = [
        [
            r["algorithm"],
            r["dataset"],
            r["platform"],
            f"{r['qps_per_watt']:.1f}",
            f"{r['ndsearch_advantage']:.1f}x",
        ]
        for r in rows
    ]
    return format_table(
        ["algo", "dataset", "platform", "QPS/W", "NDSearch advantage"],
        table,
        title=(
            "Fig. 20 — energy efficiency "
            "(paper: up to 178.7x CPU / 120.9x GPU / 30.1x SmartSSD / 3.5x DS-cp)"
        ),
    )
