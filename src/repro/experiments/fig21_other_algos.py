"""Fig. 21: HCNNG and TOGG on sift-1b across platforms (Section VIII).

Paper: even on the more directional emerging algorithms, NDSearch
still wins — irregular, frequent data access continues to dominate.
CPU-T (terabyte DRAM) accelerates the CPU (paper: up to 5.3x) but
cannot match the in-storage designs: DRAM lacks the in-memory logic to
exploit locality and the CPU lacks the parallelism of 256 LUN
accelerators.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments.common import get_workload, run_platform

PLATFORMS_FIG21 = ("cpu", "cpu-t", "smartssd", "ds-cp", "ndsearch")


def collect(
    scale: float = 1.0,
    batch: int = 512,
    dataset: str = "sift-1b",
    algorithms=("hcnng", "togg"),
) -> list[dict]:
    rows = []
    for algorithm in algorithms:
        workload = get_workload(dataset, algorithm, scale=scale)
        cpu = None
        for platform in PLATFORMS_FIG21:
            result = run_platform(platform, workload, batch=batch)
            if platform == "cpu":
                cpu = result
            rows.append(
                {
                    "algorithm": algorithm,
                    "platform": platform,
                    "qps": result.qps,
                    "speedup_vs_cpu": result.speedup_over(cpu),
                }
            )
    return rows


def run(scale: float = 1.0, batch: int = 512, **kwargs) -> str:
    rows = collect(scale=scale, batch=batch, **kwargs)
    table = [
        [
            r["algorithm"],
            r["platform"],
            f"{r['qps'] / 1e3:.2f}K",
            f"{r['speedup_vs_cpu']:.2f}x",
        ]
        for r in rows
    ]
    return format_table(
        ["algo", "platform", "QPS", "speedup vs CPU"],
        table,
        title=(
            "Fig. 21 — HCNNG / TOGG on sift-1b "
            "(paper: NDSearch still wins; CPU-T < in-storage designs)"
        ),
    )
