"""Fig. 6: storage overhead of the padded slice layout in NDP settings.

Paper example: 128 B vector + 32 x 4 B neighbor IDs = 256 B slices,
16 per 4 KB page; only one slice's neighbor IDs are relevant per
fetched page, so >= 46.9% of every page fetch is dead weight.  LUNCSR
(CSR with placement arrays) separates vectors from adjacency and
avoids it.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.config import NDSearchConfig
from repro.core.luncsr import padded_layout_waste, padding_overhead
from repro.experiments.common import get_workload


def paper_example() -> float:
    """The literal Fig. 6 configuration (46.9%)."""
    return padded_layout_waste(
        dim=32, vector_itemsize=4, max_neighbors=32, page_size=4096
    )


def collect(scale: float = 1.0, max_neighbors: int = 32) -> list[dict]:
    page_size = NDSearchConfig.scaled().geometry.page_size
    rows = [
        {
            "config": "paper example (128B vec, R=32, 4KB page)",
            "id_waste": paper_example(),
            "padding_waste": None,
            "csr_saving": None,
        }
    ]
    for dataset in ("glove-100", "fashion-mnist", "sift-1b", "deep-1b",
                    "spacev-1b"):
        workload = get_workload(dataset, "hnsw", scale=scale)
        graph = workload.graph
        waste = padded_layout_waste(
            graph.dim, 4, max_neighbors, page_size
        )
        pad = padding_overhead(graph.dim, 4, max_neighbors, graph.mean_degree)
        padded = graph.padded_layout_bytes(max_neighbors)
        csr = graph.csr_layout_bytes()
        rows.append(
            {
                "config": dataset,
                "id_waste": waste,
                "padding_waste": pad,
                "csr_saving": 1.0 - csr / padded,
            }
        )
    return rows


def run(scale: float = 1.0) -> str:
    rows = collect(scale=scale)
    table = []
    for r in rows:
        table.append(
            [
                r["config"],
                f"{100 * r['id_waste']:.1f}%",
                "-" if r["padding_waste"] is None else f"{100 * r['padding_waste']:.1f}%",
                "-" if r["csr_saving"] is None else f"{100 * r['csr_saving']:.1f}%",
            ]
        )
    return format_table(
        ["configuration", "irrelevant-ID page waste", "zero padding",
         "CSR footprint saving"],
        table,
        title="Fig. 6 — slice-layout overhead (paper: >= 46.9% waste)",
    )
