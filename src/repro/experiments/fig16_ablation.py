"""Fig. 16: ablation of all proposed techniques on spacev-1b.

Paper: Bare NDSearch (no reorder / multi-plane mapping / dynamic
allocating / speculation) still beats the CPU by over 4x; without
dynamic allocating NDSearch can hardly beat DS-cp; the full stack adds
another 4.1x over Bare.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.config import NDSearchConfig, SchedulingFlags
from repro.experiments.common import get_workload, run_platform

STEPS = (
    ("Bare", SchedulingFlags.bare()),
    ("re", SchedulingFlags(True, False, False, False)),
    ("re+mp", SchedulingFlags(True, True, False, False)),
    ("re+mp+da", SchedulingFlags(True, True, True, False)),
    ("re+mp+da+sp", SchedulingFlags(True, True, True, True)),
)


def collect(
    scale: float = 1.0,
    batch: int = 512,
    dataset: str = "spacev-1b",
    algorithm: str = "hnsw",
) -> list[dict]:
    workload = get_workload(dataset, algorithm, scale=scale)
    rows = []
    cpu = run_platform("cpu", workload, batch=batch)
    rows.append(
        {"setting": "CPU", "qps": cpu.qps, "speedup_vs_cpu": 1.0}
    )
    gpu = run_platform("gpu", workload, batch=batch)
    rows.append(
        {"setting": "GPU", "qps": gpu.qps,
         "speedup_vs_cpu": gpu.speedup_over(cpu)}
    )
    dscp = run_platform("ds-cp", workload, batch=batch)
    rows.append(
        {"setting": "DS-cp", "qps": dscp.qps,
         "speedup_vs_cpu": dscp.speedup_over(cpu)}
    )
    for label, flags in STEPS:
        reorder_mode = "ours" if flags.reorder else "none"
        result = run_platform(
            "ndsearch", workload, config=NDSearchConfig.scaled(flags),
            batch=batch, reorder_mode=reorder_mode,
        )
        rows.append(
            {
                "setting": label,
                "qps": result.qps,
                "speedup_vs_cpu": result.speedup_over(cpu),
            }
        )
    return rows


def run(scale: float = 1.0, batch: int = 512, **kwargs) -> str:
    rows = collect(scale=scale, batch=batch, **kwargs)
    bare = next(r for r in rows if r["setting"] == "Bare")
    table = [
        [
            r["setting"],
            f"{r['qps'] / 1e3:.2f}K",
            f"{r['speedup_vs_cpu']:.2f}x",
            f"{r['qps'] / bare['qps']:.2f}x",
        ]
        for r in rows
    ]
    return format_table(
        ["setting", "QPS", "vs CPU", "vs Bare"],
        table,
        title=(
            "Fig. 16 — ablation on spacev-1b (paper: full stack = 4.1x Bare; "
            "w/o da barely beats DS-cp)"
        ),
    )
