"""Fig. 2: (a) PCIe utilisation vs batch size; (b) roofline lift.

Paper: utilisation saturates to ~83% past batch 1024; the internal
bandwidth ceiling (819.2 GB/s) sits ~53x above the PCIe ceiling
(15.4 GB/s), bounding NDSearch's speedup from above.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.analysis.roofline import roofline_model
from repro.core.config import NDSearchConfig
from repro.experiments.common import get_workload, run_platform


def collect_utilization(batch_sizes=(64, 128, 256, 512, 1024, 2048, 4096, 8192)):
    host = NDSearchConfig.scaled().host
    return [
        {"batch": b, "utilization": host.pcie_utilization(b)}
        for b in batch_sizes
    ]


def collect_roofline(scale: float = 1.0, batch: int = 512) -> list[dict]:
    paper_cfg = NDSearchConfig.paper()
    scaled_cfg = NDSearchConfig.scaled()
    rows = []
    for dataset in ("glove-100", "sift-1b", "deep-1b", "spacev-1b"):
        workload = get_workload(dataset, "hnsw", scale=scale)
        point = roofline_model(paper_cfg, workload.dataset.dim, label=dataset)
        cpu = run_platform("cpu", workload, batch=batch)
        nd = run_platform("ndsearch", workload, batch=batch)
        rows.append(
            {
                "dataset": dataset,
                "oi_flops_per_byte": point.operational_intensity,
                "paper_scale_lift": point.lift,
                "scaled_lift": scaled_cfg.internal_bandwidth
                / scaled_cfg.timing.pcie_host_bw,
                "measured_speedup_vs_cpu": nd.speedup_over(cpu),
            }
        )
    return rows


def run(scale: float = 1.0) -> str:
    util = collect_utilization()
    part_a = format_table(
        ["batch", "PCIe utilization"],
        [[r["batch"], f"{100 * r['utilization']:.0f}%"] for r in util],
        title="Fig. 2a — PCIe bandwidth utilisation (saturates ~83%)",
    )
    roof = collect_roofline(scale=scale)
    part_b = format_table(
        ["dataset", "OI (FLOP/B)", "lift (paper cfg)", "lift (scaled)",
         "measured NDSearch/CPU"],
        [
            [
                r["dataset"],
                r["oi_flops_per_byte"],
                f"{r['paper_scale_lift']:.1f}x",
                f"{r['scaled_lift']:.1f}x",
                f"{r['measured_speedup_vs_cpu']:.2f}x",
            ]
            for r in roof
        ],
        title="Fig. 2b — roofline lift vs measured speedup (speedup < lift)",
    )
    return part_a + "\n\n" + part_b
