"""Allocator: query dispatch and address generation (Sec. IV-C3, Fig. 7b).

The Dispatcher gathers neighbors sharing a LUN ID — together with the
querying queries — into the same horizontal partition of the Alloc
Buffer.  The Alloc CTR then produces each neighbor's final *physical*
address directly from the LUNCSR LUN/BLK arrays (page and column
addresses are inferred from the logical vertex index), bypassing FTL
software translation entirely, and pushes (query, address) work to the
per-LUN accelerators through the Flash CTRs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.core.luncsr import LUNCSR
from repro.core.vgenerator import NbrBufferEntry
from repro.flash.geometry import PhysicalAddress
from repro.sim.stats import Counters


@dataclass
class LunDispatch:
    """One Alloc-Buffer partition: the work bound for one LUN."""

    lun: int
    query_ids: list[int] = field(default_factory=list)
    vertex_ids: list[int] = field(default_factory=list)
    addresses: list[PhysicalAddress] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.vertex_ids)

    def queries(self) -> set[int]:
        return set(self.query_ids)


@dataclass
class Allocator:
    """Functional model of the Allocator."""

    luncsr: LUNCSR
    buffer_bytes: int = 6 * 1024**2
    counters: Counters = field(default_factory=Counters)

    def dispatch(self, nbr_entries: list[NbrBufferEntry]) -> dict[int, LunDispatch]:
        """Batch-wise dynamic allocating: group work by LUN.

        Returns the Alloc Buffer contents: one :class:`LunDispatch`
        per LUN touched this iteration (Fig. 7b's horizontal
        partitions).
        """
        partitions: dict[int, LunDispatch] = {}
        for entry in nbr_entries:
            for vertex, lun in zip(entry.neighbor_ids, entry.lun_ids):
                vertex, lun = int(vertex), int(lun)
                part = partitions.get(lun)
                if part is None:
                    part = LunDispatch(lun=lun)
                    partitions[lun] = part
                part.query_ids.append(entry.query_id)
                part.vertex_ids.append(vertex)
                part.addresses.append(self.generate_address(vertex))
                self.counters["alloc_dispatches"] += 1
        return partitions

    def generate_address(self, vertex: int) -> PhysicalAddress:
        """Alloc CTR address inference (no FTL translation call).

        LUN and physical block come from the LUNCSR LUN/BLK arrays
        (kept current by the FTL's refresh mirror); plane, page and
        column are inferred from the logical vertex index.
        """
        self.counters["address_generations"] += 1
        return self.luncsr.physical_address(vertex)

    def dispatch_sequential(
        self, nbr_entries: list[NbrBufferEntry]
    ) -> list[LunDispatch]:
        """The 'w/o ds' baseline: one dispatch per query, in order.

        Queries are sent to LUNs sequentially by the addresses of their
        targeted vertices; no cross-query grouping, so page-buffer
        reuse between queries is lost.
        """
        dispatches: list[LunDispatch] = []
        for entry in nbr_entries:
            by_lun: dict[int, LunDispatch] = {}
            for vertex, lun in zip(entry.neighbor_ids, entry.lun_ids):
                vertex, lun = int(vertex), int(lun)
                part = by_lun.get(lun)
                if part is None:
                    part = LunDispatch(lun=lun)
                    by_lun[lun] = part
                part.query_ids.append(entry.query_id)
                part.vertex_ids.append(vertex)
                part.addresses.append(self.generate_address(vertex))
                self.counters["alloc_dispatches"] += 1
            dispatches.extend(by_lun.values())
        return dispatches
