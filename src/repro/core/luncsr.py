"""LUNCSR: the paper's NDP-aware graph format (Section IV-B, Fig. 5b).

LUNCSR extends CSR (offset + neighbor + vertex arrays) with two
placement arrays:

* **LUN array** — physical LUN of each vertex's feature vector;
* **BLK array** — the vertex's physical block within its LUN (we track
  the plane alongside, since block-level refresh happens within a
  plane).

Both are indexed by vertex ID (or neighbor ID) and are *updated by the
FTL* whenever block-level refreshing relocates a block — LUNCSR plays
the role of the FTL mapping table, so no additional memory is needed
versus a standard SSD.  After the arrays are up to date, the Allocator
generates final physical addresses by pure inference from the logical
vertex index (page/column are refresh-invariant), with no FTL call.

The module also quantifies the paper's Fig. 6 argument: the padded
vector+neighbor-ID slice layout used by HNSW/DiskANN wastes >= 46.9%
of fetched page bytes in NDP settings, while CSR separates vectors
from adjacency so a page fetch returns only potentially useful data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ann.graph import ProximityGraph
from repro.core.placement import VertexPlacement
from repro.flash.ftl import FlashTranslationLayer, RefreshEvent
from repro.flash.geometry import PhysicalAddress


@dataclass
class LUNCSR:
    """The five LUNCSR arrays plus refresh-tracking state."""

    offset: np.ndarray
    """CSR offsets (length n+1)."""

    neighbor: np.ndarray
    """Flattened neighbor IDs."""

    lun: np.ndarray
    """LUN array: physical LUN per vertex."""

    blk: np.ndarray
    """BLK array: *physical* block within the plane, per vertex."""

    plane: np.ndarray
    """Plane of each vertex (refresh is plane-local)."""

    page: np.ndarray
    """Page within block (refresh-invariant, inferred from vertex ID)."""

    slot: np.ndarray
    """Slot within page (refresh-invariant)."""

    vector_bytes: int
    refresh_updates: int = 0
    _by_location: dict = field(default_factory=dict, repr=False)

    # ---- construction ------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: ProximityGraph,
        placement: VertexPlacement,
        vector_bytes: int,
    ) -> "LUNCSR":
        """Assemble LUNCSR from a (reordered) graph and its placement."""
        if placement.num_vertices != graph.num_vertices:
            raise ValueError("placement does not cover the graph")
        luncsr = cls(
            offset=graph.indptr.copy(),
            neighbor=graph.indices.copy(),
            lun=placement.lun.copy(),
            blk=placement.block.copy(),
            plane=placement.plane.copy(),
            page=placement.page.copy(),
            slot=placement.slot.copy(),
            vector_bytes=vector_bytes,
        )
        luncsr._index_locations()
        return luncsr

    def _index_locations(self) -> None:
        """Group vertex IDs by (lun, plane, logical block) for refresh."""
        self._by_location = {}
        keys = list(zip(self.lun.tolist(), self.plane.tolist(), self.blk.tolist()))
        for v, key in enumerate(keys):
            self._by_location.setdefault(key, []).append(v)

    # ---- the Fig. 5(b) indexing trace ------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.offset.shape[0] - 1

    def neighbors_of(self, vertex: int) -> np.ndarray:
        """Neighbor IDs via the offset array (Fig. 5b arrows, step 1)."""
        return self.neighbor[self.offset[vertex] : self.offset[vertex + 1]]

    def lun_of(self, vertex: int) -> int:
        return int(self.lun[vertex])

    def physical_address(self, vertex: int) -> PhysicalAddress:
        """Final physical address, inferred without FTL translation."""
        return PhysicalAddress(
            lun=int(self.lun[vertex]),
            plane=int(self.plane[vertex]),
            block=int(self.blk[vertex]),
            page=int(self.page[vertex]),
            byte=int(self.slot[vertex]) * self.vector_bytes,
        )

    def neighbor_placements(
        self, vertex: int
    ) -> tuple[np.ndarray, np.ndarray, list[PhysicalAddress]]:
        """The full Vgenerator/Allocator lookup for one entry vertex:
        (neighbor IDs, their LUN IDs, their physical addresses)."""
        neigh = self.neighbors_of(vertex)
        luns = self.lun[neigh]
        addresses = [self.physical_address(int(u)) for u in neigh]
        return neigh, luns, addresses

    # ---- FTL refresh mirror (Section II-B2) ------------------------------------------
    def attach_to_ftl(self, ftl: FlashTranslationLayer) -> None:
        """Subscribe to FTL refresh events to keep BLK entries current."""
        ftl.subscribe(self.on_refresh)

    def on_refresh(self, event: RefreshEvent) -> None:
        """Mirror one block relocation into the BLK array."""
        key = (event.lun, event.plane, event.old_block)
        vertices = self._by_location.pop(key, [])
        if vertices:
            self.blk[np.asarray(vertices, dtype=np.int64)] = event.new_block
            self._by_location[(event.lun, event.plane, event.new_block)] = vertices
        self.refresh_updates += 1

    # ---- footprint accounting -----------------------------------------------------------
    def index_bytes(self) -> int:
        """DRAM footprint of the LUNCSR arrays (excluding vectors)."""
        return (
            self.offset.nbytes
            + self.neighbor.nbytes
            + self.lun.nbytes
            + self.blk.nbytes
            + self.plane.nbytes
            + self.page.nbytes
            + self.slot.nbytes
        )


def padded_layout_waste(
    dim: int,
    vector_itemsize: int,
    max_neighbors: int,
    page_size: int,
    id_bytes: int = 4,
) -> float:
    """Irrelevant-neighbor-ID waste of the slice layout (Fig. 6).

    Under the HNSW/DiskANN layout each vertex occupies a slice of
    ``dim * itemsize + R * id_bytes`` bytes and a page holds several
    slices.  During search, only the neighbor IDs of the *one* closest
    vertex in the page are needed for the next iteration; every other
    slice's ID list is fetched for nothing.  At the paper's example
    sizes (128 B vector + 32 x 4 B IDs, 4 KB page, 16 slices) that is
    (16-1) x 128 B / 4096 B = 46.9% of the page — the paper's "at
    least 46.9% storage overhead".
    """
    slice_bytes = dim * vector_itemsize + max_neighbors * id_bytes
    slices_per_page = page_size // slice_bytes
    if slices_per_page < 1:
        raise ValueError("slice larger than a page")
    wasted_ids = (slices_per_page - 1) * max_neighbors * id_bytes
    return wasted_ids / page_size


def padding_overhead(
    dim: int, vector_itemsize: int, max_neighbors: int, mean_degree: float,
    id_bytes: int = 4,
) -> float:
    """Zero-padding waste of the slice layout versus CSR.

    The slice layout pads every vertex's neighbor list to R entries;
    CSR stores exactly ``mean_degree`` entries per vertex.  Returns the
    fraction of the slice spent on padding zeros.
    """
    if not 0 <= mean_degree <= max_neighbors:
        raise ValueError("mean_degree must be within [0, max_neighbors]")
    slice_bytes = dim * vector_itemsize + max_neighbors * id_bytes
    pad_bytes = (max_neighbors - mean_degree) * id_bytes
    return pad_bytes / slice_bytes
