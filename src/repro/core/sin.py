"""SiN: Search-in-NAND engines with LUN-level accelerators (Sec. IV-C4).

One SiN engine contains two LUN-level accelerators; each accelerator
has a query queue, a Vaddr queue, an Acc CTR that issues multi-plane
reads, one MAC group per plane (2 MACs each) behind the plane's
hard-decision LDPC decoder, and an output buffer holding computed
distances for readout over the channel bus.

This functional model *really* computes: the vertex bytes are read out
of the simulated plane page buffers, decoded back to float32 and fed
to the distance kernel — so a search executed through SiN produces
bit-identical results to the host-side search, which the integration
tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ann.distance import DistanceMetric, distances_to_query
from repro.flash.commands import (
    DistanceType,
    SearchPage,
    validate_multi_plane_group,
)
from repro.flash.geometry import PhysicalAddress, SSDGeometry
from repro.flash.nand import Lun
from repro.sim.stats import Counters

_METRIC_FOR_CODE = {
    DistanceType.EUCLIDEAN: DistanceMetric.EUCLIDEAN,
    DistanceType.ANGULAR: DistanceMetric.ANGULAR,
    DistanceType.INNER_PRODUCT: DistanceMetric.INNER_PRODUCT,
}


@dataclass
class DistanceResult:
    """One output-buffer entry: a computed (query, vertex) distance."""

    query_id: int
    vertex_id: int
    distance: float


@dataclass
class LunAccelerator:
    """One LUN-level accelerator: queues, MAC groups, output buffer."""

    lun: Lun
    geometry: SSDGeometry
    dim: int
    query_queue_capacity: int = 64
    counters: Counters = field(default_factory=Counters)
    output_buffer: list[DistanceResult] = field(default_factory=list)

    def execute_search_page(
        self,
        command: SearchPage,
        query_id: int,
        vertex_id: int,
        query_vector: np.ndarray,
    ) -> DistanceResult:
        """Execute one ``<SearchPage>``: sense, decode, MAC, buffer."""
        metric = _METRIC_FOR_CODE[command.distance]
        vector = self._read_vector(command.address)
        dist = float(distances_to_query(vector[None, :], query_vector, metric)[0])
        self.counters["distance_computations"] += 1
        self.counters["mac_ops"] += self.dim
        result = DistanceResult(query_id=query_id, vertex_id=vertex_id, distance=dist)
        self.output_buffer.append(result)
        return result

    def execute_multi_plane(
        self,
        commands: list[SearchPage],
        work: list[tuple[int, int, np.ndarray]],
    ) -> list[DistanceResult]:
        """Multi-plane variant: validate the group, sense all planes in
        one operation, then run the per-plane MAC groups in parallel."""
        validate_multi_plane_group([c.address for c in commands])
        self.counters["multiplane_ops"] += 1
        return [
            self.execute_search_page(cmd, qid, vid, qvec)
            for cmd, (qid, vid, qvec) in zip(commands, work)
        ]

    def _read_vector(self, address: PhysicalAddress) -> np.ndarray:
        """Sense the page (buffer-aware) and extract the vector bytes."""
        plane = self.lun.planes[address.plane]
        hit = plane.load_page(address.block, address.page)
        if hit:
            self.counters["page_buffer_hits"] += 1
        else:
            self.counters["page_reads"] += 1
        raw = plane.read_buffer(address.byte, self.dim * 4)
        return raw.view(np.float32).copy()

    def drain_output(self) -> list[DistanceResult]:
        """Read the output buffer over the channel bus and clear it."""
        out = self.output_buffer
        self.counters["output_drained"] += len(out)
        self.output_buffer = []
        return out


@dataclass
class SiNEngine:
    """One SiN: the two LUN accelerators of a flash chip pairing."""

    accelerators: list[LunAccelerator]

    def accelerator_for(self, global_lun: int) -> LunAccelerator:
        for acc in self.accelerators:
            if acc.lun.lun_index == global_lun:
                return acc
        raise KeyError(f"LUN {global_lun} not in this SiN")

    @property
    def counters(self) -> Counters:
        total = Counters()
        for acc in self.accelerators:
            total.update(acc.counters)
        return total
