"""SearSSD: the modified SSD device and its timing simulator.

Two layers:

* :class:`SearSSDDevice` — the *functional* device: a real
  :class:`repro.flash.ssd.SSD` with the graph's feature vectors
  programmed into NAND pages per the placement, LUNCSR built and
  mirrored to the FTL, one LUN-level accelerator per LUN, plus the
  Vgenerator, Allocator and FPGA sorter.  Used by the processing model
  (Algorithm 1) to compute real search results through the hardware
  path.

* :class:`SearSSDModel` — the *timing* simulator: a trace-driven,
  round-based replay in the style of the paper's SSD-Sim-based
  in-house simulator.  Each round advances every active query by one
  search iteration; page senses, multi-plane merges, channel-bus
  readouts, controller work, ECC faults and speculative prefetches are
  booked per component, and the round's critical path accumulates into
  the batch makespan.
"""

from __future__ import annotations

import numpy as np

from repro.ann.graph import ProximityGraph
from repro.ann.trace import SearchTrace
from repro.core.allocator import Allocator
from repro.core.config import NDSearchConfig
from repro.core.luncsr import LUNCSR
from repro.core.placement import VertexPlacement, map_vertices
from repro.core.sin import LunAccelerator, SiNEngine
from repro.core.vgenerator import Vgenerator
from repro.flash.ecc import LDPCModel
from repro.flash.geometry import PhysicalAddress
from repro.flash.ssd import SSD
from repro.sim.stats import Counters, PhaseSegment, SimResult
from repro.sorting.fpga import FPGASorter


# =============================================================================
# Functional device
# =============================================================================
class SearSSDDevice:
    """A fully assembled, functional SearSSD holding one graph."""

    def __init__(self, graph: ProximityGraph, config: NDSearchConfig) -> None:
        self.config = config
        self.graph = graph
        self.ssd = SSD(geometry=config.geometry, timing=config.timing)
        self.vector_bytes = graph.dim * graph.vectors.itemsize
        scheme = "multiplane" if config.flags.multiplane else "interleaved"
        self.placement = map_vertices(
            graph.num_vertices, config.geometry, self.vector_bytes, scheme=scheme
        )
        self._program_vectors()
        self.luncsr = LUNCSR.build(graph, self.placement, self.vector_bytes)
        self.luncsr.attach_to_ftl(self.ssd.ftl)
        self.vgenerator = Vgenerator(self.luncsr, config.vgen_buffer_bytes)
        self.allocator = Allocator(self.luncsr, config.alloc_buffer_bytes)
        self.fpga = FPGASorter(timing=config.timing)
        self._accelerators: dict[int, LunAccelerator] = {}
        self.sin_engines: list[SiNEngine] = []
        self._build_sins()

    def _program_vectors(self) -> None:
        """Write every vertex's vector bytes into its flash page slot."""
        placement, geometry = self.placement, self.config.geometry
        page_bytes: dict[tuple[int, int, int, int], np.ndarray] = {}
        for v in range(self.graph.num_vertices):
            key = placement.page_key(v)
            buf = page_bytes.get(key)
            if buf is None:
                buf = np.zeros(geometry.page_size, dtype=np.uint8)
                page_bytes[key] = buf
            start = int(placement.slot[v]) * self.vector_bytes
            buf[start : start + self.vector_bytes] = np.frombuffer(
                self.graph.vectors[v].tobytes(), dtype=np.uint8
            )
        for (lun, plane, block, page), buf in page_bytes.items():
            self.ssd.program(
                PhysicalAddress(lun=lun, plane=plane, block=block, page=page), buf
            )

    def _build_sins(self) -> None:
        geometry = self.config.geometry
        for chip in self.ssd.chips:
            accelerators = []
            for lun in chip.luns:
                acc = LunAccelerator(
                    lun=lun,
                    geometry=geometry,
                    dim=self.graph.dim,
                    query_queue_capacity=self.config.max_queries_per_lun,
                )
                self._accelerators[lun.lun_index] = acc
                accelerators.append(acc)
            self.sin_engines.append(SiNEngine(accelerators=accelerators))

    def accelerator_of(self, lun: int) -> LunAccelerator:
        return self._accelerators[lun]

    def total_counters(self) -> Counters:
        total = Counters()
        total.update(self.vgenerator.counters)
        total.update(self.allocator.counters)
        total.update(self.fpga.counters)
        for engine in self.sin_engines:
            total.update(engine.counters)
        return total


# =============================================================================
# Timing simulator
# =============================================================================
class _CompiledTrace:
    """One trace's replay, pre-resolved to per-round LUN work.

    Everything about a single query's rounds — speculative hits, cache
    hits, per-LUN page keys, load/merge counts, the spec-prefetch
    contribution — is a pure function of the trace content, the
    speculative sets and the (immutable) model configuration, so it is
    computed once per trace and reused across every batch the trace
    appears in.  Only the cross-query aggregation (LUN pooling under
    dynamic allocation, the ECC fault stream, stage timing) remains
    batch-coupled and is redone per sub-batch.

    ``rounds[r]`` is ``(had_computed, pairs, hits, n_cached, groups,
    spec_count, spec_keys, spec_loads, spec_merged)`` where ``groups``
    is a tuple of ``(lun, raw_count, unique_keys, loads, merged)`` in
    ascending LUN order.
    """

    __slots__ = ("trace", "spec", "rounds", "n_rounds", "trace_length")

    def __init__(self, trace, spec, rounds) -> None:
        self.trace = trace
        self.spec = spec
        self.rounds = rounds
        self.n_rounds = trace.num_iterations
        self.trace_length = trace.trace_length


class SearSSDModel:
    """Trace-driven timing simulation of one batch on SearSSD."""

    def __init__(
        self,
        config: NDSearchConfig,
        placement: VertexPlacement,
        dim: int,
        graph: ProximityGraph | None = None,
        ldpc: LDPCModel | None = None,
        cached_vertices: np.ndarray | None = None,
    ) -> None:
        self.config = config
        self.placement = placement
        self.dim = dim
        self.graph = graph
        self.ldpc = ldpc or LDPCModel(hard_failure_prob=0.01)
        self.cached = (
            frozenset(int(v) for v in cached_vertices)
            if cached_vertices is not None
            else frozenset()
        )
        g = config.geometry
        self._plane_span = g.blocks_per_plane * g.pages_per_block
        self._lun_span = self._plane_span * g.planes_per_lun
        self._cached_arr = (
            np.fromiter(sorted(self.cached), dtype=np.int64, count=len(self.cached))
            if self.cached
            else None
        )
        # Per-trace compiled replays, keyed by trace identity.  Each
        # entry pins its trace (and spec list) so a keyed id cannot be
        # recycled onto a different object while the entry lives; the
        # `is` checks on lookup make a stale hit impossible either way.
        self._compiled: dict[int, _CompiledTrace] = {}

    # ---- helpers ---------------------------------------------------------------
    def _page_keys(self, vertices: np.ndarray) -> np.ndarray:
        return self.placement.page_keys(vertices)

    def _lun_of_keys(self, keys: np.ndarray) -> np.ndarray:
        return keys // self._lun_span

    def _loads_and_merges(self, keys: np.ndarray) -> tuple[int, int]:
        """Distinct page senses and multi-plane merge count for keys.

        ``merged`` counts pages folded into another plane's sense of
        the same (block, page): distinct pages minus distinct
        plane-stripped pages.
        """
        unique = np.unique(keys)
        loads = int(unique.size)
        plane = (unique // self._plane_span) % self.config.geometry.planes_per_lun
        without_plane = unique - plane * self._plane_span
        merged = loads - int(np.unique(without_plane).size)
        return loads, merged

    # ---- main entry ----------------------------------------------------------------
    def run_batch(
        self,
        traces: list[SearchTrace],
        speculative_sets: list[list[np.ndarray]] | None = None,
        algorithm: str = "hnsw",
        dataset: str = "synthetic",
    ) -> SimResult:
        """Simulate a full batch, splitting into sub-batches if needed."""
        batch = len(traces)
        # Deterministic fault injection: the same batch always sees the
        # same hard-decode failure stream.
        self.ldpc.reset()
        capacity = self.config.max_batch_capacity
        counters = Counters()
        busy: dict[str, float] = {}
        timeline: list[PhaseSegment] = []
        makespan = 0.0
        compiled = self._compiled_batch(traces, speculative_sets)
        spec_enabled = speculative_sets is not None
        for start in range(0, batch, capacity):
            sub = compiled[start : start + capacity]
            t, c, b, segments = self._run_sub_batch(sub, spec_enabled)
            # Sub-batch segments are relative to the sub-batch's own
            # start; shift them onto the batch clock.
            timeline.extend(
                PhaseSegment(
                    s.stage, s.start + makespan, s.end + makespan,
                    resource=s.resource,
                )
                for s in segments
            )
            makespan += t
            counters.update(c)
            for key, val in b.items():
                busy[key] = busy.get(key, 0.0) + val
        result = SimResult(
            platform="ndsearch",
            algorithm=algorithm,
            dataset=dataset,
            batch_size=batch,
            sim_time_s=makespan,
            counters=counters,
            component_busy_s=busy,
            timeline=timeline,
        )
        return result

    # ---- trace compilation -----------------------------------------------------------
    def _compiled_batch(
        self,
        traces: list[SearchTrace],
        speculative_sets: list[list[np.ndarray]] | None,
    ) -> list[_CompiledTrace]:
        """Resolve every trace to its compiled replay (cached)."""
        out: list[_CompiledTrace] = []
        cache = self._compiled
        for i, trace in enumerate(traces):
            spec = speculative_sets[i] if speculative_sets is not None else None
            entry = cache.get(id(trace))  # repro-lint: disable=DET001 -- trace pinned in entry
            if entry is None or entry.trace is not trace or entry.spec is not spec:
                entry = self._compile_trace(trace, spec)
                if len(cache) >= 8192:
                    cache.pop(next(iter(cache)))
                cache[id(trace)] = entry  # repro-lint: disable=DET001 -- trace pinned in entry
            out.append(entry)
        return out

    def _compile_trace(
        self, trace: SearchTrace, spec: list[np.ndarray] | None
    ) -> _CompiledTrace:
        """Pre-resolve one trace's rounds to per-LUN demand work."""
        flags = self.config.flags
        n_iter = trace.num_iterations
        rounds = []
        for r in range(n_iter):
            computed = np.asarray(trace.iterations[r].computed, dtype=np.int64)
            had_computed = computed.size > 0
            hits = 0
            n_cached = 0
            if had_computed:
                # Speculative hits: vertices the previous round's
                # overlap window already computed.
                if flags.speculative and spec is not None and r >= 1:
                    if r - 1 < len(spec) and spec[r - 1].size:
                        mask = np.isin(computed, spec[r - 1])
                        hits = int(np.count_nonzero(mask))
                        if hits:
                            computed = computed[~mask]
                # Internal-DRAM cache (DiskANN hot vertices).
                if self._cached_arr is not None and computed.size:
                    mask = np.isin(computed, self._cached_arr)
                    n_cached = int(np.count_nonzero(mask))
                    if n_cached:
                        computed = computed[~mask]
            pairs = int(computed.size)
            groups: tuple = ()
            if computed.size:
                keys = self._page_keys(computed)
                luns = self._lun_of_keys(keys)
                group_list = []
                for lun in np.unique(luns):
                    lun_keys = keys[luns == lun]
                    uniq = np.unique(lun_keys)
                    loads, merged = self._loads_and_merges(uniq)
                    group_list.append(
                        (int(lun), int(lun_keys.size), uniq, loads, merged)
                    )
                groups = tuple(group_list)
            # This round's prefetch contribution (overlaps the next
            # round's scheduling window; nothing on the last round).
            # spec_loads/spec_merged pre-resolve the common case of a
            # single query prefetching in a round; multi-query rounds
            # must still pool the keys at batch time.
            spec_count = 0
            spec_keys = None
            spec_loads = 0
            spec_merged = 0
            if (
                flags.speculative
                and spec is not None
                and r < n_iter - 1
                and r < len(spec)
                and spec[r].size
            ):
                spec_count = int(spec[r].size)
                spec_keys = self._page_keys(spec[r])
                spec_loads, spec_merged = self._loads_and_merges(spec_keys)
            rounds.append(
                (had_computed, pairs, hits, n_cached, groups,
                 spec_count, spec_keys, spec_loads, spec_merged)
            )
        return _CompiledTrace(trace, spec, tuple(rounds))

    # ---- one sub-batch ---------------------------------------------------------------
    def _run_sub_batch(
        self,
        compiled: list[_CompiledTrace],
        spec_enabled: bool,
    ):
        timing = self.config.timing
        flags = self.config.flags
        geometry = self.config.geometry
        counters = Counters()
        busy: dict[str, float] = {
            "pcie_host": 0.0,
            "vgenerator": 0.0,
            "allocator": 0.0,
            "nand_read": 0.0,
            "channel_bus": 0.0,
            "dram": 0.0,
            "embedded_cores": 0.0,
            "fpga_sort": 0.0,
            "sin_macs_busy": 0.0,
            "nand_busy": 0.0,
            "lun_queues_busy": 0.0,
            "ecc_busy": 0.0,
        }
        batch = len(compiled)
        if batch == 0:
            return 0.0, counters, busy, []

        # Phase timeline of this sub-batch, relative to its own start.
        # Host-in/out are distinct resources (full-duplex PCIe), so the
        # serving layer can drain batch N's results while batch N+1's
        # queries stream in.
        segments: list[PhaseSegment] = []

        def book(stage: str, resource: str, start: float, duration: float) -> None:
            if duration > 0:
                segments.append(
                    PhaseSegment(stage, start, start + duration, resource=resource)
                )

        # 1. Host sends the query batch over PCIe (Fig. 5 step 1).
        query_bytes = batch * (self.dim * 4 + 16)
        t_in = timing.host_transfer_s(query_bytes)
        counters["pcie_bytes"] += query_bytes
        busy["pcie_host"] += t_in
        book("host_in", "host_in", 0.0, t_in)
        makespan = t_in

        max_rounds = max(c.n_rounds for c in compiled)

        for round_idx in range(max_rounds):
            # Aggregate the batch's compiled per-trace round work.  LUN
            # accumulators keep first-touch order (query id ascending,
            # LUN ascending per query) — the ECC fault stream consumes
            # its draws in exactly this order.
            n_active = 0
            n_pairs = 0
            cached_accesses = 0
            # lun -> [n_vectors, loads, merged, unique-key arrays]
            lun_acc: dict[int, list] = {}
            for comp in compiled:
                if round_idx >= comp.n_rounds:
                    continue
                had, pairs, hits, n_cached, groups = comp.rounds[round_idx][:5]
                n_active += 1
                if hits:
                    counters["speculative_hits"] += hits
                if n_cached:
                    counters["cache_hits"] += n_cached
                    cached_accesses += n_cached
                if had:
                    n_pairs += pairs
                    counters["distance_computations"] += pairs
                for lun, raw, uniq, loads, merged in groups:
                    acc = lun_acc.get(lun)
                    if acc is None:
                        acc = lun_acc[lun] = [0, 0, 0, []]
                    acc[0] += raw
                    acc[1] += loads
                    if flags.multiplane:
                        acc[2] += merged
                    acc[3].append(uniq)
            if n_active == 0:
                continue

            # Scheduling stage: Vgenerator pipeline + Allocator dispatch.
            t_vgen = (n_active + 2) * timing.vgen_stage_s
            t_alloc = n_pairs * timing.alloc_dispatch_s
            dram_ops = 3 * n_active + 2 * n_pairs + cached_accesses
            t_dram_sched = dram_ops * timing.dram_access_s
            counters["dram_accesses"] += dram_ops
            t_sched = max(t_vgen + t_alloc, t_dram_sched)
            # Speculative searching launches the next iteration's
            # Allocating stage during the current Searching stage
            # (Fig. 12), hiding the scheduling latency of every round
            # after the first behind the previous round's search.
            if flags.speculative and round_idx > 0:
                t_sched = 0.0
            busy["vgenerator"] += t_vgen
            busy["allocator"] += t_alloc
            busy["dram"] += t_dram_sched

            # Searching stage: every LUN works in parallel (multi-LUN).
            t_search, search_busy = self._search_stage(lun_acc, counters)
            for key, val in search_busy.items():
                busy[key] = busy.get(key, 0.0) + val

            # Gathering stage: Reduce/Apply on the QPT.
            gather_ops = n_pairs + n_active
            t_gather = (
                n_pairs * timing.dram_access_s
                + n_active * timing.embedded_core_op_s
            )
            counters["dram_accesses"] += gather_ops
            busy["embedded_cores"] += n_active * timing.embedded_core_op_s
            busy["dram"] += n_pairs * timing.dram_access_s

            # Speculative searching overlaps the next round's
            # scheduling window; it only adds NAND activity + counters.
            if flags.speculative and spec_enabled:
                self._speculative_stage(compiled, round_idx, counters, busy)

            book("schedule", "engine", makespan, t_sched)
            book("search", "engine", makespan + t_sched, t_search)
            book("gather", "engine", makespan + t_sched + t_search, t_gather)
            makespan += t_sched + t_search + t_gather

        # Sorting stage: result lists to the FPGA, top-k back to host.
        list_len = int(np.mean([max(c.trace_length, 1) for c in compiled]))
        list_len = min(list_len, 256)
        t_sort = FPGASorter(timing=timing).sort_latency_s(batch, list_len)
        counters["sorted_elements"] += batch * list_len
        busy["fpga_sort"] += t_sort
        out_bytes = batch * 10 * 8
        t_out = timing.host_transfer_s(out_bytes)
        counters["pcie_bytes"] += out_bytes
        busy["pcie_host"] += t_out
        book("sort", "sorter", makespan, t_sort)
        book("host_out", "host_out", makespan + t_sort, t_out)
        makespan += t_sort + t_out
        return makespan, counters, busy, segments

    # ---- searching stage -------------------------------------------------------------
    def _search_stage(self, lun_acc: dict[int, list], counters: Counters):
        timing = self.config.timing
        geometry = self.config.geometry
        flags = self.config.flags
        busy = {
            "nand_read": 0.0,
            "channel_bus": 0.0,
            "embedded_cores": 0.0,
            "sin_macs_busy": 0.0,
            "nand_busy": 0.0,
            "lun_queues_busy": 0.0,
            "ecc_busy": 0.0,
        }
        channel_compute: dict[int, float] = {}
        channel_readout: dict[int, float] = {}
        soft_stall = 0.0
        # Dynamic allocation pools each LUN's round demand: one sense
        # covers every query that needs the page, so loads/merges come
        # from the *union* of the per-query page sets, not their sum.
        # A LUN with a single contributing query needs no pooling (its
        # union is the per-query set, resolved at compile time); the
        # multi-query LUNs pool in ONE pass — page keys embed the LUN
        # as their most-significant field, so one global unique yields
        # every LUN's union size at once.
        da_loads: dict[int, int] = {}
        da_merged: dict[int, int] = {}
        if flags.dynamic_alloc:
            multi: list[np.ndarray] = []
            multi_luns: list[int] = []
            for lun, acc in lun_acc.items():
                if len(acc[3]) > 1:
                    multi.extend(acc[3])
                    multi_luns.append(lun)
            if multi:
                uniq = np.unique(np.concatenate(multi))
                plane = (
                    uniq // self._plane_span
                ) % self.config.geometry.planes_per_lun
                wp = np.unique(uniq - plane * self._plane_span)
                # Both arrays are sorted with the LUN as the top key
                # field, so each LUN's slice is found by bisecting its
                # key range — no per-LUN unique needed.
                multi_luns.sort()
                edges = np.empty(len(multi_luns) * 2, dtype=np.int64)
                edges[0::2] = np.asarray(multi_luns) * self._lun_span
                edges[1::2] = edges[0::2] + self._lun_span
                bounds = np.searchsorted(uniq, edges)
                wp_bounds = np.searchsorted(wp, edges)
                for i, lid in enumerate(multi_luns):
                    loads_i = int(bounds[2 * i + 1] - bounds[2 * i])
                    da_loads[lid] = loads_i
                    da_merged[lid] = loads_i - int(
                        wp_bounds[2 * i + 1] - wp_bounds[2 * i]
                    )
        for lun, (n_vectors, loads, merged, uniqs) in lun_acc.items():
            if flags.dynamic_alloc and len(uniqs) > 1:
                loads = da_loads[lun]
                merged = da_merged[lun] if flags.multiplane else 0
            effective_ops = loads - merged
            counters["page_reads"] += loads
            counters["multiplane_reads"] += merged
            counters["ecc_hard_decodes"] += loads
            t_mac = n_vectors * timing.distance_mac_s(self.dim)
            t_nand = effective_ops * (timing.read_page_s + timing.ecc_hard_decode_s)
            # ECC fault injection: failed hard decodes fall back to the
            # soft decoder on the embedded cores and stall this LUN.
            failures = self.ldpc.decode_pages(loads)
            if failures:
                counters["ecc_soft_decodes"] += failures
                t_soft = failures * timing.ecc_soft_decode_s
                t_nand += t_soft
                soft_stall += t_soft
            lun_time = t_nand + t_mac
            busy["nand_busy"] += t_nand
            busy["sin_macs_busy"] += t_mac
            busy["ecc_busy"] += loads * timing.ecc_hard_decode_s
            busy["lun_queues_busy"] += lun_time
            channel = lun // geometry.luns_per_channel
            channel_compute[channel] = max(channel_compute.get(channel, 0.0), lun_time)
            # Output-buffer readout over the shared channel bus.
            readout_bytes = n_vectors * 8 + 16
            counters["internal_bytes"] += readout_bytes
            channel_readout[channel] = channel_readout.get(channel, 0.0) + (
                readout_bytes / timing.channel_bus_bw + 0.5e-6
            )
        if not channel_compute:
            return 0.0, busy
        t_search = max(
            channel_compute[ch] + channel_readout.get(ch, 0.0)
            for ch in channel_compute
        )
        # Critical-path attribution: the slowest channel's compute time
        # counts as NAND read, the remainder as channel-bus readout.
        t_compute_crit = max(channel_compute.values())
        busy["nand_read"] += t_compute_crit
        busy["channel_bus"] += t_search - t_compute_crit
        busy["embedded_cores"] += soft_stall
        return t_search, busy

    # ---- speculative stage ------------------------------------------------------------
    def _speculative_stage(
        self,
        compiled: list[_CompiledTrace],
        round_idx: int,
        counters: Counters,
        busy: dict[str, float],
    ) -> None:
        timing = self.config.timing
        total_vertices = 0
        keys_list: list[np.ndarray] = []
        loads = merged = 0
        for comp in compiled:
            if round_idx >= comp.n_rounds:
                continue
            spec_count, spec_keys, spec_loads, spec_merged = (
                comp.rounds[round_idx][5:9]
            )
            if spec_count:
                total_vertices += spec_count
                keys_list.append(spec_keys)
                loads, merged = spec_loads, spec_merged
        if not keys_list:
            return
        if len(keys_list) > 1:
            # Cross-query pooling: a page two queries prefetch is
            # sensed once, so the batch's loads come from the pooled
            # key set, not the per-query sums.
            loads, merged = self._loads_and_merges(np.concatenate(keys_list))
        effective = loads - (merged if self.config.flags.multiplane else 0)
        counters["speculative_page_reads"] += loads
        counters["page_reads"] += loads
        counters["ecc_hard_decodes"] += loads
        # Overlapped with the next round's scheduling window: adds NAND
        # busy time (and energy) but not critical-path latency.
        busy["nand_busy"] += effective * timing.read_page_s
        busy["sin_macs_busy"] += total_vertices * timing.distance_mac_s(self.dim)
