"""SearSSD: the modified SSD device and its timing simulator.

Two layers:

* :class:`SearSSDDevice` — the *functional* device: a real
  :class:`repro.flash.ssd.SSD` with the graph's feature vectors
  programmed into NAND pages per the placement, LUNCSR built and
  mirrored to the FTL, one LUN-level accelerator per LUN, plus the
  Vgenerator, Allocator and FPGA sorter.  Used by the processing model
  (Algorithm 1) to compute real search results through the hardware
  path.

* :class:`SearSSDModel` — the *timing* simulator: a trace-driven,
  round-based replay in the style of the paper's SSD-Sim-based
  in-house simulator.  Each round advances every active query by one
  search iteration; page senses, multi-plane merges, channel-bus
  readouts, controller work, ECC faults and speculative prefetches are
  booked per component, and the round's critical path accumulates into
  the batch makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ann.graph import ProximityGraph
from repro.ann.trace import SearchTrace
from repro.core.allocator import Allocator
from repro.core.config import NDSearchConfig
from repro.core.luncsr import LUNCSR
from repro.core.placement import VertexPlacement, map_vertices
from repro.core.sin import LunAccelerator, SiNEngine
from repro.core.vgenerator import Vgenerator
from repro.flash.ecc import LDPCModel
from repro.flash.geometry import PhysicalAddress
from repro.flash.ssd import SSD
from repro.sim.stats import Counters, PhaseSegment, SimResult
from repro.sorting.fpga import FPGASorter


# =============================================================================
# Functional device
# =============================================================================
class SearSSDDevice:
    """A fully assembled, functional SearSSD holding one graph."""

    def __init__(self, graph: ProximityGraph, config: NDSearchConfig) -> None:
        self.config = config
        self.graph = graph
        self.ssd = SSD(geometry=config.geometry, timing=config.timing)
        self.vector_bytes = graph.dim * graph.vectors.itemsize
        scheme = "multiplane" if config.flags.multiplane else "interleaved"
        self.placement = map_vertices(
            graph.num_vertices, config.geometry, self.vector_bytes, scheme=scheme
        )
        self._program_vectors()
        self.luncsr = LUNCSR.build(graph, self.placement, self.vector_bytes)
        self.luncsr.attach_to_ftl(self.ssd.ftl)
        self.vgenerator = Vgenerator(self.luncsr, config.vgen_buffer_bytes)
        self.allocator = Allocator(self.luncsr, config.alloc_buffer_bytes)
        self.fpga = FPGASorter(timing=config.timing)
        self._accelerators: dict[int, LunAccelerator] = {}
        self.sin_engines: list[SiNEngine] = []
        self._build_sins()

    def _program_vectors(self) -> None:
        """Write every vertex's vector bytes into its flash page slot."""
        placement, geometry = self.placement, self.config.geometry
        page_bytes: dict[tuple[int, int, int, int], np.ndarray] = {}
        for v in range(self.graph.num_vertices):
            key = placement.page_key(v)
            buf = page_bytes.get(key)
            if buf is None:
                buf = np.zeros(geometry.page_size, dtype=np.uint8)
                page_bytes[key] = buf
            start = int(placement.slot[v]) * self.vector_bytes
            buf[start : start + self.vector_bytes] = np.frombuffer(
                self.graph.vectors[v].tobytes(), dtype=np.uint8
            )
        for (lun, plane, block, page), buf in page_bytes.items():
            self.ssd.program(
                PhysicalAddress(lun=lun, plane=plane, block=block, page=page), buf
            )

    def _build_sins(self) -> None:
        geometry = self.config.geometry
        for chip in self.ssd.chips:
            accelerators = []
            for lun in chip.luns:
                acc = LunAccelerator(
                    lun=lun,
                    geometry=geometry,
                    dim=self.graph.dim,
                    query_queue_capacity=self.config.max_queries_per_lun,
                )
                self._accelerators[lun.lun_index] = acc
                accelerators.append(acc)
            self.sin_engines.append(SiNEngine(accelerators=accelerators))

    def accelerator_of(self, lun: int) -> LunAccelerator:
        return self._accelerators[lun]

    def total_counters(self) -> Counters:
        total = Counters()
        total.update(self.vgenerator.counters)
        total.update(self.allocator.counters)
        total.update(self.fpga.counters)
        for engine in self.sin_engines:
            total.update(engine.counters)
        return total


# =============================================================================
# Timing simulator
# =============================================================================
@dataclass
class _RoundWork:
    """Demand work of one iteration round, grouped for the LUN model."""

    n_active: int = 0
    n_pairs: int = 0
    # lun -> list of page-key arrays; with dynamic alloc there is a
    # single pooled array per LUN, without it one array per query.
    lun_page_groups: dict[int, list[np.ndarray]] = field(default_factory=dict)
    lun_vector_counts: dict[int, int] = field(default_factory=dict)
    cached_accesses: int = 0


class SearSSDModel:
    """Trace-driven timing simulation of one batch on SearSSD."""

    def __init__(
        self,
        config: NDSearchConfig,
        placement: VertexPlacement,
        dim: int,
        graph: ProximityGraph | None = None,
        ldpc: LDPCModel | None = None,
        cached_vertices: np.ndarray | None = None,
    ) -> None:
        self.config = config
        self.placement = placement
        self.dim = dim
        self.graph = graph
        self.ldpc = ldpc or LDPCModel(hard_failure_prob=0.01)
        self.cached = (
            frozenset(int(v) for v in cached_vertices)
            if cached_vertices is not None
            else frozenset()
        )
        g = config.geometry
        self._plane_span = g.blocks_per_plane * g.pages_per_block
        self._lun_span = self._plane_span * g.planes_per_lun

    # ---- helpers ---------------------------------------------------------------
    def _page_keys(self, vertices: np.ndarray) -> np.ndarray:
        return self.placement.page_keys(vertices)

    def _lun_of_keys(self, keys: np.ndarray) -> np.ndarray:
        return keys // self._lun_span

    def _loads_and_merges(self, keys: np.ndarray) -> tuple[int, int]:
        """Distinct page senses and multi-plane merge count for keys."""
        unique = np.unique(keys)
        loads = int(unique.size)
        plane = (unique // self._plane_span) % self.config.geometry.planes_per_lun
        without_plane = unique - plane * self._plane_span
        _, counts = np.unique(without_plane, return_counts=True)
        merged = int(np.sum(counts - 1))
        return loads, merged

    # ---- main entry ----------------------------------------------------------------
    def run_batch(
        self,
        traces: list[SearchTrace],
        speculative_sets: list[list[np.ndarray]] | None = None,
        algorithm: str = "hnsw",
        dataset: str = "synthetic",
    ) -> SimResult:
        """Simulate a full batch, splitting into sub-batches if needed."""
        batch = len(traces)
        # Deterministic fault injection: the same batch always sees the
        # same hard-decode failure stream.
        self.ldpc.reset()
        capacity = self.config.max_batch_capacity
        counters = Counters()
        busy: dict[str, float] = {}
        timeline: list[PhaseSegment] = []
        makespan = 0.0
        for start in range(0, batch, capacity):
            sub = traces[start : start + capacity]
            spec = (
                speculative_sets[start : start + capacity]
                if speculative_sets is not None
                else None
            )
            t, c, b, segments = self._run_sub_batch(sub, spec)
            # Sub-batch segments are relative to the sub-batch's own
            # start; shift them onto the batch clock.
            timeline.extend(
                PhaseSegment(
                    s.stage, s.start + makespan, s.end + makespan,
                    resource=s.resource,
                )
                for s in segments
            )
            makespan += t
            counters.update(c)
            for key, val in b.items():
                busy[key] = busy.get(key, 0.0) + val
        result = SimResult(
            platform="ndsearch",
            algorithm=algorithm,
            dataset=dataset,
            batch_size=batch,
            sim_time_s=makespan,
            counters=counters,
            component_busy_s=busy,
            timeline=timeline,
        )
        return result

    # ---- one sub-batch ---------------------------------------------------------------
    def _run_sub_batch(
        self,
        traces: list[SearchTrace],
        speculative_sets: list[list[np.ndarray]] | None,
    ):
        timing = self.config.timing
        flags = self.config.flags
        geometry = self.config.geometry
        counters = Counters()
        busy: dict[str, float] = {
            "pcie_host": 0.0,
            "vgenerator": 0.0,
            "allocator": 0.0,
            "nand_read": 0.0,
            "channel_bus": 0.0,
            "dram": 0.0,
            "embedded_cores": 0.0,
            "fpga_sort": 0.0,
            "sin_macs_busy": 0.0,
            "nand_busy": 0.0,
            "lun_queues_busy": 0.0,
            "ecc_busy": 0.0,
        }
        batch = len(traces)
        if batch == 0:
            return 0.0, counters, busy, []

        # Phase timeline of this sub-batch, relative to its own start.
        # Host-in/out are distinct resources (full-duplex PCIe), so the
        # serving layer can drain batch N's results while batch N+1's
        # queries stream in.
        segments: list[PhaseSegment] = []

        def book(stage: str, resource: str, start: float, duration: float) -> None:
            if duration > 0:
                segments.append(
                    PhaseSegment(stage, start, start + duration, resource=resource)
                )

        # 1. Host sends the query batch over PCIe (Fig. 5 step 1).
        query_bytes = batch * (self.dim * 4 + 16)
        t_in = timing.host_transfer_s(query_bytes)
        counters["pcie_bytes"] += query_bytes
        busy["pcie_host"] += t_in
        book("host_in", "host_in", 0.0, t_in)
        makespan = t_in

        max_rounds = max(t.num_iterations for t in traces)
        prefetched: list[set[int]] = [set() for _ in range(batch)]

        for round_idx in range(max_rounds):
            work = self._collect_round(
                traces, round_idx, prefetched, counters
            )
            if work.n_active == 0:
                continue

            # Scheduling stage: Vgenerator pipeline + Allocator dispatch.
            t_vgen = (work.n_active + 2) * timing.vgen_stage_s
            t_alloc = work.n_pairs * timing.alloc_dispatch_s
            dram_ops = 3 * work.n_active + 2 * work.n_pairs + work.cached_accesses
            t_dram_sched = dram_ops * timing.dram_access_s
            counters["dram_accesses"] += dram_ops
            t_sched = max(t_vgen + t_alloc, t_dram_sched)
            # Speculative searching launches the next iteration's
            # Allocating stage during the current Searching stage
            # (Fig. 12), hiding the scheduling latency of every round
            # after the first behind the previous round's search.
            if flags.speculative and round_idx > 0:
                t_sched = 0.0
            busy["vgenerator"] += t_vgen
            busy["allocator"] += t_alloc
            busy["dram"] += t_dram_sched

            # Searching stage: every LUN works in parallel (multi-LUN).
            t_search, search_busy = self._search_stage(work, counters)
            for key, val in search_busy.items():
                busy[key] = busy.get(key, 0.0) + val

            # Gathering stage: Reduce/Apply on the QPT.
            gather_ops = work.n_pairs + work.n_active
            t_gather = (
                work.n_pairs * timing.dram_access_s
                + work.n_active * timing.embedded_core_op_s
            )
            counters["dram_accesses"] += gather_ops
            busy["embedded_cores"] += work.n_active * timing.embedded_core_op_s
            busy["dram"] += work.n_pairs * timing.dram_access_s

            # Speculative searching overlaps the next round's
            # scheduling window; it only adds NAND activity + counters.
            if flags.speculative and speculative_sets is not None:
                self._speculative_stage(
                    traces, round_idx, speculative_sets, prefetched,
                    counters, busy,
                )

            book("schedule", "engine", makespan, t_sched)
            book("search", "engine", makespan + t_sched, t_search)
            book("gather", "engine", makespan + t_sched + t_search, t_gather)
            makespan += t_sched + t_search + t_gather

        # Sorting stage: result lists to the FPGA, top-k back to host.
        list_len = int(np.mean([max(t.trace_length, 1) for t in traces]))
        list_len = min(list_len, 256)
        t_sort = FPGASorter(timing=timing).sort_latency_s(batch, list_len)
        counters["sorted_elements"] += batch * list_len
        busy["fpga_sort"] += t_sort
        out_bytes = batch * 10 * 8
        t_out = timing.host_transfer_s(out_bytes)
        counters["pcie_bytes"] += out_bytes
        busy["pcie_host"] += t_out
        book("sort", "sorter", makespan, t_sort)
        book("host_out", "host_out", makespan + t_sort, t_out)
        makespan += t_sort + t_out
        return makespan, counters, busy, segments

    # ---- round decomposition -------------------------------------------------------
    def _collect_round(
        self,
        traces: list[SearchTrace],
        round_idx: int,
        prefetched: list[set[int]],
        counters: Counters,
    ) -> _RoundWork:
        flags = self.config.flags
        work = _RoundWork()
        pooled: dict[int, list[np.ndarray]] = {}
        for qid, trace in enumerate(traces):
            if round_idx >= trace.num_iterations:
                continue
            record = trace.iterations[round_idx]
            work.n_active += 1
            computed = np.asarray(record.computed, dtype=np.int64)
            if computed.size == 0:
                continue
            # Speculative hits: already computed during the previous
            # round's overlap window.
            if flags.speculative and prefetched[qid]:
                hit_mask = np.fromiter(
                    (int(v) in prefetched[qid] for v in computed),
                    dtype=bool,
                    count=computed.size,
                )
                hits = int(hit_mask.sum())
                if hits:
                    counters["speculative_hits"] += hits
                    computed = computed[~hit_mask]
            # Internal-DRAM cache (DiskANN hot vertices).
            if self.cached and computed.size:
                cache_mask = np.fromiter(
                    (int(v) in self.cached for v in computed),
                    dtype=bool,
                    count=computed.size,
                )
                n_cached = int(cache_mask.sum())
                if n_cached:
                    counters["cache_hits"] += n_cached
                    work.cached_accesses += n_cached
                    computed = computed[~cache_mask]
            work.n_pairs += int(computed.size)
            counters["distance_computations"] += int(computed.size)
            if computed.size == 0:
                continue
            keys = self._page_keys(computed)
            luns = self._lun_of_keys(keys)
            for lun in np.unique(luns):
                lun_keys = keys[luns == lun]
                if flags.dynamic_alloc:
                    pooled.setdefault(int(lun), []).append(lun_keys)
                else:
                    work.lun_page_groups.setdefault(int(lun), []).append(lun_keys)
                work.lun_vector_counts[int(lun)] = (
                    work.lun_vector_counts.get(int(lun), 0) + lun_keys.size
                )
        if flags.dynamic_alloc:
            for lun, groups in pooled.items():
                work.lun_page_groups[lun] = [np.concatenate(groups)]
        return work

    # ---- searching stage -------------------------------------------------------------
    def _search_stage(self, work: _RoundWork, counters: Counters):
        timing = self.config.timing
        geometry = self.config.geometry
        flags = self.config.flags
        busy = {
            "nand_read": 0.0,
            "channel_bus": 0.0,
            "embedded_cores": 0.0,
            "sin_macs_busy": 0.0,
            "nand_busy": 0.0,
            "lun_queues_busy": 0.0,
            "ecc_busy": 0.0,
        }
        channel_compute: dict[int, float] = {}
        channel_readout: dict[int, float] = {}
        soft_stall = 0.0
        for lun, groups in work.lun_page_groups.items():
            loads = 0
            merged = 0
            for keys in groups:
                l, m = self._loads_and_merges(keys)
                loads += l
                if flags.multiplane:
                    merged += m
            effective_ops = loads - merged
            counters["page_reads"] += loads
            counters["multiplane_reads"] += merged
            counters["ecc_hard_decodes"] += loads
            n_vectors = work.lun_vector_counts.get(lun, 0)
            t_mac = n_vectors * timing.distance_mac_s(self.dim)
            t_nand = effective_ops * (timing.read_page_s + timing.ecc_hard_decode_s)
            # ECC fault injection: failed hard decodes fall back to the
            # soft decoder on the embedded cores and stall this LUN.
            failures = sum(1 for _ in range(loads) if not self.ldpc.decode_page())
            if failures:
                counters["ecc_soft_decodes"] += failures
                t_soft = failures * timing.ecc_soft_decode_s
                t_nand += t_soft
                soft_stall += t_soft
            lun_time = t_nand + t_mac
            busy["nand_busy"] += t_nand
            busy["sin_macs_busy"] += t_mac
            busy["ecc_busy"] += loads * timing.ecc_hard_decode_s
            busy["lun_queues_busy"] += lun_time
            channel = lun // geometry.luns_per_channel
            channel_compute[channel] = max(channel_compute.get(channel, 0.0), lun_time)
            # Output-buffer readout over the shared channel bus.
            readout_bytes = n_vectors * 8 + 16
            counters["internal_bytes"] += readout_bytes
            channel_readout[channel] = channel_readout.get(channel, 0.0) + (
                readout_bytes / timing.channel_bus_bw + 0.5e-6
            )
        if not channel_compute:
            return 0.0, busy
        t_search = max(
            channel_compute[ch] + channel_readout.get(ch, 0.0)
            for ch in channel_compute
        )
        # Critical-path attribution: the slowest channel's compute time
        # counts as NAND read, the remainder as channel-bus readout.
        t_compute_crit = max(channel_compute.values())
        busy["nand_read"] += t_compute_crit
        busy["channel_bus"] += t_search - t_compute_crit
        busy["embedded_cores"] += soft_stall
        return t_search, busy

    # ---- speculative stage ------------------------------------------------------------
    def _speculative_stage(
        self,
        traces: list[SearchTrace],
        round_idx: int,
        speculative_sets: list[list[np.ndarray]],
        prefetched: list[set[int]],
        counters: Counters,
        busy: dict[str, float],
    ) -> None:
        timing = self.config.timing
        spec_vertices: list[np.ndarray] = []
        for qid, trace in enumerate(traces):
            prefetched[qid] = set()
            if round_idx >= trace.num_iterations - 1:
                continue
            sets = speculative_sets[qid]
            if round_idx >= len(sets):
                continue
            vertices = sets[round_idx]
            if vertices.size == 0:
                continue
            prefetched[qid] = set(int(v) for v in vertices)
            spec_vertices.append(vertices)
        if not spec_vertices:
            return
        all_spec = np.concatenate(spec_vertices)
        keys = self._page_keys(all_spec)
        loads, merged = self._loads_and_merges(keys)
        effective = loads - (merged if self.config.flags.multiplane else 0)
        counters["speculative_page_reads"] += loads
        counters["page_reads"] += loads
        counters["ecc_hard_decodes"] += loads
        # Overlapped with the next round's scheduling window: adds NAND
        # busy time (and energy) but not critical-path latency.
        busy["nand_busy"] += effective * timing.read_page_s
        busy["sin_macs_busy"] += all_spec.size * timing.distance_mac_s(self.dim)
