"""NDSearch system configuration and scheduling flags.

Two presets are provided:

* :meth:`NDSearchConfig.paper` — the configuration evaluated in the
  paper: 512 GB SearSSD (32 channels x 4 chips x 2 LUNs x 2 planes,
  16 KB pages), 4 GB internal DRAM, 256 LUN-level accelerators, PCIe
  3.0 x16 to the host and x4 to the FPGA.
* :meth:`NDSearchConfig.scaled` — the benchmark-scale configuration.
  Scaling preserves the *ratios* that produce the paper's relative
  results: the batch-size-to-LUN-count ratio, the internal-to-PCIe
  bandwidth imbalance, and the dataset-footprint-to-page-count ratio
  (so reordering and dynamic allocation have the same room to help).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.flash.geometry import SSDGeometry
from repro.flash.timing import FlashTiming


@dataclass(frozen=True)
class SchedulingFlags:
    """Which of the paper's four techniques are enabled.

    Matches the ablation axes of Fig. 16: ``re`` (degree-ascending BFS
    reordering), ``mp`` (multi-plane-aware mapping), ``da`` (batch-wise
    dynamic allocating), ``sp`` (speculative searching).
    """

    reorder: bool = True
    multiplane: bool = True
    dynamic_alloc: bool = True
    speculative: bool = True

    @classmethod
    def bare(cls) -> "SchedulingFlags":
        """The 'Bare' machine of Fig. 16 — no optimisations."""
        return cls(False, False, False, False)

    @classmethod
    def all_enabled(cls) -> "SchedulingFlags":
        return cls(True, True, True, True)

    def label(self) -> str:
        parts = []
        if self.reorder:
            parts.append("re")
        if self.multiplane:
            parts.append("mp")
        if self.dynamic_alloc:
            parts.append("da")
        if self.speculative:
            parts.append("sp")
        return "+".join(parts) if parts else "bare"


@dataclass(frozen=True)
class HostConfig:
    """Host-platform parameters for the CPU/GPU baselines."""

    dram_capacity_bytes: int
    """Host main-memory capacity available to the index (the paper's
    24 GB; scaled preset: 2 MB so the big scaled datasets overflow it
    just as the billion-vector datasets overflow 24 GB)."""

    vram_capacity_bytes: int
    """GPU memory capacity (paper: 24 GB Titan RTX)."""

    pcie_util_max: float = 0.83
    """Saturated PCIe utilisation (Fig. 2a)."""

    pcie_util_tau: float = 300.0
    """Batch size constant of the utilisation ramp (Fig. 2a)."""

    io_request_overhead_s: float = 0.3e-6
    """Host software overhead per SSD read request (amortised)."""

    def pcie_utilization(self, batch_size: int) -> float:
        """Effective PCIe utilisation at a given batch size (Fig. 2a)."""
        import math

        if batch_size <= 0:
            return 0.0
        return self.pcie_util_max * (1.0 - math.exp(-batch_size / self.pcie_util_tau))


@dataclass(frozen=True)
class NDSearchConfig:
    """Complete configuration of an NDSearch deployment."""

    geometry: SSDGeometry
    timing: FlashTiming
    host: HostConfig
    flags: SchedulingFlags = field(default_factory=SchedulingFlags)

    dram_bytes: int = 4 * 1024**3
    """SearSSD internal DRAM (LUNCSR arrays + query property table)."""

    vgen_buffer_bytes: int = 2 * 1024**2
    alloc_buffer_bytes: int = 6 * 1024**2
    query_queue_bytes: int = 24 * 1024
    vaddr_queue_bytes: int = 3 * 1024

    max_queries_per_lun: int = 16
    """Query-queue capacity of one LUN accelerator (24 KB queue /
    ~1.5 KB per query slot).  Batches needing more split into
    sub-batches — the paper-scale capacity is 256 x 16 = 4096, which
    is exactly where Fig. 19's speedup starts to decline."""

    speculative_width: int = 8
    """Second-order neighbors prefetched per query and iteration."""

    hot_cache_fraction: float = 0.05
    """Fraction of vertices cacheable in internal DRAM (DiskANN mode)."""

    @classmethod
    def paper(cls, flags: SchedulingFlags | None = None) -> "NDSearchConfig":
        """The paper's full-size configuration (Section IV-C, Table I)."""
        return cls(
            geometry=SSDGeometry.paper(),
            timing=FlashTiming(),
            host=HostConfig(
                dram_capacity_bytes=24 * 1024**3,
                vram_capacity_bytes=24 * 1024**3,
            ),
            flags=flags or SchedulingFlags(),
        )

    @classmethod
    def scaled(cls, flags: SchedulingFlags | None = None) -> "NDSearchConfig":
        """Benchmark-scale configuration (see DESIGN.md scaling policy).

        64 LUNs / 128 planes, 4 KB pages, tR scaled with page size so
        that the internal-bandwidth-to-PCIe ratio and the per-access
        cost ratios between platforms match the paper-scale system.
        """
        geometry = SSDGeometry(
            channels=16,
            chips_per_channel=2,
            luns_per_chip=2,
            planes_per_lun=2,
            blocks_per_plane=32,
            pages_per_block=16,
            page_size=4 * 1024,
        )
        timing = FlashTiming(read_page_s=20e-6)
        return cls(
            geometry=geometry,
            timing=timing,
            host=HostConfig(
                dram_capacity_bytes=2 * 1024**2,
                vram_capacity_bytes=2 * 1024**2,
            ),
            flags=flags or SchedulingFlags(),
            dram_bytes=64 * 1024**2,
        )

    def with_flags(self, flags: SchedulingFlags) -> "NDSearchConfig":
        return replace(self, flags=flags)

    def shard(self, num_shards: int) -> "NDSearchConfig":
        """Per-device configuration for an ``num_shards``-way pool.

        Serving deployments split one SearSSD budget across several
        smaller devices; this divides the flash array (whole channels
        first, then chips within a channel) and the internal DRAM so
        the pool's aggregate resources match the unsharded device.
        Per-LUN parameters (queue capacity, page size, timing) are
        unchanged — a shard is a smaller SearSSD, not a slower one.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if num_shards == 1:
            return self
        g = self.geometry
        if g.channels % num_shards == 0:
            geometry = replace(g, channels=g.channels // num_shards)
        else:
            total_chips = g.channels * g.chips_per_channel
            if total_chips % num_shards != 0:
                raise ValueError(
                    f"cannot divide {g.channels} channels x "
                    f"{g.chips_per_channel} chips evenly into {num_shards} shards"
                )
            per_shard_chips = total_chips // num_shards
            if per_shard_chips % g.chips_per_channel == 0:
                geometry = replace(
                    g, channels=per_shard_chips // g.chips_per_channel
                )
            else:
                # Chip count does not fill whole channels: put every
                # chip on one channel so no flash is silently dropped.
                geometry = replace(
                    g, channels=1, chips_per_channel=per_shard_chips
                )
        return replace(
            self,
            geometry=geometry,
            dram_bytes=max(self.dram_bytes // num_shards, 1024**2),
        )

    # ---- derived quantities ---------------------------------------------
    @property
    def num_lun_accelerators(self) -> int:
        """One LUN-level accelerator per LUN (paper: 256)."""
        return self.geometry.total_luns

    @property
    def internal_bandwidth(self) -> float:
        """Aggregate page-buffer readout bandwidth if every LUN streams
        simultaneously (the paper's 819.2 GB/s roofline ceiling)."""
        return self.geometry.total_luns * 3.2e9

    @property
    def max_batch_capacity(self) -> int:
        """Largest batch servable without splitting into sub-batches."""
        return self.num_lun_accelerators * self.max_queries_per_lun

    def sub_batches(self, batch_size: int) -> int:
        """How many sub-batches a batch must split into (Fig. 19)."""
        if batch_size <= 0:
            return 1
        return -(-batch_size // self.max_batch_capacity)
