"""Speculative searching (Section VI-B2, Fig. 12).

While iteration *i*'s Searching stage runs, the Pref Unit launches a
speculative Allocating stage for iteration *i+1*: it fetches the
first-order neighbors' neighbor lists and selects a few second-order
neighbors — preferring those with the most connections back into the
first-order set, since the next entry vertex will be one of the
first-order neighbors and its neighbor list is what iteration *i+1*
will compute.  The speculative Searching stage (computing distances to
the prefetched vertices) overlaps iteration *i*'s Gathering stage, so
its latency hides entirely; if a query's next iteration indeed targets
prefetched vertices (``N_pref  intersect  N_id != empty``), those
distances are already available and iteration *i+1* shrinks.

The cost is extra page reads — the paper reports over half of the
speculated results go unused (Fig. 15 shows page accesses *rising*
under ``da+sp``) yet the overlap still nets up to 1.27x speedup.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.ann.graph import ProximityGraph


def select_speculative_candidates(
    graph: ProximityGraph,
    first_order: np.ndarray,
    width: int,
) -> np.ndarray:
    """Choose up to ``width`` second-order neighbors to prefetch.

    Candidates are neighbors-of-neighbors not already in the
    first-order set, ranked by how many first-order vertices link to
    them (the Pref Unit's "more connections with the first-order
    neighbors" heuristic), ties broken by vertex ID for determinism.
    """
    if width <= 0:
        return np.empty(0, dtype=np.int64)
    first = set(int(v) for v in first_order)
    counts: Counter = Counter()
    for v in first:
        for u in graph.neighbors(v):
            u = int(u)
            if u not in first:
                counts[u] += 1
    if not counts:
        return np.empty(0, dtype=np.int64)
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return np.asarray([u for u, _ in ranked[:width]], dtype=np.int64)


def speculative_hits(
    prefetched: np.ndarray, next_computed: np.ndarray
) -> np.ndarray:
    """Vertices of the next iteration already covered by the prefetch."""
    if prefetched.size == 0 or next_computed.size == 0:
        return np.empty(0, dtype=np.int64)
    return np.intersect1d(prefetched, next_computed)
