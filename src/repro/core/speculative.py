"""Speculative searching (Section VI-B2, Fig. 12).

While iteration *i*'s Searching stage runs, the Pref Unit launches a
speculative Allocating stage for iteration *i+1*: it fetches the
first-order neighbors' neighbor lists and selects a few second-order
neighbors — preferring those with the most connections back into the
first-order set, since the next entry vertex will be one of the
first-order neighbors and its neighbor list is what iteration *i+1*
will compute.  The speculative Searching stage (computing distances to
the prefetched vertices) overlaps iteration *i*'s Gathering stage, so
its latency hides entirely; if a query's next iteration indeed targets
prefetched vertices (``N_pref  intersect  N_id != empty``), those
distances are already available and iteration *i+1* shrinks.

The cost is extra page reads — the paper reports over half of the
speculated results go unused (Fig. 15 shows page accesses *rising*
under ``da+sp``) yet the overlap still nets up to 1.27x speedup.
"""

from __future__ import annotations

import numpy as np

from repro.ann.graph import ProximityGraph


def select_speculative_candidates(
    graph: ProximityGraph,
    first_order: np.ndarray,
    width: int,
) -> np.ndarray:
    """Choose up to ``width`` second-order neighbors to prefetch.

    Candidates are neighbors-of-neighbors not already in the
    first-order set, ranked by how many first-order vertices link to
    them (the Pref Unit's "more connections with the first-order
    neighbors" heuristic), ties broken by vertex ID for determinism.

    Implemented as a CSR gather: one slice of the graph's ``indices``
    per first-order vertex, then a single ``np.unique`` with counts —
    no per-edge Python work, which matters because the serving path
    calls this for every iteration of every trace.
    """
    if width <= 0:
        return np.empty(0, dtype=np.int64)
    first = np.unique(np.asarray(first_order, dtype=np.int64))
    if first.size == 0:
        return np.empty(0, dtype=np.int64)
    starts = graph.indptr[first]
    stops = graph.indptr[first + 1]
    lengths = stops - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Gather all first-order adjacency lists in one shot: offsets[j]
    # enumerates 0..total-1, mapped into each vertex's CSR range.
    offsets = np.arange(total, dtype=np.int64)
    row_ends = np.cumsum(lengths)
    rows = np.searchsorted(row_ends, offsets, side="right")
    gathered = graph.indices[
        starts[rows] + offsets - (row_ends[rows] - lengths[rows])
    ].astype(np.int64)
    # Drop second-order candidates already in the first-order set
    # (``first`` is sorted, so membership is a searchsorted probe).
    pos = np.searchsorted(first, gathered)
    pos[pos == first.size] = first.size - 1
    outside = first[pos] != gathered
    candidates = gathered[outside]
    if candidates.size == 0:
        return np.empty(0, dtype=np.int64)
    ids, counts = np.unique(candidates, return_counts=True)
    # Rank by (-count, id): lexsort keys run least-significant first.
    order = np.lexsort((ids, -counts))
    return ids[order[:width]]


def speculative_hits(
    prefetched: np.ndarray, next_computed: np.ndarray
) -> np.ndarray:
    """Vertices of the next iteration already covered by the prefetch."""
    if prefetched.size == 0 or next_computed.size == 0:
        return np.empty(0, dtype=np.int64)
    return np.intersect1d(prefetched, next_computed)
