"""Vgenerator: the graph-traversal fetch engine (Section IV-C2, Fig. 7a).

The Vgenerator sits next to the SSD controller.  Its Vgen Buffer is
partitioned into Query / NBR / Pref regions; the QP Reader pulls each
query's current entry vertex from the Query Property Table, and a
three-stage pipeline — OFS Fetcher, NBR Fetcher, LUN Fetcher — walks
the LUNCSR arrays to produce, for each entry vertex, its neighbor IDs
(written to the NBR buffer's Nid field) and their LUN IDs (the Lid
field).  The Pref Unit reuses the same pipeline to assemble speculative
second-order candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.luncsr import LUNCSR
from repro.core.speculative import select_speculative_candidates
from repro.ann.graph import ProximityGraph
from repro.sim.stats import Counters


@dataclass
class NbrBufferEntry:
    """One NBR-buffer row: a query's neighbor IDs and their LUN IDs."""

    query_id: int
    entry_vertex: int
    neighbor_ids: np.ndarray
    lun_ids: np.ndarray


@dataclass
class Vgenerator:
    """Functional model of the Vgenerator pipeline."""

    luncsr: LUNCSR
    buffer_bytes: int = 2 * 1024**2
    counters: Counters = field(default_factory=Counters)

    def fetch(self, query_id: int, entry_vertex: int) -> NbrBufferEntry:
        """Run the OFS -> NBR -> LUN pipeline for one entry vertex.

        Each stage is one LUNCSR array lookup; the counters record the
        DRAM traffic the timing model charges for.
        """
        # Stage 1: OFS Fetcher reads offset[v] and offset[v+1].
        self.counters["dram_accesses"] += 2
        # Stage 2: NBR Fetcher reads the neighbor slice.
        neighbor_ids = self.luncsr.neighbors_of(entry_vertex)
        self.counters["dram_accesses"] += max(1, int(neighbor_ids.size))
        # Stage 3: LUN Fetcher reads the LUN array entries.
        lun_ids = self.luncsr.lun[neighbor_ids]
        self.counters["dram_accesses"] += max(1, int(neighbor_ids.size))
        self.counters["vgen_fetches"] += 1
        return NbrBufferEntry(
            query_id=query_id,
            entry_vertex=entry_vertex,
            neighbor_ids=np.asarray(neighbor_ids, dtype=np.int64),
            lun_ids=np.asarray(lun_ids, dtype=np.int64),
        )

    def fetch_batch(
        self, entries: list[tuple[int, int]]
    ) -> list[NbrBufferEntry]:
        """Pipeline a batch of (query, entry-vertex) fetches."""
        return [self.fetch(q, v) for q, v in entries]

    def prefetch(
        self, graph: ProximityGraph, first_order: np.ndarray, width: int
    ) -> np.ndarray:
        """Pref Unit: select second-order candidates for speculation."""
        candidates = select_speculative_candidates(graph, first_order, width)
        self.counters["dram_accesses"] += max(1, int(first_order.size))
        self.counters["prefetch_selections"] += int(candidates.size)
        return candidates

    def pipeline_latency_s(self, n_fetches: int, stage_s: float) -> float:
        """Three-stage pipeline fill + drain latency for n fetches."""
        if n_fetches <= 0:
            return 0.0
        return (n_fetches + 2) * stage_s
