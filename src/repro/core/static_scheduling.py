"""Static scheduling: vertex reordering for spatial locality (Sec. VI-A).

Implements:

* :func:`bandwidth_beta` — the average vertex bandwidth metric of
  Eq. (1): ``beta(G, f) = (1/n) * sum_v max_{j in N(v)} |f(v) - f(j)|``.
  Smaller beta means each vertex's neighbors get labels (and hence
  physical locations) close to its own.
* :func:`degree_ascending_bfs` — the paper's deterministic reordering:
  a BFS rooted at a minimum-degree vertex that enqueues each vertex's
  unvisited neighbors in ascending-degree order.  Runs once, no
  randomness (ties broken by vertex ID), near-optimal beta.
* :func:`random_bfs` — the prior-work baseline [23]: BFS with a random
  root and randomly shuffled neighbor order (the "ran bfs" bars of
  Fig. 14).

Reordering operates on graph topology only, so it is independent of
the SSD's organisation (the paper notes it need not be re-run when
changing devices); the *mapping* step lives in
:mod:`repro.core.placement` and does depend on the geometry.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.ann.graph import ProximityGraph


def _undirected_adjacency(graph: ProximityGraph) -> list[np.ndarray]:
    """Symmetrised neighbor lists (reordering treats edges both ways)."""
    n = graph.num_vertices
    extra: list[list[int]] = [[] for _ in range(n)]
    present: list[set[int]] = [set(graph.neighbors(v).tolist()) for v in range(n)]
    for v in range(n):
        for u in graph.neighbors(v):
            u = int(u)
            if v not in present[u]:
                extra[u].append(v)
                present[u].add(v)
    return [
        np.concatenate([graph.neighbors(v), np.asarray(extra[v], dtype=np.int32)])
        if extra[v]
        else graph.neighbors(v)
        for v in range(n)
    ]


def bandwidth_beta(graph: ProximityGraph, order: np.ndarray | None = None) -> float:
    """Average vertex bandwidth beta(G, f) of Eq. (1).

    ``order`` lists old vertex IDs in new-label order (``order[i]`` is
    the old ID relabeled to ``i``); ``None`` evaluates the identity
    labeling.  Isolated vertices contribute zero.
    """
    n = graph.num_vertices
    if n == 0:
        return 0.0
    label = np.arange(n, dtype=np.int64)
    if order is not None:
        order = np.asarray(order, dtype=np.int64)
        if sorted(order.tolist()) != list(range(n)):
            raise ValueError("order must be a permutation of all vertex IDs")
        label = np.empty(n, dtype=np.int64)
        label[order] = np.arange(n)
    adjacency = _undirected_adjacency(graph)
    total = 0.0
    for v in range(n):
        neigh = adjacency[v]
        if neigh.size:
            total += float(np.abs(label[neigh] - label[v]).max())
    return total / n


def degree_ascending_bfs(graph: ProximityGraph) -> np.ndarray:
    """The paper's degree-ascending breadth-first reordering.

    Deterministic: the root is the minimum-degree vertex (lowest ID on
    ties); each dequeued vertex enqueues its unvisited neighbors sorted
    by ascending degree (then ID).  Disconnected components restart
    from the next unvisited minimum-degree vertex.

    Returns ``order``: old vertex IDs in new-label order.
    """
    n = graph.num_vertices
    adjacency = _undirected_adjacency(graph)
    degrees = np.asarray([a.size for a in adjacency], dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    # Stable min-degree scan order for roots.
    roots_by_degree = np.lexsort((np.arange(n), degrees))
    root_cursor = 0
    while len(order) < n:
        while root_cursor < n and visited[roots_by_degree[root_cursor]]:
            root_cursor += 1
        root = int(roots_by_degree[root_cursor])
        visited[root] = True
        queue: deque[int] = deque([root])
        order.append(root)
        while queue:
            v = queue.popleft()
            neigh = adjacency[v]
            fresh = neigh[~visited[neigh]]
            if fresh.size == 0:
                continue
            # Ascending degree, ties by vertex ID (deterministic).
            fresh_sorted = fresh[np.lexsort((fresh, degrees[fresh]))]
            for u in fresh_sorted:
                u = int(u)
                if not visited[u]:
                    visited[u] = True
                    order.append(u)
                    queue.append(u)
    return np.asarray(order, dtype=np.int64)


def random_bfs(graph: ProximityGraph, seed: int = 0) -> np.ndarray:
    """Random-BFS reordering baseline (random root, shuffled neighbors)."""
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    adjacency = _undirected_adjacency(graph)
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    candidates = rng.permutation(n)
    cursor = 0
    while len(order) < n:
        while cursor < n and visited[candidates[cursor]]:
            cursor += 1
        root = int(candidates[cursor])
        visited[root] = True
        order.append(root)
        queue: deque[int] = deque([root])
        while queue:
            v = queue.popleft()
            fresh = [int(u) for u in adjacency[v] if not visited[u]]
            rng.shuffle(fresh)
            for u in fresh:
                if not visited[u]:
                    visited[u] = True
                    order.append(u)
                    queue.append(u)
    return np.asarray(order, dtype=np.int64)


def figure10_example_graph() -> ProximityGraph:
    """An 8-vertex example in the spirit of Fig. 10 (a..h -> 0..7).

    The figure's exact edge set is not fully recoverable from the
    paper, so we use a structurally similar graph — one pendant
    minimum-degree vertex (h), a hub (d), and a clustered middle —
    that reproduces the figure's qualitative result: the
    degree-ascending BFS achieves lower beta than the original
    labeling and than random BFS, in a single deterministic run.
    """
    # Structural roles: a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7.
    edges = [
        (0, 1), (0, 2), (0, 3),
        (1, 2), (1, 4),
        (2, 3), (2, 5),
        (3, 4), (3, 5), (3, 6),
        (4, 5),
        (6, 7),
    ]
    n = 8
    # The "original" IDs model the random construction order of the
    # paper's example: structurally adjacent vertices get scattered IDs.
    original_id = [3, 6, 0, 5, 2, 7, 1, 4]
    adjacency: list[list[int]] = [[] for _ in range(n)]
    for a, b in edges:
        adjacency[original_id[a]].append(original_id[b])
        adjacency[original_id[b]].append(original_id[a])
    vectors = np.eye(n, dtype=np.float32)
    return ProximityGraph.from_adjacency(vectors, adjacency)
