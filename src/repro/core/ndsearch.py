"""NDSearch: the complete system and its public API.

An :class:`NDSearch` instance wraps a built ANNS index (HNSW, DiskANN,
HCNNG or TOGG — anything exposing ``search_batch`` and ``base_graph``),
applies static scheduling (degree-ascending BFS reordering when
enabled), maps the reordered graph onto the SearSSD flash array, and
offers two execution paths:

* :meth:`search_batch` — the fast path used by experiments: the search
  runs functionally on the host index (recording access traces), the
  traces are remapped to the reordered/physical vertex IDs and replayed
  on the :class:`~repro.core.searssd.SearSSDModel` timing simulator.
  Returns real top-k results *and* a :class:`~repro.sim.stats.SimResult`
  with simulated latency, counters and energy.

* :meth:`search_batch_functional` — the validation path: Algorithm 1
  executed end-to-end through the functional SearSSD device (NAND page
  buffers, SiN MACs, FPGA bitonic sorter).  Bit-identical to a host
  beam search over the same graph; integration tests rely on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ann.graph import ProximityGraph
from repro.ann.trace import SearchTrace, remap_trace
from repro.core.config import NDSearchConfig
from repro.core.placement import map_vertices
from repro.core.processing_model import NDPProcessingModel
from repro.core.searssd import SearSSDDevice, SearSSDModel
from repro.core.speculative import select_speculative_candidates
from repro.core.static_scheduling import degree_ascending_bfs, random_bfs
from repro.flash.ecc import LDPCModel
from repro.sim.energy import EnergyModel
from repro.sim.stats import SimResult


def precompute_speculative_sets(
    traces: list[SearchTrace], graph: ProximityGraph, width: int
) -> list[list[np.ndarray]]:
    """Per-query, per-iteration speculative candidate sets.

    ``sets[q][i]`` is what the Pref Unit would prefetch during query
    ``q``'s iteration ``i`` (second-order neighbors of that iteration's
    computed vertices, ranked by connectivity back into the set).
    Depends only on the graph and traces, so experiments compute it
    once and reuse it across scheduling-flag configurations.
    """
    out: list[list[np.ndarray]] = []
    for trace in traces:
        per_iter: list[np.ndarray] = []
        for record in trace.iterations:
            first_order = np.asarray(record.computed, dtype=np.int64)
            if first_order.size == 0:
                per_iter.append(np.empty(0, dtype=np.int64))
                continue
            per_iter.append(
                select_speculative_candidates(graph, first_order, width)
            )
        out.append(per_iter)
    return out


@dataclass
class NDSearch:
    """The NDSearch system: index + static scheduling + SearSSD.

    Parameters
    ----------
    index:
        A built ANNS index (e.g. :class:`repro.ann.hnsw.HNSWIndex`).
    config:
        System configuration; ``config.flags`` selects which of the
        paper's techniques are active.
    reorder_seed:
        Seed for the ``random_bfs`` alternative (``reorder_mode``).
    reorder_mode:
        ``"ours"`` (degree-ascending BFS, the paper's method),
        ``"random_bfs"`` (prior-work baseline) or ``"none"``.
        Only consulted when ``config.flags.reorder`` is set.
    """

    index: object
    config: NDSearchConfig
    reorder_mode: str = "ours"
    reorder_seed: int = 0
    hard_failure_prob: float = 0.01

    graph: ProximityGraph = field(init=False)
    order: np.ndarray = field(init=False)
    new_id: np.ndarray = field(init=False)
    _model: SearSSDModel = field(init=False, repr=False)
    _device: SearSSDDevice | None = field(default=None, init=False, repr=False)
    _trace_cache: dict = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        base = self.index.base_graph()
        n = base.num_vertices
        if self.config.flags.reorder:
            if self.reorder_mode == "ours":
                self.order = degree_ascending_bfs(base)
            elif self.reorder_mode == "random_bfs":
                self.order = random_bfs(base, seed=self.reorder_seed)
            elif self.reorder_mode == "none":
                self.order = np.arange(n, dtype=np.int64)
            else:
                raise ValueError(f"unknown reorder mode {self.reorder_mode!r}")
        else:
            self.order = np.arange(n, dtype=np.int64)
        self.new_id = np.empty(n, dtype=np.int64)
        self.new_id[self.order] = np.arange(n)
        self.graph = base.relabeled(self.order)
        vector_bytes = self.graph.dim * self.graph.vectors.itemsize
        scheme = "multiplane" if self.config.flags.multiplane else "interleaved"
        placement = map_vertices(
            n, self.config.geometry, vector_bytes, scheme=scheme
        )
        cached = self._cached_vertices()
        self._model = SearSSDModel(
            config=self.config,
            placement=placement,
            dim=self.graph.dim,
            graph=self.graph,
            ldpc=LDPCModel(hard_failure_prob=self.hard_failure_prob),
            cached_vertices=cached,
        )

    @property
    def placement(self):
        """The physical vertex placement of the reordered graph.

        Exposed for layout-sharing platform models (the paper builds
        DS-c/DS-cp on the same static data layout as NDSearch).
        """
        return self._model.placement

    def _cached_vertices(self) -> np.ndarray | None:
        """Hot vertices cacheable in internal DRAM (DiskANN mode)."""
        hot = getattr(self.index, "hot_vertices", None)
        if hot is None:
            return None
        vertices = hot(self.config.hot_cache_fraction)
        return self.new_id[vertices]

    # ---- fast (trace-replay) path ----------------------------------------------
    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        ef: int | None = None,
        dataset: str = "synthetic",
        algorithm: str | None = None,
    ) -> tuple[np.ndarray, np.ndarray, SimResult]:
        """Search a batch; returns (ids, distances, SimResult).

        IDs are in the *original* dataset numbering (the reordering is
        an internal physical-layout concern, invisible to callers).
        """
        ids, dists, traces = self.index.search_batch(queries, k, ef=ef)
        result = self.simulate_traces(
            traces,
            dataset=dataset,
            algorithm=algorithm or type(self.index).__name__.lower(),
        )
        return ids, dists, result

    def _resolve_trace(self, trace: SearchTrace):
        """Remap + speculative sets for one trace, cached by identity.

        Per-query derivations (ID remapping, speculative candidate
        selection) depend only on the single trace and the immutable
        graph/config, never on batch composition — so a trace that
        recurs across batches (the serving layer memoizes per-query
        searches) resolves once.  The entry pins the trace object, so a
        keyed id cannot be recycled onto a different object while the
        entry lives; the ``is`` check makes a stale hit impossible
        either way.  Returning the *same* remapped trace and spec list
        on every hit also lets the SearSSD model reuse its compiled
        replay of the trace.
        """
        entry = self._trace_cache.get(id(trace))  # repro-lint: disable=DET001 -- trace pinned in entry
        if entry is None or entry[0] is not trace:
            remapped = remap_trace(trace, self.new_id)
            spec = None
            if self.config.flags.speculative:
                spec = precompute_speculative_sets(
                    [remapped], self.graph, self.config.speculative_width
                )[0]
            if len(self._trace_cache) >= 8192:
                self._trace_cache.pop(next(iter(self._trace_cache)))
            entry = self._trace_cache[id(trace)] = (trace, remapped, spec)  # repro-lint: disable=DET001
        return entry

    def simulate_traces(
        self,
        traces: list[SearchTrace],
        dataset: str = "synthetic",
        algorithm: str = "hnsw",
    ) -> SimResult:
        """Replay pre-recorded traces on the SearSSD timing model."""
        resolved = [self._resolve_trace(t) for t in traces]
        remapped = [e[1] for e in resolved]
        spec_sets = (
            [e[2] for e in resolved] if self.config.flags.speculative else None
        )
        result = self._model.run_batch(
            remapped, speculative_sets=spec_sets,
            algorithm=algorithm, dataset=dataset,
        )
        EnergyModel.ndsearch().attach(result)
        return result

    # ---- functional (hardware datapath) path ----------------------------------------
    def device(self) -> SearSSDDevice:
        """Lazily build the functional SearSSD device."""
        if self._device is None:
            self._device = SearSSDDevice(self.graph, self.config)
        return self._device

    def search_batch_functional(
        self, queries: np.ndarray, k: int, ef: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run Algorithm 1 through the functional hardware path.

        Results come back in original dataset numbering.
        """
        model = NDPProcessingModel(self.device(), ef=ef, k=k)
        ids, dists = model.run_batch(np.ascontiguousarray(queries, dtype=np.float32))
        mapped = np.where(ids >= 0, self.order[np.clip(ids, 0, None)], -1)
        return mapped, dists
