"""The NDP processing model (Section V, Algorithm 1) — functional path.

The paper replaces the GraphMat-style Scatter/Apply model with one
tailored to NDP: Scatter decouples into **Allocating** (batch-wise
dynamic allocation of queries to LUN accelerators) and **Searching**
(multi-LUN distance computation); Apply decouples into **Gathering**
(query-property-table updates) and **Sorting** (bitonic top-k on the
FPGA).

This module *executes* that model functionally against a real
:class:`~repro.core.searssd.SearSSDDevice`: graph traversal runs on the
"embedded cores" (this class), neighbor fetch on the Vgenerator,
dispatch on the Allocator, distance computation inside the SiN
engines reading bytes out of simulated NAND page buffers, and final
sorting on the FPGA model.  The integration tests assert the results
are identical to the host-side reference search — the co-designed
hardware computes the same answer.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.core.allocator import LunDispatch
from repro.flash.commands import DistanceType, SearchPage, encode_dim, encode_precision
from repro.sim.stats import Counters
from repro.sorting.fpga import FPGASorter

_DISTANCE_CODE = {
    "euclidean": DistanceType.EUCLIDEAN,
    "angular": DistanceType.ANGULAR,
    "inner_product": DistanceType.INNER_PRODUCT,
}


@dataclass
class QueryProperty:
    """One row of the Query Property Table (kept in internal DRAM)."""

    query_id: int
    vector: np.ndarray
    entry_vertex: int
    candidates: list[tuple[float, int]] = field(default_factory=list)
    results: list[tuple[float, int]] = field(default_factory=list)  # max-heap
    visited: set[int] = field(default_factory=set)
    spec_distances: dict[int, float] = field(default_factory=dict)
    done: bool = False
    iterations: int = 0

    def worst_result(self) -> float:
        return -self.results[0][0] if self.results else float("inf")


class NDPProcessingModel:
    """Algorithm 1, executed over a SearSSD device."""

    def __init__(self, device, ef: int, k: int) -> None:
        if ef < k:
            raise ValueError("ef must be >= k")
        self.device = device
        self.ef = ef
        self.k = k
        self.counters = Counters()

    # ---- public entry point --------------------------------------------------
    def run_batch(
        self, queries: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Search a batch; returns (ids, distances) of shape (b, k)."""
        device = self.device
        table = self._init_query_property_table(queries)
        self._seed_entries(table)

        while any(not q.done for q in table):
            active = [q for q in table if not q.done]
            # Entry selection: pop the nearest candidate per query.
            fetch_list: list[tuple[int, int]] = []
            for q in active:
                entry = self._select_entry(q)
                if entry is None:
                    continue
                fetch_list.append((q.query_id, entry))
            if not fetch_list:
                break

            # Scatter / Allocating: Vgenerator + Allocator.
            nbr_entries = device.vgenerator.fetch_batch(fetch_list)
            fresh_entries = []
            for entry in nbr_entries:
                q = table[entry.query_id]
                mask = [int(u) not in q.visited for u in entry.neighbor_ids]
                entry.neighbor_ids = entry.neighbor_ids[mask]
                entry.lun_ids = entry.lun_ids[mask]
                q.visited.update(int(u) for u in entry.neighbor_ids)
                fresh_entries.append(entry)
            if device.config.flags.dynamic_alloc:
                dispatches = list(device.allocator.dispatch(fresh_entries).values())
            else:
                dispatches = device.allocator.dispatch_sequential(fresh_entries)

            # Scatter / Searching: SiN engines compute distances.
            for dispatch in dispatches:
                for result in self._execute_dispatch(table, dispatch):
                    self._reduce(table[result.query_id], result.vertex_id,
                                 result.distance)

            # Apply / Gathering: update the QPT.
            for q in active:
                q.iterations += 1
                self.counters["qpt_updates"] += 1

            if device.config.flags.speculative:
                self._speculate(table, fresh_entries)

        # Apply / Sorting: bitonic top-k on the FPGA.
        return self._sort_results(table)

    # ---- stages ------------------------------------------------------------------
    def _init_query_property_table(self, queries: np.ndarray) -> list[QueryProperty]:
        entry = self.device.graph.entry_point
        return [
            QueryProperty(query_id=i, vector=queries[i], entry_vertex=entry)
            for i in range(queries.shape[0])
        ]

    def _seed_entries(self, table: list[QueryProperty]) -> None:
        """Compute the entry vertex's distance for every query (via SiN)."""
        entry = self.device.graph.entry_point
        dispatch = LunDispatch(lun=self.device.luncsr.lun_of(entry))
        for q in table:
            q.visited.add(entry)
            dispatch.query_ids.append(q.query_id)
            dispatch.vertex_ids.append(entry)
            dispatch.addresses.append(self.device.allocator.generate_address(entry))
        for result in self._execute_dispatch(table, dispatch):
            q = table[result.query_id]
            heapq.heappush(q.candidates, (result.distance, result.vertex_id))
            heapq.heappush(q.results, (-result.distance, result.vertex_id))

    def _select_entry(self, q: QueryProperty) -> int | None:
        """Pop the nearest candidate; apply the termination condition."""
        if not q.candidates:
            q.done = True
            return None
        dist, vertex = heapq.heappop(q.candidates)
        if dist > q.worst_result() and len(q.results) >= self.ef:
            q.done = True
            return None
        return vertex

    def _execute_dispatch(self, table, dispatch: LunDispatch):
        """Run one LUN's worth of <SearchPage> commands, honouring
        multi-plane grouping when the flags and addresses allow it."""
        device = self.device
        accelerator = device.accelerator_of(dispatch.lun)
        code = _DISTANCE_CODE[device.graph.metric.value]
        results = []
        pending: dict[tuple[int, int, int], list[int]] = {}
        for idx, address in enumerate(dispatch.addresses):
            key = (address.block, address.page, address.plane)
            pending.setdefault(key, []).append(idx)

        handled: set[int] = set()
        if device.config.flags.multiplane:
            # Pair up same-(block, page) groups across distinct planes.
            by_page: dict[tuple[int, int], list[tuple[int, int]]] = {}
            for (block, page, plane), idxs in pending.items():
                by_page.setdefault((block, page), []).append((plane, idxs[0]))
            for (block, page), plane_list in by_page.items():
                if len(plane_list) < 2:
                    continue
                commands, work = [], []
                for plane, idx in plane_list:
                    address = dispatch.addresses[idx]
                    commands.append(self._command(address, code))
                    q = table[dispatch.query_ids[idx]]
                    work.append((q.query_id, dispatch.vertex_ids[idx], q.vector))
                    handled.add(idx)
                results.extend(accelerator.execute_multi_plane(commands, work))
                self.counters["multiplane_groups"] += 1

        for idx, address in enumerate(dispatch.addresses):
            if idx in handled:
                continue
            q = table[dispatch.query_ids[idx]]
            vertex = dispatch.vertex_ids[idx]
            if vertex in q.spec_distances:
                # Speculative hit: distance already computed last round.
                results.append(
                    _SpecResult(q.query_id, vertex, q.spec_distances[vertex])
                )
                self.counters["speculative_hits"] += 1
                continue
            command = self._command(
                address, code, page_loc=len(pending[(address.block, address.page,
                                                     address.plane)]) > 1
            )
            results.append(
                accelerator.execute_search_page(command, q.query_id, vertex, q.vector)
            )
        return results

    def _command(self, address, code, page_loc: bool = False) -> SearchPage:
        return SearchPage(
            address=address,
            distance=code,
            fv_dim_code=encode_dim(self.device.graph.dim),
            fv_prec_code=encode_precision(4),
            page_loc_bit=page_loc,
        )

    def _reduce(self, q: QueryProperty, vertex: int, dist: float) -> None:
        """Reduce operator: fold one computed distance into the QPT."""
        if len(q.results) < self.ef or dist < q.worst_result():
            heapq.heappush(q.candidates, (dist, vertex))
            heapq.heappush(q.results, (-dist, vertex))
            if len(q.results) > self.ef:
                heapq.heappop(q.results)

    def _speculate(self, table, fresh_entries) -> None:
        """Prefetch second-order neighbors and precompute distances."""
        device = self.device
        width = device.config.speculative_width
        for entry in fresh_entries:
            if entry.neighbor_ids.size == 0:
                continue
            q = table[entry.query_id]
            if q.done:
                continue
            candidates = device.vgenerator.prefetch(
                device.graph, entry.neighbor_ids, width
            )
            q.spec_distances.clear()
            for vertex in candidates:
                vertex = int(vertex)
                if vertex in q.visited:
                    continue
                accelerator = device.accelerator_of(device.luncsr.lun_of(vertex))
                address = device.allocator.generate_address(vertex)
                code = _DISTANCE_CODE[device.graph.metric.value]
                result = accelerator.execute_search_page(
                    self._command(address, code), q.query_id, vertex, q.vector
                )
                q.spec_distances[vertex] = result.distance
                self.counters["speculative_page_reads"] += 1

    def _sort_results(self, table) -> tuple[np.ndarray, np.ndarray]:
        sorter: FPGASorter = self.device.fpga
        distances = []
        ids = []
        for q in table:
            pairs = sorted((-d, v) for d, v in q.results)
            distances.append(np.asarray([d for d, _ in pairs]))
            ids.append(np.asarray([v for _, v in pairs], dtype=np.int64))
        top_d, top_i, _latency = sorter.sort_result_lists(distances, ids, self.k)
        n = len(table)
        out_ids = np.full((n, self.k), -1, dtype=np.int64)
        out_dists = np.full((n, self.k), np.inf, dtype=np.float64)
        for i, (d, v) in enumerate(zip(top_d, top_i)):
            out_ids[i, : v.size] = v
            out_dists[i, : d.size] = d
        return out_ids, out_dists


@dataclass(frozen=True)
class _SpecResult:
    """A distance served from the speculative buffer (no NAND access)."""

    query_id: int
    vertex_id: int
    distance: float
