"""Vertex-to-flash mapping (paper Section VI-A2, Fig. 11).

After reordering, vertices are written to NAND pages.  Two schemes are
modelled:

* ``interleaved`` — the conventional SSD allocation: consecutive pages
  stripe round-robin across LUNs, cycling planes once per full LUN
  sweep.  This spreads load but leaves the two planes of a LUN holding
  *unrelated* vertex ranges at any given page number, so multi-plane
  reads almost never align.
* ``multiplane`` — the paper's mapping: fill page *i* of plane *j* in
  LUN *m*, then the same page *i* in plane *j+1* of the same LUN, then
  move to the next LUN, and only then advance the page number.
  Adjacent (post-reordering, i.e. topologically close) vertices land on
  the same page number of sibling planes, satisfying the ONFI
  multi-plane restrictions, so one multi-plane command fetches both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.geometry import PhysicalAddress, SSDGeometry


@dataclass
class VertexPlacement:
    """Physical location of every vertex's feature-vector slice.

    Arrays are indexed by (post-reordering) vertex ID.  ``block`` is the
    *logical* block within the plane (the FTL / LUNCSR BLK array tracks
    the physical block).
    """

    geometry: SSDGeometry
    vectors_per_page: int
    lun: np.ndarray
    plane: np.ndarray
    block: np.ndarray
    page: np.ndarray
    slot: np.ndarray
    scheme: str

    @property
    def num_vertices(self) -> int:
        return self.lun.shape[0]

    def address_of(self, vertex: int, vector_bytes: int) -> PhysicalAddress:
        """Full physical address of a vertex's vector."""
        return PhysicalAddress(
            lun=int(self.lun[vertex]),
            plane=int(self.plane[vertex]),
            block=int(self.block[vertex]),
            page=int(self.page[vertex]),
            byte=int(self.slot[vertex]) * vector_bytes,
        )

    def page_key(self, vertex: int) -> tuple[int, int, int, int]:
        """Hashable identity of the page holding ``vertex``."""
        return (
            int(self.lun[vertex]),
            int(self.plane[vertex]),
            int(self.block[vertex]),
            int(self.page[vertex]),
        )

    def page_keys(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorised page identity: one int64 key per vertex."""
        g = self.geometry
        return (
            (
                (self.lun[vertices].astype(np.int64) * g.planes_per_lun
                 + self.plane[vertices])
                * g.blocks_per_plane
                + self.block[vertices]
            )
            * g.pages_per_block
            + self.page[vertices]
        )

    def luns_of(self, vertices: np.ndarray) -> np.ndarray:
        return self.lun[vertices]

    def occupancy_by_lun(self) -> np.ndarray:
        """Vertex count per LUN (used by locality statistics)."""
        return np.bincount(self.lun, minlength=self.geometry.total_luns)


def map_vertices(
    num_vertices: int,
    geometry: SSDGeometry,
    vector_bytes: int,
    scheme: str = "multiplane",
) -> VertexPlacement:
    """Assign vertices (in their current ID order) to flash pages.

    Parameters
    ----------
    num_vertices:
        Number of vertices; IDs 0..n-1 are mapped in order, so callers
        apply reordering by relabeling the graph *before* mapping.
    vector_bytes:
        Bytes per feature-vector slice (vector + per-vertex metadata).
    scheme:
        ``"multiplane"`` (paper Fig. 11) or ``"interleaved"``.
    """
    if scheme not in ("multiplane", "interleaved"):
        raise ValueError(f"unknown mapping scheme {scheme!r}")
    if vector_bytes <= 0:
        raise ValueError("vector_bytes must be positive")
    vpp = geometry.page_size // vector_bytes
    if vpp < 1:
        raise ValueError(
            f"vector ({vector_bytes} B) does not fit a page "
            f"({geometry.page_size} B)"
        )
    n_pages_needed = -(-num_vertices // vpp)
    total_pages = geometry.total_planes * geometry.pages_per_plane
    if n_pages_needed > total_pages:
        raise ValueError(
            f"dataset needs {n_pages_needed} pages but device has {total_pages}"
        )

    n_luns = geometry.total_luns
    n_planes = geometry.planes_per_lun

    # Enumerate page *slots* in fill order, producing for the k-th page
    # written its (lun, plane, plane_page) coordinates.
    slots = np.arange(n_pages_needed, dtype=np.int64)
    if scheme == "multiplane":
        # Fill order: plane fastest, then LUN, then page number.
        plane_idx = slots % n_planes
        lun_idx = (slots // n_planes) % n_luns
        page_idx = slots // (n_planes * n_luns)
    else:
        # Conventional striping: LUN fastest, plane cycles once per
        # LUN sweep, page number advances once per (LUN x plane) cycle.
        lun_idx = slots % n_luns
        plane_idx = (slots // n_luns) % n_planes
        page_idx = slots // (n_luns * n_planes)

    if page_idx.size and page_idx.max() >= geometry.pages_per_plane:
        raise ValueError("mapping overflows plane capacity")

    vertex_ids = np.arange(num_vertices, dtype=np.int64)
    page_of_vertex = vertex_ids // vpp
    slot_in_page = vertex_ids % vpp

    plane_page = page_idx[page_of_vertex]
    return VertexPlacement(
        geometry=geometry,
        vectors_per_page=vpp,
        lun=lun_idx[page_of_vertex].astype(np.int32),
        plane=plane_idx[page_of_vertex].astype(np.int32),
        block=(plane_page // geometry.pages_per_block).astype(np.int32),
        page=(plane_page % geometry.pages_per_block).astype(np.int32),
        slot=slot_in_page.astype(np.int32),
        scheme=scheme,
    )
