"""Dynamic scheduling: batch-wise dynamic allocating (Section VI-B1).

At runtime, the Allocator gathers, per search iteration, every
(query, candidate-vertex) pair in the batch and groups the pairs by the
candidate's LUN (then by plane).  All queries whose candidates live in
the same LUN are dispatched to that LUN's accelerator *together*, so a
page holding candidates of several queries is sensed once and reused
from the page buffer — the temporal-locality win that cuts page
accesses by up to 73% (Fig. 15).

Without dynamic allocating ("w/o ds"), queries are processed
sequentially: each query's candidate pages are sensed on demand and a
page needed by a later query has typically been evicted (page buffers
hold a single page), so cross-query sharing is lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.placement import VertexPlacement


@dataclass
class LunWorklist:
    """Work assigned to one LUN accelerator for one iteration round."""

    lun: int
    pairs: list[tuple[int, int]] = field(default_factory=list)
    """(query ID, vertex ID) pairs to compute in this LUN."""

    def queries(self) -> set[int]:
        return {q for q, _ in self.pairs}

    def vertices(self) -> list[int]:
        return [v for _, v in self.pairs]


def allocate_batch_to_luns(
    pairs: list[tuple[int, int]], placement: VertexPlacement
) -> dict[int, LunWorklist]:
    """Group (query, vertex) pairs by the vertex's LUN.

    This is the Dispatcher of Fig. 7(b): the Alloc Buffer is
    horizontally partitioned by LUN ID, each partition holding the
    queries and neighbor IDs bound for that LUN.
    """
    worklists: dict[int, LunWorklist] = {}
    for query, vertex in pairs:
        lun = int(placement.lun[vertex])
        worklist = worklists.get(lun)
        if worklist is None:
            worklist = LunWorklist(lun=lun)
            worklists[lun] = worklist
        worklist.pairs.append((query, vertex))
    return worklists


def page_loads_with_sharing(
    vertices: np.ndarray, placement: VertexPlacement
) -> tuple[int, int]:
    """Page loads needed to serve ``vertices`` with buffer sharing.

    Returns ``(loads, multiplane_merged)``: distinct pages to sense,
    and how many of those senses can pair into multi-plane operations
    (same LUN, same block+page, different plane — the ONFI
    restrictions the Fig. 11 mapping is designed to satisfy).
    """
    if len(vertices) == 0:
        return 0, 0
    vertices = np.asarray(vertices, dtype=np.int64)
    keys = placement.page_keys(vertices)
    unique_keys = np.unique(keys)
    loads = int(unique_keys.size)
    # A page key encodes (lun, plane, block, page).  Two keys merge if
    # they differ only in the plane field.
    g = placement.geometry
    pages_per_plane_span = g.blocks_per_plane * g.pages_per_block
    plane_field = (unique_keys // pages_per_plane_span) % g.planes_per_lun
    # Key with the plane field zeroed out:
    without_plane = unique_keys - plane_field * pages_per_plane_span
    _, counts = np.unique(without_plane, return_counts=True)
    merged = int(np.sum(counts - 1))
    return loads, merged


def page_loads_without_sharing(
    per_query_vertices: list[np.ndarray], placement: VertexPlacement
) -> tuple[int, int]:
    """Page loads when each query is served independently (w/o ds).

    Pages shared *within* one query's candidate list still count once
    (they arrive in one request), but sharing *across* queries is lost.
    Multi-plane merging applies within a query only.
    """
    loads = 0
    merged = 0
    for vertices in per_query_vertices:
        l, m = page_loads_with_sharing(vertices, placement)
        loads += l
        merged += m
    return loads, merged
