"""NDSearch core: the paper's contribution.

* :mod:`repro.core.config` — system configuration presets.
* :mod:`repro.core.luncsr` — the LUNCSR graph format (CSR + LUN/BLK arrays).
* :mod:`repro.core.placement` — vertex-to-flash mapping (Fig. 11).
* :mod:`repro.core.static_scheduling` — degree-ascending BFS reordering
  and the bandwidth metric beta (Eq. 1).
* :mod:`repro.core.dynamic_scheduling` — batch-wise dynamic allocating.
* :mod:`repro.core.speculative` — speculative searching (Section VI-B2).
* :mod:`repro.core.vgenerator` / :mod:`repro.core.allocator` /
  :mod:`repro.core.sin` — the SearSSD functional units.
* :mod:`repro.core.searssd` — the SearSSD timing model (round-based
  replay of search traces, Algorithm 1).
* :mod:`repro.core.ndsearch` — the complete system and public API.
"""

from repro.core.config import NDSearchConfig, SchedulingFlags
from repro.core.placement import VertexPlacement, map_vertices
from repro.core.luncsr import LUNCSR
from repro.core.static_scheduling import (
    bandwidth_beta,
    degree_ascending_bfs,
    random_bfs,
)
from repro.core.dynamic_scheduling import allocate_batch_to_luns
from repro.core.speculative import select_speculative_candidates
from repro.core.searssd import SearSSDModel
from repro.core.ndsearch import NDSearch

__all__ = [
    "NDSearchConfig",
    "SchedulingFlags",
    "VertexPlacement",
    "map_vertices",
    "LUNCSR",
    "bandwidth_beta",
    "degree_ascending_bfs",
    "random_bfs",
    "allocate_batch_to_luns",
    "select_speculative_candidates",
    "SearSSDModel",
    "NDSearch",
]
