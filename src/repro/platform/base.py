"""The platform protocol: one `simulate` interface for every device model.

Historically the repo grew three incompatible platform surfaces — the
baselines' ``run_batch(traces, profile, ...)``, NDSearch's
``simulate_traces(traces, ...)`` and the DeepStore path that needed a
placement plus trace remapping threaded in by every caller.  The
:class:`PlatformModel` protocol is the single contract all of them now
satisfy: feed it recorded search traces and a dataset profile, get back
a :class:`~repro.sim.stats.SimResult` whose phase timeline obeys the
contract in :meth:`~repro.sim.stats.SimResult.validate_timeline`.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.ann.trace import SearchTrace
from repro.baselines.common import DatasetProfile
from repro.sim.stats import SimResult


@runtime_checkable
class PlatformModel(Protocol):
    """A trace-driven timing model of one search platform.

    ``name`` is the registry/reporting label ("cpu", "ndsearch", ...).
    ``simulate`` replays one batch of recorded traces and returns a
    :class:`SimResult` with makespan, counters, energy and a phase
    timeline.
    """

    name: str

    def simulate(
        self,
        traces: list[SearchTrace],
        profile: DatasetProfile | None = None,
        *,
        algorithm: str = "hnsw",
        dataset: str | None = None,
        cached_vertices: np.ndarray | None = None,
    ) -> SimResult:
        """Simulate one batch of traces on this platform."""
        ...
