"""The named platform registry: ``get("ndsearch").simulate(...)``.

Every platform the paper compares (Figs. 13, 19, 20) is constructible
by name through one factory.  A platform that needs a built index or
an already-constructed :class:`~repro.core.NDSearch` system (for its
reordered layout) takes it via the uniform construction context —
callers never hand-roll adapters again.

Adding a platform is one :func:`register` call::

    @register("myplatform")
    def _build(config, *, index=None, system=None, **_):
        return BaselinePlatform(MyModel(config))
"""

from __future__ import annotations

from typing import Callable

from repro.core.config import NDSearchConfig
from repro.platform.adapters import (
    BaselinePlatform,
    DeepStorePlatform,
    NDSearchPlatform,
)
from repro.platform.base import PlatformModel

#: Factory signature: ``factory(config, *, index, system, reorder_mode,
#: hard_failure_prob) -> PlatformModel``.
PlatformFactory = Callable[..., PlatformModel]

_REGISTRY: dict[str, PlatformFactory] = {}

#: Convenience spellings resolving to canonical registry names.
ALIASES = {"deepstore": "ds-cp", "cpu-tb": "cpu-t"}


def register(name: str, factory: PlatformFactory | None = None):
    """Register a platform factory under ``name`` (also a decorator)."""
    if factory is not None:
        _REGISTRY[name] = factory
        return factory

    def decorator(fn: PlatformFactory) -> PlatformFactory:
        _REGISTRY[name] = fn
        return fn

    return decorator


def available() -> tuple[str, ...]:
    """Canonical platform names, sorted."""
    return tuple(sorted(_REGISTRY))


def get(
    name: str,
    config: NDSearchConfig | None = None,
    *,
    index: object | None = None,
    system: object | None = None,
    reorder_mode: str = "ours",
    hard_failure_prob: float = 0.01,
) -> PlatformModel:
    """Construct the named platform model.

    Parameters
    ----------
    name:
        One of :func:`available` (or an alias in :data:`ALIASES`).
    config:
        Device/host configuration; defaults to
        :meth:`NDSearchConfig.scaled`.
    index / system:
        Construction context for the in-storage platforms: ``system``
        is a pre-built :class:`~repro.core.NDSearch` (reused for its
        reordering/placement — the expensive offline phase); ``index``
        is any built ANNS index from which one is constructed on
        demand.  The host baselines need neither.
    reorder_mode / hard_failure_prob:
        Forwarded to NDSearch construction when ``system`` is absent.
    """
    key = ALIASES.get(name, name)
    factory = _REGISTRY.get(key)
    if factory is None:
        raise ValueError(
            f"unknown platform {name!r}; available: {', '.join(available())}"
        )
    config = config or NDSearchConfig.scaled()
    return factory(
        config,
        index=index,
        system=system,
        reorder_mode=reorder_mode,
        hard_failure_prob=hard_failure_prob,
    )


# =============================================================================
# Built-in platforms
# =============================================================================
def _require_system(
    name: str, config, index, system, reorder_mode, hard_failure_prob
):
    """Resolve the NDSearch companion system for layout-sharing platforms."""
    if system is not None:
        return system
    if index is None:
        raise ValueError(
            f"platform {name!r} needs a built index (index=...) or an "
            "NDSearch system (system=...) for its physical layout"
        )
    from repro.core.ndsearch import NDSearch

    return NDSearch(
        index=index,
        config=config,
        reorder_mode=reorder_mode,
        hard_failure_prob=hard_failure_prob,
    )


@register("cpu")
def _cpu(config, *, index=None, system=None, **_):
    from repro.baselines.cpu import CPUModel

    return BaselinePlatform(CPUModel(timing=config.timing, host=config.host))


@register("cpu-t")
def _cpu_t(config, *, index=None, system=None, **_):
    from repro.baselines.cpu import CPUModel

    return BaselinePlatform(
        CPUModel(timing=config.timing, host=config.host, terabyte_dram=True)
    )


@register("gpu")
def _gpu(config, *, index=None, system=None, **_):
    from repro.baselines.gpu import GPUModel

    return BaselinePlatform(GPUModel(timing=config.timing, host=config.host))


@register("smartssd")
def _smartssd(config, *, index=None, system=None, **_):
    from repro.baselines.smartssd import SmartSSDModel

    return BaselinePlatform(SmartSSDModel(config=config))


@register("ndsearch")
def _ndsearch(
    config, *, index=None, system=None, reorder_mode="ours",
    hard_failure_prob=0.01,
):
    system = _require_system(
        "ndsearch", config, index, system, reorder_mode, hard_failure_prob
    )
    return NDSearchPlatform(system=system)


def _deepstore_factory(level: str) -> PlatformFactory:
    def build(
        config, *, index=None, system=None, reorder_mode="ours",
        hard_failure_prob=0.01,
    ):
        from repro.baselines.deepstore import DeepStoreModel

        name = "ds-cp" if level == "chip" else "ds-c"
        companion = _require_system(
            name, config, index, system, reorder_mode, hard_failure_prob
        )
        model = DeepStoreModel(
            config=config, placement=companion.placement, level=level
        )
        return DeepStorePlatform(system=companion, model=model)

    return build


register("ds-cp", _deepstore_factory("chip"))
register("ds-c", _deepstore_factory("channel"))
