"""repro.platform — the unified platform layer.

One interface for every device model the paper compares::

    from repro import platform

    model = platform.get("ndsearch", config, index=index)
    result = model.simulate(traces, profile)     # -> SimResult

``result`` carries the makespan, event counters, energy *and* a phase
timeline — ordered ``(stage, start, end)`` occupancy segments per
pipeline resource — which is what lets the serving layer overlap
consecutive batches on a device (pipelined shard queues) instead of
treating every platform as a one-batch-at-a-time black box.

Registered platforms: ``cpu``, ``cpu-t``, ``gpu``, ``smartssd``,
``ds-c``, ``ds-cp`` (alias ``deepstore``) and ``ndsearch``.  New
platforms are one :func:`register` call — see
:mod:`repro.platform.registry`.
"""

from repro.platform.adapters import (
    BaselinePlatform,
    DeepStorePlatform,
    NDSearchPlatform,
)
from repro.platform.base import PlatformModel
from repro.platform.registry import ALIASES, available, get, register

__all__ = [
    "ALIASES",
    "BaselinePlatform",
    "DeepStorePlatform",
    "NDSearchPlatform",
    "PlatformModel",
    "available",
    "get",
    "register",
]
