"""Adapters giving every device model the `PlatformModel` interface.

Three shapes cover the repo:

* :class:`BaselinePlatform` — the stateless host-side models
  (CPU / CPU-T / GPU / SmartSSD) whose ``run_batch`` already consumes
  original-ID traces directly.
* :class:`NDSearchPlatform` — a built :class:`~repro.core.NDSearch`
  system; trace remapping to the reordered physical layout, the
  speculative-set cache and energy attachment all live inside
  ``simulate_traces``.
* :class:`DeepStorePlatform` — the DS-c/DS-cp models, which share
  NDSearch's static layout per the paper's methodology: the adapter
  remaps traces (and the hot-vertex cache) through the companion
  NDSearch system's vertex renumbering before pricing them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ann.trace import SearchTrace, remap_trace
from repro.baselines.common import DatasetProfile
from repro.baselines.cpu import CPUModel
from repro.baselines.deepstore import DeepStoreModel
from repro.baselines.gpu import GPUModel
from repro.baselines.smartssd import SmartSSDModel
from repro.core.ndsearch import NDSearch
from repro.sim.stats import SimResult


@dataclass
class BaselinePlatform:
    """A host-side baseline model behind the platform interface."""

    model: CPUModel | GPUModel | SmartSSDModel
    name: str = field(default="")

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.model.platform

    def simulate(
        self,
        traces: list[SearchTrace],
        profile: DatasetProfile | None = None,
        *,
        algorithm: str = "hnsw",
        dataset: str | None = None,
        cached_vertices: np.ndarray | None = None,
    ) -> SimResult:
        if profile is None:
            raise ValueError(f"platform {self.name!r} needs a DatasetProfile")
        result = self.model.run_batch(
            traces, profile, algorithm, cached_vertices=cached_vertices
        )
        if dataset is not None:
            result.dataset = dataset
        return result


@dataclass
class NDSearchPlatform:
    """A built NDSearch system behind the platform interface.

    The hot-vertex cache is configured at system construction (from the
    index's ``hot_vertices``), so ``cached_vertices`` is ignored here —
    passing a different set per batch would contradict the device's
    provisioned internal-DRAM contents.
    """

    system: NDSearch
    name: str = "ndsearch"

    def simulate(
        self,
        traces: list[SearchTrace],
        profile: DatasetProfile | None = None,
        *,
        algorithm: str = "hnsw",
        dataset: str | None = None,
        cached_vertices: np.ndarray | None = None,
    ) -> SimResult:
        if dataset is None:
            dataset = profile.name if profile is not None else "synthetic"
        return self.system.simulate_traces(
            traces, dataset=dataset, algorithm=algorithm
        )


@dataclass
class DeepStorePlatform:
    """A DS-c / DS-cp model sharing an NDSearch system's static layout."""

    system: NDSearch
    model: DeepStoreModel
    name: str = field(default="")

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.model.platform

    def simulate(
        self,
        traces: list[SearchTrace],
        profile: DatasetProfile | None = None,
        *,
        algorithm: str = "hnsw",
        dataset: str | None = None,
        cached_vertices: np.ndarray | None = None,
    ) -> SimResult:
        if profile is None:
            raise ValueError(f"platform {self.name!r} needs a DatasetProfile")
        remapped = [remap_trace(t, self.system.new_id) for t in traces]
        hot = (
            self.system.new_id[cached_vertices]
            if cached_vertices is not None
            else None
        )
        result = self.model.run_batch(
            remapped, profile, algorithm, cached_vertices=hot
        )
        if dataset is not None:
            result.dataset = dataset
        return result
