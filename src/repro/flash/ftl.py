"""Flash translation layer with block-level refreshing (Section II-B2).

The search phase of ANNS is read-only, but NAND still needs periodic
*data refreshing* (retention / read-disturb) which relocates blocks and
therefore changes physical addresses.  The paper adopts *block-level*
refreshing constrained to stay **within the source plane** (Section
VI-A2), so multi-plane parallelism established by the static mapping is
preserved, and integrates logical-to-physical translation into the
LUNCSR arrays: when a block moves, the FTL updates the LUN/BLK arrays
the same way a conventional FTL updates its mapping table.

This module implements that mechanism: per-plane block maps, a refresh
operation that relocates a block to a free block in the same plane, and
a subscriber callback so LUNCSR can mirror every relocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.flash.geometry import SSDGeometry


@dataclass(frozen=True)
class RefreshEvent:
    """One block relocation performed by the FTL."""

    lun: int
    plane: int
    old_block: int
    new_block: int

    def latency_s(self, timing, pages_valid: int) -> float:
        """Read + program each valid page, then erase the old block."""
        per_page = timing.read_page_s + timing.program_page_s
        return pages_valid * per_page + timing.erase_block_s


class FlashTranslationLayer:
    """Block-granularity L2P mapping with in-plane refresh.

    ``block_map[lun, plane, logical_block]`` gives the current physical
    block.  ``reserved_per_plane`` blocks at the top of each plane are
    kept free as refresh destinations (over-provisioning).
    """

    def __init__(
        self,
        geometry: SSDGeometry,
        reserved_per_plane: int = 2,
        seed: int = 17,
        read_disturb_threshold: int = 100_000,
    ) -> None:
        if reserved_per_plane < 1:
            raise ValueError("need at least one reserved block per plane")
        if reserved_per_plane >= geometry.blocks_per_plane:
            raise ValueError("reserved blocks exceed plane capacity")
        if read_disturb_threshold < 1:
            raise ValueError("read_disturb_threshold must be positive")
        self.geometry = geometry
        self.reserved_per_plane = reserved_per_plane
        self.usable_blocks = geometry.blocks_per_plane - reserved_per_plane
        self.read_disturb_threshold = read_disturb_threshold
        self._rng = np.random.default_rng(seed)
        n_luns = geometry.total_luns
        n_planes = geometry.planes_per_lun
        # Identity mapping initially; free list holds the reserved blocks.
        self.block_map = np.tile(
            np.arange(self.usable_blocks, dtype=np.int64), (n_luns, n_planes, 1)
        )
        self._free: list[list[list[int]]] = [
            [
                list(range(self.usable_blocks, geometry.blocks_per_plane))
                for _ in range(n_planes)
            ]
            for _ in range(n_luns)
        ]
        self.refresh_log: list[RefreshEvent] = []
        self._subscribers: list[Callable[[RefreshEvent], None]] = []
        # Wear/endurance accounting: reads since last refresh (keyed by
        # *logical* block, the unit the FTL reasons about) and erase
        # counts per *physical* block (what actually wears out).
        self.read_counts = np.zeros(
            (n_luns, n_planes, self.usable_blocks), dtype=np.int64
        )
        self.erase_counts = np.zeros(
            (n_luns, n_planes, geometry.blocks_per_plane), dtype=np.int64
        )
        self.program_counts = np.zeros(
            (n_luns, n_planes, geometry.blocks_per_plane), dtype=np.int64
        )
        # Write-amplification ledger: host pages are what the layers
        # above asked to write (migrations, initial placement); NAND
        # pages add the FTL's own relocation traffic on top.
        self.host_pages_written = 0
        self.nand_pages_written = 0

    # ---- translation -----------------------------------------------------
    def physical_block(self, lun: int, plane: int, logical_block: int) -> int:
        """Translate a logical block to its current physical block."""
        if not 0 <= logical_block < self.usable_blocks:
            raise ValueError(f"logical block {logical_block} out of range")
        return int(self.block_map[lun, plane, logical_block])

    def subscribe(self, callback: Callable[[RefreshEvent], None]) -> None:
        """Register a callback fired on every refresh (LUNCSR mirror)."""
        self._subscribers.append(callback)

    # ---- refreshing ----------------------------------------------------------
    def refresh_block(
        self,
        lun: int,
        plane: int,
        logical_block: int,
        pages_valid: int | None = None,
    ) -> RefreshEvent:
        """Relocate one logical block to a free block in the same plane.

        The old physical block returns to the plane's free list, so
        refreshes can continue indefinitely.  Raises if the plane has no
        free destination (cannot happen with >= 1 reserved block).

        ``pages_valid`` (default: a full block) is how many pages the
        relocation rewrites — FTL-internal traffic, charged to
        ``nand_pages_written`` but never ``host_pages_written``, which
        is what makes write amplification measurable.
        """
        if pages_valid is None:
            pages_valid = self.geometry.pages_per_block
        free = self._free[lun][plane]
        if not free:
            raise RuntimeError(f"plane ({lun},{plane}) has no free refresh block")
        old = int(self.block_map[lun, plane, logical_block])
        new = free.pop(0)
        self.block_map[lun, plane, logical_block] = new
        free.append(old)
        self.read_counts[lun, plane, logical_block] = 0
        self.erase_counts[lun, plane, old] += 1  # old block is erased
        self.program_counts[lun, plane, new] += 1
        self.nand_pages_written += int(pages_valid)
        event = RefreshEvent(lun=lun, plane=plane, old_block=old, new_block=new)
        self.refresh_log.append(event)
        for callback in self._subscribers:
            callback(event)
        return event

    # ---- host writes / erases (migration accounting) ---------------------
    def program_block(
        self, lun: int, plane: int, logical_block: int, pages: int | None = None
    ) -> None:
        """Account a host program of ``pages`` pages into a logical block.

        Data placement is static (the paper's multi-plane mapping), so
        programming does not move the block — it only books endurance:
        the physical block's program count and both sides of the
        write-amplification ledger (host writes are NAND writes too).
        """
        if not 0 <= logical_block < self.usable_blocks:
            raise ValueError(f"logical block {logical_block} out of range")
        if pages is None:
            pages = self.geometry.pages_per_block
        phys = int(self.block_map[lun, plane, logical_block])
        self.program_counts[lun, plane, phys] += 1
        self.host_pages_written += int(pages)
        self.nand_pages_written += int(pages)

    def erase_block_in_place(self, lun: int, plane: int, logical_block: int) -> None:
        """Erase a logical block's physical block without relocating it.

        Used when the host frees a block's contents (e.g. a cluster
        migrated away): the mapping is untouched, the read-disturb
        counter resets with the cells, and the erase wears the block.
        """
        if not 0 <= logical_block < self.usable_blocks:
            raise ValueError(f"logical block {logical_block} out of range")
        phys = int(self.block_map[lun, plane, logical_block])
        self.erase_counts[lun, plane, phys] += 1
        self.read_counts[lun, plane, logical_block] = 0

    # ---- read disturbance (the reason refreshing exists) -------------------
    def record_read(self, lun: int, plane: int, logical_block: int) -> bool:
        """Count one page read; returns True if the block crossed the
        read-disturb threshold and must be refreshed.

        The search phase of ANNS is read-only, but NAND cells disturb
        their block-mates on every read — after enough reads the block
        must be rewritten (Section II-B2).  The SSD calls this on every
        sensed page and triggers :meth:`refresh_block` on True.
        """
        if not 0 <= logical_block < self.usable_blocks:
            raise ValueError(f"logical block {logical_block} out of range")
        self.read_counts[lun, plane, logical_block] += 1
        return bool(
            self.read_counts[lun, plane, logical_block]
            >= self.read_disturb_threshold
        )

    def record_reads(
        self,
        luns: np.ndarray,
        planes: np.ndarray,
        blocks: np.ndarray,
        counts: np.ndarray,
    ) -> list[tuple[int, int, int]]:
        """Bulk :meth:`record_read`: accumulate page reads per block.

        The serving loop records thousands of page reads per dispatched
        batch; looping :meth:`record_read` would dominate the event
        handler.  ``np.add.at`` handles repeated triples correctly, and
        the returned list names every ``(lun, plane, logical_block)``
        that now sits at or above the disturb threshold — in ascending
        (lun, plane, block) order, so callers scheduling refreshes stay
        deterministic.
        """
        luns = np.asarray(luns, dtype=np.int64)
        planes = np.asarray(planes, dtype=np.int64)
        blocks = np.asarray(blocks, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if blocks.size and (blocks.min() < 0 or blocks.max() >= self.usable_blocks):
            raise ValueError("logical block out of range")
        np.add.at(self.read_counts, (luns, planes, blocks), counts)
        touched = self.read_counts[luns, planes, blocks]
        due = touched >= self.read_disturb_threshold
        if not due.any():
            return []
        triples = {
            (int(l), int(p), int(b))
            for l, p, b in zip(luns[due], planes[due], blocks[due])
        }
        return sorted(triples)

    def wear_summary(self) -> dict[str, float]:
        """Endurance statistics over the physical blocks."""
        erases = self.erase_counts
        return {
            "total_erases": float(erases.sum()),
            "max_erases": float(erases.max()),
            "mean_erases": float(erases.mean()),
        }

    def gc_summary(self) -> dict[str, float]:
        """Garbage-collection / write-amplification statistics.

        Write amplification is NAND pages over host pages — 1.0 when
        the FTL never relocated anything, growing as read-disturb
        refreshes rewrite blocks the host only ever read.
        """
        host = self.host_pages_written
        nand = self.nand_pages_written
        return {
            "refreshes": float(len(self.refresh_log)),
            "host_pages_written": float(host),
            "nand_pages_written": float(nand),
            "write_amplification": float(nand) / host if host else 0.0,
            "total_erases": float(self.erase_counts.sum()),
        }

    def refresh_random_blocks(self, count: int) -> list[RefreshEvent]:
        """Refresh ``count`` uniformly chosen (lun, plane, block) triples.

        Used by the tests and the ECC/endurance experiment to exercise
        address churn during a search workload.
        """
        events = []
        for _ in range(count):
            lun = int(self._rng.integers(self.geometry.total_luns))
            plane = int(self._rng.integers(self.geometry.planes_per_lun))
            block = int(self._rng.integers(self.usable_blocks))
            events.append(self.refresh_block(lun, plane, block))
        return events

    # ---- invariants -------------------------------------------------------------
    def check_consistency(self) -> None:
        """Verify the mapping stays a bijection within every plane."""
        for lun in range(self.geometry.total_luns):
            for plane in range(self.geometry.planes_per_lun):
                mapped = set(int(b) for b in self.block_map[lun, plane])
                free = set(self._free[lun][plane])
                if mapped & free:
                    raise AssertionError(
                        f"plane ({lun},{plane}): blocks both mapped and free"
                    )
                if len(mapped) != self.usable_blocks:
                    raise AssertionError(
                        f"plane ({lun},{plane}): mapping is not injective"
                    )
                universe = mapped | free
                if universe != set(range(self.geometry.blocks_per_plane)):
                    raise AssertionError(
                        f"plane ({lun},{plane}): blocks lost ({len(universe)})"
                    )
