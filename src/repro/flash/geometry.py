"""SSD physical organisation and addressing (paper Section II-B1).

NAND flash is organised hierarchically: channels contain chips, chips
contain LUNs (the minimal unit that executes commands independently),
LUNs contain planes, planes contain blocks, blocks contain pages.  A
flash address splits into a *row address* (LUN, block, page) and a
*column address* (byte/word within a page), as in the paper's Fig. 5(b)
and Fig. 9(b).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class PhysicalAddress:
    """Full physical location of a byte range inside the SSD.

    ``lun`` is the *global* LUN index (across all channels/chips); the
    geometry provides conversions to per-channel/per-chip coordinates.
    """

    lun: int
    plane: int
    block: int
    page: int
    byte: int = 0

    def row_address(self, geometry: "SSDGeometry") -> int:
        """Pack (lun, plane, block, page) into the ONFI-style row address.

        Layout (low to high): page bits, block bits, plane bits, LUN
        bits — matching the 26-bit row-address field of the paper's
        ``<SearchPage>`` instruction at paper-scale geometry.
        """
        addr = self.page
        addr |= self.block << geometry.page_bits
        addr |= self.plane << (geometry.page_bits + geometry.block_bits)
        addr |= self.lun << (geometry.page_bits + geometry.block_bits + geometry.plane_bits)
        return addr

    def column_address(self) -> int:
        """Byte offset within the page (the ONFI column address)."""
        return self.byte


def _bits_for(n: int) -> int:
    """Number of address bits needed to index ``n`` items."""
    if n <= 1:
        return 0
    return (n - 1).bit_length()


@dataclass(frozen=True)
class SSDGeometry:
    """Static shape of the NAND storage array.

    The paper's SearSSD configuration (Section IV-C) is 32 channels x
    4 chips x 4 planes per chip with 2 planes per LUN (so 2 LUNs per
    chip), 512 blocks per plane, 128 pages per block, 16 KB pages —
    512 GB total, 256 LUNs.  Use :meth:`paper` for that preset and
    :meth:`scaled` for the laptop-scale preset used by the benchmarks.
    """

    channels: int = 32
    chips_per_channel: int = 4
    luns_per_chip: int = 2
    planes_per_lun: int = 2
    blocks_per_plane: int = 512
    pages_per_block: int = 128
    page_size: int = 16 * 1024

    def __post_init__(self) -> None:
        for name in (
            "channels",
            "chips_per_channel",
            "luns_per_chip",
            "planes_per_lun",
            "blocks_per_plane",
            "pages_per_block",
            "page_size",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @classmethod
    def paper(cls) -> "SSDGeometry":
        """The 512 GB SearSSD configuration from the paper."""
        return cls()

    @classmethod
    def scaled(cls) -> "SSDGeometry":
        """Benchmark-scale geometry preserving the hierarchy shape.

        4 channels x 2 chips x 2 LUNs x 2 planes = 32 planes / 16 LUNs,
        with small blocks so that the scaled datasets span many pages
        and blocks the way billion-vector datasets span the paper-scale
        device.
        """
        return cls(
            channels=4,
            chips_per_channel=2,
            luns_per_chip=2,
            planes_per_lun=2,
            blocks_per_plane=64,
            pages_per_block=32,
            page_size=4 * 1024,
        )

    # ---- derived sizes -------------------------------------------------
    @property
    def planes_per_chip(self) -> int:
        return self.luns_per_chip * self.planes_per_lun

    @property
    def luns_per_channel(self) -> int:
        return self.chips_per_channel * self.luns_per_chip

    @property
    def total_chips(self) -> int:
        return self.channels * self.chips_per_channel

    @property
    def total_luns(self) -> int:
        return self.channels * self.luns_per_channel

    @property
    def total_planes(self) -> int:
        return self.total_luns * self.planes_per_lun

    @property
    def pages_per_plane(self) -> int:
        return self.blocks_per_plane * self.pages_per_block

    @property
    def pages_per_lun(self) -> int:
        return self.pages_per_plane * self.planes_per_lun

    @property
    def block_size(self) -> int:
        return self.pages_per_block * self.page_size

    @property
    def capacity_bytes(self) -> int:
        return self.total_planes * self.pages_per_plane * self.page_size

    # ---- address bit widths -------------------------------------------
    @property
    def page_bits(self) -> int:
        return _bits_for(self.pages_per_block)

    @property
    def block_bits(self) -> int:
        return _bits_for(self.blocks_per_plane)

    @property
    def plane_bits(self) -> int:
        return _bits_for(self.planes_per_lun)

    @property
    def lun_bits(self) -> int:
        return _bits_for(self.total_luns)

    @property
    def row_address_bits(self) -> int:
        return self.page_bits + self.block_bits + self.plane_bits + self.lun_bits

    # ---- coordinate conversions ----------------------------------------
    def channel_of_lun(self, lun: int) -> int:
        """Channel that a global LUN index lives on."""
        self._check_lun(lun)
        return lun // self.luns_per_channel

    def chip_of_lun(self, lun: int) -> int:
        """Global chip index of a global LUN index."""
        self._check_lun(lun)
        return lun // self.luns_per_chip

    def lun_within_chip(self, lun: int) -> int:
        self._check_lun(lun)
        return lun % self.luns_per_chip

    def global_lun(self, channel: int, chip: int, lun_in_chip: int) -> int:
        """Compose a global LUN index from hierarchical coordinates."""
        if not 0 <= channel < self.channels:
            raise ValueError(f"channel {channel} out of range")
        if not 0 <= chip < self.chips_per_channel:
            raise ValueError(f"chip {chip} out of range")
        if not 0 <= lun_in_chip < self.luns_per_chip:
            raise ValueError(f"lun {lun_in_chip} out of range")
        return (channel * self.chips_per_channel + chip) * self.luns_per_chip + lun_in_chip

    def global_plane(self, address: PhysicalAddress) -> int:
        """Flat plane index for an address (for per-plane statistics)."""
        self.validate(address)
        return address.lun * self.planes_per_lun + address.plane

    def page_key(self, address: PhysicalAddress) -> tuple[int, int, int, int]:
        """Hashable identity of the page holding ``address``."""
        return (address.lun, address.plane, address.block, address.page)

    def validate(self, address: PhysicalAddress) -> None:
        """Raise ``ValueError`` if the address is outside the geometry."""
        self._check_lun(address.lun)
        if not 0 <= address.plane < self.planes_per_lun:
            raise ValueError(f"plane {address.plane} out of range")
        if not 0 <= address.block < self.blocks_per_plane:
            raise ValueError(f"block {address.block} out of range")
        if not 0 <= address.page < self.pages_per_block:
            raise ValueError(f"page {address.page} out of range")
        if not 0 <= address.byte < self.page_size:
            raise ValueError(f"byte {address.byte} out of range")

    def _check_lun(self, lun: int) -> None:
        if not 0 <= lun < self.total_luns:
            raise ValueError(f"lun {lun} out of range (total {self.total_luns})")

    def address_of_flat_page(self, flat_page: int) -> PhysicalAddress:
        """Inverse of page enumeration: flat page index -> address.

        Pages are enumerated plane-major within a LUN: for LUN l, plane
        p, block b, page g the flat index is
        ``((l * planes + p) * blocks + b) * pages + g``.
        """
        total_pages = self.total_planes * self.pages_per_plane
        if not 0 <= flat_page < total_pages:
            raise ValueError(f"flat page {flat_page} out of range")
        page = flat_page % self.pages_per_block
        rest = flat_page // self.pages_per_block
        block = rest % self.blocks_per_plane
        rest //= self.blocks_per_plane
        plane = rest % self.planes_per_lun
        lun = rest // self.planes_per_lun
        return PhysicalAddress(lun=lun, plane=plane, block=block, page=page)

    def flat_page_index(self, address: PhysicalAddress) -> int:
        """Flat page enumeration (see :meth:`address_of_flat_page`)."""
        self.validate(address)
        return (
            (address.lun * self.planes_per_lun + address.plane) * self.blocks_per_plane
            + address.block
        ) * self.pages_per_block + address.page
