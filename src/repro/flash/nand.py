"""Functional NAND array model: planes, LUNs, chips and page buffers.

This is the *functional* layer of the flash substrate: it actually
stores bytes, tracks which page each plane's page buffer currently
holds, and honours the multi-plane addressing restrictions when asked
to perform multi-plane reads.  The timing layer (platform models) books
latencies separately using :class:`repro.flash.timing.FlashTiming`; the
functional layer is what the unit and property tests exercise to show
that data written is data read, across refreshes and corruption.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.flash.commands import validate_multi_plane_group
from repro.flash.geometry import PhysicalAddress, SSDGeometry


@dataclass
class Plane:
    """One plane: a block array plus a single page buffer."""

    geometry: SSDGeometry
    lun_index: int
    plane_index: int
    _store: dict[tuple[int, int], np.ndarray] = field(default_factory=dict, repr=False)
    buffered_page: tuple[int, int] | None = None
    page_loads: int = 0
    buffer_hits: int = 0

    def program(self, block: int, page: int, data: np.ndarray) -> None:
        """Program one page (used to lay out the dataset)."""
        if data.dtype != np.uint8:
            raise TypeError("pages store uint8 bytes")
        if data.size > self.geometry.page_size:
            raise ValueError(
                f"data ({data.size} B) exceeds page size {self.geometry.page_size}"
            )
        padded = np.zeros(self.geometry.page_size, dtype=np.uint8)
        padded[: data.size] = data
        self._store[(block, page)] = padded

    def load_page(self, block: int, page: int) -> bool:
        """Sense a page into the page buffer.

        Returns True if the page was already buffered (a page-buffer
        hit, free) and False if a real array read happened.
        """
        key = (block, page)
        if self.buffered_page == key:
            self.buffer_hits += 1
            return True
        self.buffered_page = key
        self.page_loads += 1
        return False

    def read_buffer(self, byte: int, length: int) -> np.ndarray:
        """Read bytes out of the current page buffer (column access)."""
        if self.buffered_page is None:
            raise RuntimeError("no page sensed into the buffer")
        if byte + length > self.geometry.page_size:
            raise ValueError("column read crosses the page boundary")
        data = self._store.get(self.buffered_page)
        if data is None:
            return np.zeros(length, dtype=np.uint8)
        return data[byte : byte + length].copy()

    def erase(self, block: int) -> None:
        """Erase a block (drop its pages)."""
        for key in [k for k in self._store if k[0] == block]:
            del self._store[key]
        if self.buffered_page is not None and self.buffered_page[0] == block:
            self.buffered_page = None

    def move_block(self, old_block: int, new_block: int) -> int:
        """Relocate a block's valid pages (FTL refresh). Returns count."""
        moved = 0
        for (blk, page) in [k for k in self._store if k[0] == old_block]:
            self._store[(new_block, page)] = self._store.pop((blk, page))
            moved += 1
        if self.buffered_page is not None and self.buffered_page[0] == old_block:
            self.buffered_page = None
        return moved

    @property
    def programmed_pages(self) -> int:
        return len(self._store)


@dataclass
class Lun:
    """A LUN: the minimal independently commanded unit (>=1 planes)."""

    geometry: SSDGeometry
    lun_index: int
    planes: list[Plane] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.planes:
            self.planes = [
                Plane(self.geometry, self.lun_index, p)
                for p in range(self.geometry.planes_per_lun)
            ]

    def read(self, address: PhysicalAddress, length: int) -> np.ndarray:
        """Single-plane read: sense + column read."""
        if address.lun != self.lun_index:
            raise ValueError("address targets a different LUN")
        plane = self.planes[address.plane]
        plane.load_page(address.block, address.page)
        return plane.read_buffer(address.byte, length)

    def multi_plane_read(
        self, addresses: list[PhysicalAddress], length: int
    ) -> list[np.ndarray]:
        """Simultaneous sense on multiple planes (one command sequence).

        Validates the ONFI restrictions first; all senses count as one
        parallel operation (the timing layer charges a single tR).
        """
        validate_multi_plane_group(addresses)
        if addresses[0].lun != self.lun_index:
            raise ValueError("multi-plane group targets a different LUN")
        out = []
        for address in addresses:
            plane = self.planes[address.plane]
            plane.load_page(address.block, address.page)
            out.append(plane.read_buffer(address.byte, length))
        return out

    @property
    def page_loads(self) -> int:
        return sum(p.page_loads for p in self.planes)


@dataclass
class FlashChip:
    """A flash chip: a group of LUNs sharing the chip's data bus."""

    geometry: SSDGeometry
    chip_index: int
    luns: list[Lun] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.luns:
            base = self.chip_index * self.geometry.luns_per_chip
            self.luns = [
                Lun(self.geometry, base + i) for i in range(self.geometry.luns_per_chip)
            ]

    def lun(self, global_lun: int) -> Lun:
        local = global_lun - self.chip_index * self.geometry.luns_per_chip
        if not 0 <= local < self.geometry.luns_per_chip:
            raise ValueError(f"LUN {global_lun} is not on chip {self.chip_index}")
        return self.luns[local]
