"""The assembled SSD device: chips + FTL + ECC + internal DRAM model.

Functional container used both by SearSSD (which adds in-LUN compute)
and by the baseline platform timing models (which read whole pages out
of it).  All addressing through this class uses *logical* block numbers
— the FTL translates to physical blocks, so block-level refreshing is
transparent to readers, exactly as Section II-B2 describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.flash.ecc import BERModel, LDPCModel
from repro.flash.ftl import FlashTranslationLayer
from repro.flash.geometry import PhysicalAddress, SSDGeometry
from repro.flash.nand import FlashChip
from repro.flash.timing import FlashTiming
from repro.sim.stats import Counters


@dataclass
class SSD:
    """A complete (modified-capable) SSD device.

    Parameters
    ----------
    geometry / timing:
        Physical shape and latency constants.
    dram_bytes:
        Internal DRAM capacity (paper: 4 GB) available for the LUNCSR
        index arrays and the query property table.
    ldpc:
        ECC decode model (hard-decision failure probability knob).
    """

    geometry: SSDGeometry = field(default_factory=SSDGeometry.scaled)
    timing: FlashTiming = field(default_factory=FlashTiming)
    dram_bytes: int = 4 * 1024**3
    ldpc: LDPCModel = field(default_factory=LDPCModel)
    chips: list[FlashChip] = field(default_factory=list)
    ftl: FlashTranslationLayer = field(init=False)
    ber: BERModel = field(init=False)
    counters: Counters = field(default_factory=Counters)

    def __post_init__(self) -> None:
        if not self.chips:
            self.chips = [
                FlashChip(self.geometry, i) for i in range(self.geometry.total_chips)
            ]
        self.ftl = FlashTranslationLayer(self.geometry)
        self.ber = BERModel(self.geometry.total_planes)

    # ---- helpers -----------------------------------------------------------
    def _chip_of(self, lun: int) -> FlashChip:
        return self.chips[self.geometry.chip_of_lun(lun)]

    def _physical(self, address: PhysicalAddress) -> PhysicalAddress:
        """Translate logical block -> physical block via the FTL."""
        physical_block = self.ftl.physical_block(
            address.lun, address.plane, address.block
        )
        if physical_block == address.block:
            return address
        return PhysicalAddress(
            lun=address.lun,
            plane=address.plane,
            block=physical_block,
            page=address.page,
            byte=address.byte,
        )

    # ---- functional access --------------------------------------------------
    def program(self, address: PhysicalAddress, data: np.ndarray) -> None:
        """Program bytes at a (logical-block) address."""
        self.geometry.validate(address)
        phys = self._physical(address)
        plane = self._chip_of(phys.lun).lun(phys.lun).planes[phys.plane]
        if address.byte != 0:
            raise ValueError("programming starts at page boundary")
        plane.program(phys.block, phys.page, data)

    def read(self, address: PhysicalAddress, length: int) -> np.ndarray:
        """Read bytes at a (logical-block) address, through ECC.

        Counts a page read, an ECC hard decode and (on injected
        failure) a soft decode; the timing layers consume these
        counters.
        """
        self.geometry.validate(address)
        phys = self._physical(address)
        lun = self._chip_of(phys.lun).lun(phys.lun)
        data = lun.read(phys, length)
        self.counters["page_reads"] += 1
        self.counters["ecc_hard_decodes"] += 1
        if not self.ldpc.decode_page():
            self.counters["ecc_soft_decodes"] += 1
        # Read disturbance: the FTL refreshes the block once its read
        # count crosses the threshold (Section II-B2) — transparently,
        # since callers address logical blocks.
        if self.ftl.record_read(address.lun, address.plane, address.block):
            self.refresh(address.lun, address.plane, address.block)
            self.counters["disturb_refreshes"] += 1
        return data

    def multi_plane_read(
        self, addresses: list[PhysicalAddress], length: int
    ) -> list[np.ndarray]:
        """Multi-plane read through the FTL (one parallel sense)."""
        phys = [self._physical(a) for a in addresses]
        lun = self._chip_of(phys[0].lun).lun(phys[0].lun)
        out = lun.multi_plane_read(phys, length)
        self.counters["page_reads"] += len(addresses)
        self.counters["multiplane_reads"] += len(addresses) - 1
        self.counters["ecc_hard_decodes"] += len(addresses)
        for _ in addresses:
            if not self.ldpc.decode_page():
                self.counters["ecc_soft_decodes"] += 1
        return out

    def refresh(self, lun: int, plane: int, logical_block: int) -> None:
        """Perform a block-level refresh, moving the data functionally."""
        old_phys = self.ftl.physical_block(lun, plane, logical_block)
        event = self.ftl.refresh_block(lun, plane, logical_block)
        assert event.old_block == old_phys
        plane_obj = self._chip_of(lun).lun(lun).planes[plane]
        moved = plane_obj.move_block(event.old_block, event.new_block)
        self.counters["refresh_pages_moved"] += moved
        self.counters["refreshes"] += 1

    # ---- capacity ----------------------------------------------------------------
    @property
    def usable_bytes(self) -> int:
        """Capacity excluding over-provisioned refresh blocks."""
        return (
            self.geometry.total_planes
            * self.ftl.usable_blocks
            * self.geometry.pages_per_block
            * self.geometry.page_size
        )

    def page_loads_total(self) -> int:
        return sum(
            p.page_loads for chip in self.chips for lun in chip.luns for p in lun.planes
        )
