"""ECC model: raw BER injection and LDPC hard/soft decision decoding.

Reproduces the paper's Section IV-C5 and Fig. 18 methodology:

* A plane-level *raw bit-error-rate* (BER) distribution is sampled once
  per device, following the measured lognormal-like spread of
  LDPC-in-SSD [83] around a mean of 1e-6.
* Each in-plane page read is decoded by a *hard-decision* LDPC decoder
  (cheap, pipelined with the array read).  With a configurable failure
  probability the hard decode fails and the read falls back to
  *soft-decision* decoding on the FTL / embedded cores, costing ~10 us
  and stalling the search iteration — exactly the fault-injection knob
  of Fig. 18(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class BERModel:
    """Per-plane raw bit-error-rate statistics (paper Fig. 18a).

    Raw BERs are drawn from a lognormal distribution whose median is
    ``mean_ber`` and whose spread (``sigma``) matches the plane-to-plane
    variation reported in [83]: most planes sit near the typical value
    with a tail of noticeably worse planes.
    """

    n_planes: int
    mean_ber: float = 1e-6
    sigma: float = 0.45
    seed: int = 983
    plane_ber: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_planes <= 0:
            raise ValueError("n_planes must be positive")
        if not 0.0 < self.mean_ber < 1.0:
            raise ValueError("mean_ber must be in (0, 1)")
        rng = np.random.default_rng(self.seed)
        self.plane_ber = self.mean_ber * rng.lognormal(
            mean=0.0, sigma=self.sigma, size=self.n_planes
        )

    def ber_of_plane(self, plane: int) -> float:
        return float(self.plane_ber[plane])

    def histogram(self, bins: int = 12) -> tuple[np.ndarray, np.ndarray]:
        """Histogram of plane BERs (the Fig. 18a distribution plot)."""
        return np.histogram(self.plane_ber, bins=bins)

    def summary(self) -> dict[str, float]:
        return {
            "mean": float(self.plane_ber.mean()),
            "median": float(np.median(self.plane_ber)),
            "p95": float(np.percentile(self.plane_ber, 95)),
            "max": float(self.plane_ber.max()),
        }


@dataclass
class LDPCModel:
    """Hard/soft-decision LDPC decode model with fault injection.

    ``hard_failure_prob`` is the probability that the in-plane
    hard-decision decoder fails and the page must be re-decoded by the
    soft-decision decoder on the embedded cores.  The paper's default is
    1% (mid-late flash lifetime); Fig. 18(b) sweeps {30, 10, 5, 1}%.

    Failures are drawn from a deterministic counter-based stream so a
    given (seed, read index) always produces the same outcome — this
    keeps the trace-driven simulations reproducible.
    """

    hard_failure_prob: float = 0.01
    seed: int = 7
    _reads: int = field(default=0, repr=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.hard_failure_prob <= 1.0:
            raise ValueError("hard_failure_prob must be in [0, 1]")
        self._rng = np.random.default_rng(self.seed)

    def decode_page(self) -> bool:
        """Decode one page; returns True iff hard decoding succeeded."""
        self._reads += 1
        if self.hard_failure_prob == 0.0:
            return True
        if self.hard_failure_prob == 1.0:
            return False
        return bool(self._rng.random() >= self.hard_failure_prob)

    def decode_pages(self, n: int) -> int:
        """Decode ``n`` pages at once; returns the hard-decode failure count.

        Draws ``n`` variates in one vectorized call.  A numpy Generator
        produces the identical stream for ``rng.random(n)`` and ``n``
        successive ``rng.random()`` calls, so batches of any size
        interleave bit-exactly with :meth:`decode_page`.
        """
        self._reads += n
        if n <= 0 or self.hard_failure_prob == 0.0:
            return 0
        if self.hard_failure_prob == 1.0:
            return n
        return int(
            np.count_nonzero(self._rng.random(n) < self.hard_failure_prob)
        )

    def expected_failures(self, n_reads: int) -> float:
        return n_reads * self.hard_failure_prob

    @property
    def reads(self) -> int:
        return self._reads

    def reset(self) -> None:
        self._reads = 0
        self._rng = np.random.default_rng(self.seed)


def inject_bit_errors(
    page: np.ndarray, ber: float, rng: np.random.Generator
) -> tuple[np.ndarray, int]:
    """Flip bits in a uint8 page buffer at rate ``ber``.

    Functional-level fault injection used by the ECC unit tests: returns
    the corrupted copy and the number of flipped bits.
    """
    if page.dtype != np.uint8:
        raise TypeError("page must be a uint8 array")
    n_bits = page.size * 8
    n_errors = rng.binomial(n_bits, min(max(ber, 0.0), 1.0))
    if n_errors == 0:
        return page.copy(), 0
    corrupted = page.copy()
    positions = rng.choice(n_bits, size=n_errors, replace=False)
    byte_idx, bit_idx = positions // 8, positions % 8
    np.bitwise_xor.at(corrupted, byte_idx, (1 << bit_idx).astype(np.uint8))
    return corrupted, int(n_errors)
