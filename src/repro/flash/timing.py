"""Latency and bandwidth parameters for every modelled platform.

Values follow the paper's experimental setup (Section VII-A) and public
datasheets for the referenced hardware:

* NAND array read (tR) for V-NAND MLC: ~65 us per 16 KB page.
* Channel bus (ONFI NV-DDR2-class): ~800 MB/s per channel.
* PCIe 3.0 x16 host link: 15.4 GB/s peak (Fig. 2); PCIe 3.0 x4 private
  link between SearSSD and the FPGA: ~3.9 GB/s.
* Moving a page from the page buffer to an accelerator *outside* the
  NAND chip costs an extra ~30 us (Section III) — this is the key
  penalty paid by channel-/chip-level accelerator designs.
* Soft-decision LDPC on the embedded cores costs ~10 us (Section VII).

All times are seconds, all bandwidths bytes/second.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class FlashTiming:
    """Timing/bandwidth constants shared by all platform models."""

    # ---- NAND flash ------------------------------------------------------
    read_page_s: float = 65e-6
    """Array-to-page-buffer sense time (tR) for one page."""

    program_page_s: float = 600e-6
    """Page program time (used by the FTL refresh model)."""

    erase_block_s: float = 3e-3
    """Block erase time (used by the FTL refresh model)."""

    channel_bus_bw: float = 800e6
    """ONFI bus bandwidth per channel, bytes/s."""

    chip_bus_bw: float = 1200e6
    """Intra-chip bus bandwidth (page buffer to chip-level logic)."""

    external_accelerator_s: float = 30e-6
    """Extra latency to move page-buffer data outside the NAND chip."""

    # ---- ECC --------------------------------------------------------------
    ecc_hard_decode_s: float = 2e-6
    """In-plane hard-decision LDPC decode per page (pipelined with tR)."""

    ecc_soft_decode_s: float = 10e-6
    """Soft-decision LDPC fallback on the embedded cores, per failure."""

    # ---- SSD controller -----------------------------------------------------
    dram_access_s: float = 10e-9
    """Effective per-access cost of SSD-internal DRAM under pipelined
    streaming (LUNCSR walks and QPT updates are sequential bursts, not
    dependent random loads)."""

    dram_bw: float = 12e9
    """Internal DRAM bandwidth, bytes/s."""

    embedded_core_op_s: float = 50e-9
    """One unit of FTL/controller work, amortised over the 2-4
    embedded cores."""

    # ---- customized SearSSD logic --------------------------------------------
    vgen_stage_s: float = 100e-9
    """One Vgenerator pipeline stage (OFS/NBR/LUN fetch) per vertex."""

    alloc_dispatch_s: float = 15e-9
    """Allocator dispatch cost per (query, neighbor) entry (a few
    cycles of the 800 MHz dispatcher)."""

    mac_op_s: float = 1.25e-9
    """One multiply-accumulate at 800 MHz."""

    macs_per_group: int = 2
    mac_groups_per_lun_acc: int = 2

    # ---- host links -----------------------------------------------------------
    pcie_host_bw: float = 15.4e9
    """PCIe 3.0 x16 host <-> device bandwidth (Fig. 2)."""

    pcie_host_latency_s: float = 5e-6
    """Per-transfer setup latency on the host link."""

    pcie_private_bw: float = 3.9e9
    """PCIe 3.0 x4 private SSD <-> FPGA link inside the SmartSSD."""

    pcie_private_latency_s: float = 2e-6

    # ---- FPGA sorter -------------------------------------------------------------
    fpga_clock_hz: float = 200e6
    fpga_sort_elems_per_cycle: float = 16.0
    """Throughput of the pipelined bitonic network (elements/cycle)."""

    # ---- host compute (baselines) -------------------------------------------------
    cpu_distance_flops: float = 60e9
    """Effective sustained FLOP/s of the 2-socket CPU baseline on the
    distance kernel (SIMD, memory-bound, well below peak)."""

    cpu_dram_access_s: float = 90e-9
    """Host DRAM random access (cache-missing vertex fetch)."""

    cpu_sort_elem_s: float = 25e-9
    """Per-element cost of host-side top-k selection/sorting."""

    gpu_distance_flops: float = 4e12
    """Effective Titan RTX throughput on the distance kernel."""

    gpu_kernel_launch_s: float = 10e-6
    """Per-iteration kernel launch + sync overhead."""

    os_page_size: int = 4096
    """Host I/O granularity when reading vertices from the SSD."""

    def scaled_copy(self, **overrides: float) -> "FlashTiming":
        """A copy with selected fields overridden (keyword-checked)."""
        return replace(self, **overrides)

    # ---- convenience ---------------------------------------------------------------
    def page_transfer_s(self, page_size: int) -> float:
        """Time to move one page over the channel bus."""
        return page_size / self.channel_bus_bw

    def host_transfer_s(self, nbytes: int) -> float:
        """Time to move ``nbytes`` over the host PCIe link."""
        if nbytes <= 0:
            return 0.0
        return self.pcie_host_latency_s + nbytes / self.pcie_host_bw

    def private_transfer_s(self, nbytes: int) -> float:
        """Time to move ``nbytes`` over the private SSD-FPGA link."""
        if nbytes <= 0:
            return 0.0
        return self.pcie_private_latency_s + nbytes / self.pcie_private_bw

    def distance_mac_s(self, dim: int, luns_busy: int = 1) -> float:
        """Time for one LUN accelerator to compute one distance.

        A distance over a ``dim``-dimensional vector needs ``dim`` MACs
        spread over the accelerator's parallel MAC units.
        """
        macs_parallel = self.macs_per_group * self.mac_groups_per_lun_acc
        return (dim / macs_parallel) * self.mac_op_s

    def fpga_sort_s(self, n_elements: int) -> float:
        """Pipelined bitonic sorter time for ``n_elements`` elements."""
        if n_elements <= 0:
            return 0.0
        cycles = n_elements / self.fpga_sort_elems_per_cycle
        return cycles / self.fpga_clock_hz
