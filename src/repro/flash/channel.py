"""Channel-level command workflow simulation (paper Fig. 9a).

Models the ONFI command/data traffic on one flash channel at
command-cycle granularity, using the :mod:`repro.sim.engine` resource
timelines: the channel bus is a serial resource carrying command,
address and data cycles; each LUN is an independent resource executing
its array operation (tR for a read/search) concurrently with the other
LUNs once its command has been issued.

Two workflows are modelled, exactly as Fig. 9(a) lays them out:

* **multi-LUN read** (baseline designs) — ``<ReadPage>`` per LUN, then
  per LUN a ``<ReadStatusEnhanced>`` + ``<ChangeReadColumn>`` pair and
  the transfer of the *whole page* over the bus;
* **multi-LUN search** (SearSSD) — ``<SearchPage>`` per LUN, the
  status/column pair re-targeted to the output buffer, and only the
  computed *distances* transferred.

Comparing the two quantifies the paper's filtering claim: the search
workflow moves a small fraction of the read workflow's bus bytes, which
is where both the bandwidth relief and the energy saving come from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.flash.geometry import SSDGeometry
from repro.flash.timing import FlashTiming
from repro.sim.engine import Timeline

#: ONFI cycle counts for the command sequences involved.
COMMAND_CYCLES = 2
"""Command byte + confirm byte."""

ADDRESS_CYCLES = 5
"""Five address cycles (2 column + 3 row) per ONFI."""

STATUS_CYCLES = 2
"""<ReadStatusEnhanced>: command + status byte."""

COLUMN_CHANGE_CYCLES = 4
"""<ChangeReadColumn>: command + 2 column cycles + confirm."""


@dataclass
class LunOperation:
    """One per-LUN operation in a multi-LUN sequence."""

    lun: int
    payload_bytes: int
    """Bytes transferred out of the (page or output) buffer."""

    array_time_s: float
    """On-die time (tR plus, for search, the MAC latency)."""


@dataclass
class ChannelWorkflowResult:
    """Timing/traffic outcome of one multi-LUN sequence."""

    makespan_s: float
    bus_busy_s: float
    bus_bytes: int
    lun_busy_s: float

    @property
    def bus_utilization(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return min(1.0, self.bus_busy_s / self.makespan_s)


@dataclass
class ChannelSimulator:
    """Executes Fig. 9(a) workflows on one channel's timeline."""

    geometry: SSDGeometry
    timing: FlashTiming = field(default_factory=FlashTiming)

    def _cycle_s(self) -> float:
        """One bus byte-cycle (the ONFI bus moves one byte per cycle)."""
        return 1.0 / self.timing.channel_bus_bw

    def run_sequence(self, operations: list[LunOperation]) -> ChannelWorkflowResult:
        """Issue the interleaved multi-LUN sequence and account time.

        Phase 1: command+address cycles per LUN on the shared bus; each
        LUN's array operation starts when its command lands.  Phase 2:
        per LUN, status poll + column change + payload transfer, which
        must wait for both the bus and that LUN's array completion.
        """
        if not operations:
            return ChannelWorkflowResult(0.0, 0.0, 0, 0.0)
        luns = [op.lun for op in operations]
        if len(set(luns)) != len(luns):
            raise ValueError("multi-LUN sequence must target distinct LUNs")
        timeline = Timeline()
        bus = timeline.resource("bus")
        cycle = self._cycle_s()
        issue = (COMMAND_CYCLES + ADDRESS_CYCLES) * cycle
        ready_at: dict[int, float] = {}
        now = 0.0
        for op in operations:
            _, end = bus.acquire(now, issue)
            ready_at[op.lun] = end + op.array_time_s
            now = end
        bytes_moved = 0
        finish = now
        for op in operations:
            overhead = (STATUS_CYCLES + COLUMN_CHANGE_CYCLES) * cycle
            transfer = op.payload_bytes * cycle
            start = max(now, ready_at[op.lun])
            _, end = bus.acquire(start, overhead + transfer)
            bytes_moved += op.payload_bytes
            now = bus.next_free
            finish = max(finish, end)
        lun_busy = sum(op.array_time_s for op in operations)
        return ChannelWorkflowResult(
            makespan_s=finish,
            bus_busy_s=bus.busy_time,
            bus_bytes=bytes_moved,
            lun_busy_s=lun_busy,
        )

    # ---- the two Fig. 9(a) workflows ---------------------------------------
    def multi_lun_read(self, luns: list[int]) -> ChannelWorkflowResult:
        """Baseline: full pages leave the chips."""
        ops = [
            LunOperation(
                lun=lun,
                payload_bytes=self.geometry.page_size,
                array_time_s=self.timing.read_page_s,
            )
            for lun in luns
        ]
        return self.run_sequence(ops)

    def multi_lun_search(
        self, luns: list[int], results_per_lun: int, dim: int
    ) -> ChannelWorkflowResult:
        """SearSSD: only computed distances leave the chips."""
        ops = [
            LunOperation(
                lun=lun,
                payload_bytes=results_per_lun * 8,  # id + distance
                array_time_s=self.timing.read_page_s
                + results_per_lun * self.timing.distance_mac_s(dim),
            )
            for lun in luns
        ]
        return self.run_sequence(ops)

    def filtering_ratio(
        self, luns: list[int], results_per_lun: int, dim: int
    ) -> float:
        """Bus-byte ratio read/search — the paper's 'as low as 1/32'
        data-transfer reduction, measured on the modelled workflows."""
        read = self.multi_lun_read(luns)
        search = self.multi_lun_search(luns, results_per_lun, dim)
        if search.bus_bytes == 0:
            return float("inf")
        return read.bus_bytes / search.bus_bytes
