"""ONFI-style flash command model, including the paper's ``<SearchPage>``.

Section IV-C6 of the paper modifies the standard multi-LUN read flow:
``<ReadPage>`` becomes ``<SearchPage>`` (carrying a distance-type field,
the row address, feature-vector dimension/precision descriptors and a
page-locality bit), while ``<ReadStatusEnhanced>`` and
``<ChangeReadColumn>`` are re-targeted from the page buffer to the
accelerator's output buffer so only computed distances cross the bus.

Multi-plane command sequences obey the two ONFI restrictions quoted in
Section VI-A2: within one multi-plane sequence the plane address bits
must be pairwise distinct while the page (and LUN) address must be
identical.  :func:`validate_multi_plane_group` enforces exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.flash.geometry import PhysicalAddress, SSDGeometry


class DistanceType(IntEnum):
    """2-bit distance selector of the ``<SearchPage>`` instruction."""

    EUCLIDEAN = 0
    ANGULAR = 1
    INNER_PRODUCT = 2
    HAMMING = 3


class MultiPlaneRestrictionError(ValueError):
    """A multi-plane command sequence violates the ONFI addressing rules."""


@dataclass(frozen=True)
class ReadPage:
    """Standard page read: array -> page buffer (baseline designs)."""

    address: PhysicalAddress

    def latency_s(self, timing) -> float:
        return timing.read_page_s


@dataclass(frozen=True)
class SearchPage:
    """The paper's modified read: sense page, then compute in-LUN.

    Field widths follow Fig. 9(b): 2-bit distance type, 26-bit row
    address (at paper-scale geometry), 3-bit feature dimension
    descriptor, 4-bit precision descriptor, 1-bit page-locality flag.
    """

    address: PhysicalAddress
    distance: DistanceType = DistanceType.EUCLIDEAN
    fv_dim_code: int = 0
    fv_prec_code: int = 0
    page_loc_bit: bool = False

    ROW_BITS = 26
    DIM_BITS = 3
    PREC_BITS = 4

    def __post_init__(self) -> None:
        if not 0 <= self.fv_dim_code < (1 << self.DIM_BITS):
            raise ValueError(f"fv_dim_code {self.fv_dim_code} exceeds {self.DIM_BITS} bits")
        if not 0 <= self.fv_prec_code < (1 << self.PREC_BITS):
            raise ValueError(f"fv_prec_code {self.fv_prec_code} exceeds {self.PREC_BITS} bits")

    def encode(self, geometry: SSDGeometry) -> int:
        """Pack the instruction into an integer (low bit first field).

        Layout, LSB to MSB: distance(2) | row(26) | dim(3) | prec(4) |
        pageLoc(1) — 36 bits total, as in Fig. 9(b).
        """
        row = self.address.row_address(geometry)
        if row >= (1 << self.ROW_BITS):
            raise ValueError(
                f"row address {row} does not fit the {self.ROW_BITS}-bit field"
            )
        word = int(self.distance)
        word |= row << 2
        word |= self.fv_dim_code << (2 + self.ROW_BITS)
        word |= self.fv_prec_code << (2 + self.ROW_BITS + self.DIM_BITS)
        word |= int(self.page_loc_bit) << (2 + self.ROW_BITS + self.DIM_BITS + self.PREC_BITS)
        return word

    @classmethod
    def decode(cls, word: int, geometry: SSDGeometry) -> "SearchPage":
        """Inverse of :meth:`encode` (used to verify field packing)."""
        distance = DistanceType(word & 0b11)
        row = (word >> 2) & ((1 << cls.ROW_BITS) - 1)
        dim_code = (word >> (2 + cls.ROW_BITS)) & ((1 << cls.DIM_BITS) - 1)
        prec_code = (word >> (2 + cls.ROW_BITS + cls.DIM_BITS)) & ((1 << cls.PREC_BITS) - 1)
        page_loc = bool(
            (word >> (2 + cls.ROW_BITS + cls.DIM_BITS + cls.PREC_BITS)) & 0b1
        )
        page = row & ((1 << geometry.page_bits) - 1)
        rest = row >> geometry.page_bits
        block = rest & ((1 << geometry.block_bits) - 1)
        rest >>= geometry.block_bits
        plane = rest & ((1 << geometry.plane_bits) - 1) if geometry.plane_bits else 0
        lun = rest >> geometry.plane_bits
        address = PhysicalAddress(lun=lun, plane=plane, block=block, page=page)
        return cls(
            address=address,
            distance=distance,
            fv_dim_code=dim_code,
            fv_prec_code=prec_code,
            page_loc_bit=page_loc,
        )

    def latency_s(self, timing) -> float:
        """Sense latency; MAC time is modelled separately by the SiN."""
        return timing.read_page_s


@dataclass(frozen=True)
class ReadStatusEnhanced:
    """Select one LUN's output (paper) / page (baseline) buffer."""

    lun: int
    target_output_buffer: bool = True


@dataclass(frozen=True)
class ChangeReadColumn:
    """Set the column pointer within the selected buffer."""

    lun: int
    column: int
    target_output_buffer: bool = True


def validate_multi_plane_group(addresses: list[PhysicalAddress]) -> None:
    """Enforce the ONFI multi-plane addressing restrictions.

    (i) plane address bits pairwise distinct; (ii) LUN and page address
    identical across the group.  Raises
    :class:`MultiPlaneRestrictionError` on violation.
    """
    if not addresses:
        raise MultiPlaneRestrictionError("empty multi-plane group")
    planes = [a.plane for a in addresses]
    if len(set(planes)) != len(planes):
        raise MultiPlaneRestrictionError(
            f"plane addresses must be distinct, got {planes}"
        )
    luns = {a.lun for a in addresses}
    if len(luns) != 1:
        raise MultiPlaneRestrictionError(f"multi-plane group spans LUNs {sorted(luns)}")
    pages = {a.page for a in addresses}
    if len(pages) != 1:
        raise MultiPlaneRestrictionError(
            f"page address must match across planes, got {sorted(pages)}"
        )


def build_multi_lun_sequence(
    commands: list[SearchPage | ReadPage],
) -> list[object]:
    """Build the interleaved multi-LUN flow of Fig. 9(a).

    Issues one ``<SearchPage>``/``<ReadPage>`` per LUN, then for each
    LUN a ``<ReadStatusEnhanced>`` + ``<ChangeReadColumn>`` pair
    targeting the output buffer (search) or page buffer (read),
    followed by the data transfer slot (represented by the command
    object itself so callers can account bus time).
    """
    if not commands:
        return []
    luns = [c.address.lun for c in commands]
    if len(set(luns)) != len(luns):
        raise MultiPlaneRestrictionError(
            f"multi-LUN sequence must target distinct LUNs, got {luns}"
        )
    sequence: list[object] = list(commands)
    for command in commands:
        is_search = isinstance(command, SearchPage)
        sequence.append(
            ReadStatusEnhanced(lun=command.address.lun, target_output_buffer=is_search)
        )
        sequence.append(
            ChangeReadColumn(
                lun=command.address.lun,
                column=command.address.byte,
                target_output_buffer=is_search,
            )
        )
    return sequence


def encode_dim(dim: int) -> int:
    """Map a feature dimension to the 3-bit descriptor of Fig. 9(b).

    The descriptor indexes a small table of supported dimensions
    (powers of two from 32 up, plus the catch-all 0 for 'other').
    """
    table = {32: 1, 64: 2, 96: 3, 100: 4, 128: 5, 256: 6, 784: 7}
    return table.get(dim, 0)


def encode_precision(bytes_per_component: int) -> int:
    """Map component width in bytes to the 4-bit precision descriptor."""
    table = {1: 1, 2: 2, 4: 3, 8: 4}
    return table.get(bytes_per_component, 0)
