"""NAND flash SSD substrate: geometry, commands, timing, FTL, ECC.

Models the storage hierarchy the paper builds on (Section II-B):
channels -> chips -> LUNs -> planes -> blocks -> pages, ONFI-style
multi-LUN / multi-plane command semantics, a flash translation layer
with block-level refreshing, and an LDPC ECC model with plane-level raw
bit-error-rate injection.
"""

from repro.flash.geometry import PhysicalAddress, SSDGeometry
from repro.flash.timing import FlashTiming
from repro.flash.commands import (
    ChangeReadColumn,
    MultiPlaneRestrictionError,
    ReadPage,
    ReadStatusEnhanced,
    SearchPage,
    build_multi_lun_sequence,
    validate_multi_plane_group,
)
from repro.flash.channel import ChannelSimulator, ChannelWorkflowResult, LunOperation
from repro.flash.ecc import BERModel, LDPCModel
from repro.flash.ftl import FlashTranslationLayer, RefreshEvent
from repro.flash.nand import FlashChip, Lun, Plane
from repro.flash.ssd import SSD

__all__ = [
    "PhysicalAddress",
    "SSDGeometry",
    "FlashTiming",
    "ReadPage",
    "SearchPage",
    "ReadStatusEnhanced",
    "ChangeReadColumn",
    "MultiPlaneRestrictionError",
    "build_multi_lun_sequence",
    "validate_multi_plane_group",
    "ChannelSimulator",
    "ChannelWorkflowResult",
    "LunOperation",
    "BERModel",
    "LDPCModel",
    "FlashTranslationLayer",
    "RefreshEvent",
    "FlashChip",
    "Lun",
    "Plane",
    "SSD",
]
