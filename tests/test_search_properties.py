"""Property-based tests of the search stack on random point clouds."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ann import BruteForceIndex, HNSWIndex, HNSWParams, recall_at_k
from repro.ann.distance import DistanceMetric
from repro.ann.ivf import IVFFlatIndex, IVFParams
from repro.ann.search import greedy_beam_search, top_k_from_results
from repro.ann.trace import TraceRecorder


@st.composite
def point_cloud(draw):
    n = draw(st.integers(min_value=10, max_value=120))
    dim = draw(st.integers(min_value=2, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(4, dim))
    assign = rng.integers(0, 4, size=n)
    vectors = (centers[assign] + 0.4 * rng.normal(size=(n, dim))).astype(
        np.float32
    )
    return vectors, seed


@given(point_cloud())
@settings(max_examples=20, deadline=None)
def test_hnsw_always_finds_itself(cloud):
    """Searching for a stored vector returns it at distance ~0."""
    vectors, seed = cloud
    index = HNSWIndex(vectors, HNSWParams(M=4, ef_construction=12, seed=seed))
    probe = int(seed % vectors.shape[0])
    ids, dists = index.search(vectors[probe], k=1, ef=8)
    assert dists[0] == pytest.approx(0.0, abs=1e-4)


@given(point_cloud())
@settings(max_examples=15, deadline=None)
def test_beam_results_always_sorted_and_unique(cloud):
    vectors, seed = cloud
    index = HNSWIndex(vectors, HNSWParams(M=4, ef_construction=12, seed=seed))
    graph = index.base_graph()
    rng = np.random.default_rng(seed)
    query = rng.normal(size=vectors.shape[1]).astype(np.float32)
    results = greedy_beam_search(
        graph.vectors, graph.neighbors, query, [graph.entry_point], 8,
        DistanceMetric.EUCLIDEAN,
    )
    dists = [d for d, _ in results]
    ids = [v for _, v in results]
    assert dists == sorted(dists)
    assert len(set(ids)) == len(ids)
    assert len(results) <= 8


@given(point_cloud())
@settings(max_examples=15, deadline=None)
def test_trace_covers_results(cloud):
    """Every returned vertex was computed (appears in the trace)."""
    vectors, seed = cloud
    index = HNSWIndex(vectors, HNSWParams(M=4, ef_construction=12, seed=seed))
    graph = index.base_graph()
    rng = np.random.default_rng(seed + 1)
    query = rng.normal(size=vectors.shape[1]).astype(np.float32)
    recorder = TraceRecorder(0)
    results = greedy_beam_search(
        graph.vectors, graph.neighbors, query, [graph.entry_point], 6,
        DistanceMetric.EUCLIDEAN, recorder=recorder,
    )
    trace = recorder.finish()
    visited = set(trace.visited_vertices)
    assert all(v in visited for _, v in results)


@given(point_cloud())
@settings(max_examples=10, deadline=None)
def test_ivf_recall_monotone_in_nprobe(cloud):
    vectors, seed = cloud
    n_lists = min(8, vectors.shape[0])
    index = IVFFlatIndex(
        vectors, IVFParams(n_lists=n_lists, nprobe=1, seed=seed % 1000)
    )
    rng = np.random.default_rng(seed + 2)
    queries = vectors[rng.integers(0, vectors.shape[0], size=5)] + 0.01
    gt, _ = BruteForceIndex(vectors).search_batch(queries, 3)

    def recall_at(nprobe):
        rows = []
        for q in queries:
            ids, _ = index.search(q, 3, nprobe=nprobe)
            rows.append(np.pad(ids, (0, 3 - ids.size), constant_values=-1))
        return recall_at_k(np.stack(rows), gt)

    assert recall_at(n_lists) >= recall_at(1) - 1e-9
    assert recall_at(n_lists) == 1.0
